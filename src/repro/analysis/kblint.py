"""Static validation of the pattern/constraint knowledge base.

Everything the grading pipeline does rests on the hand-authored
knowledge base: 12 assignments referencing a shared library of patterns
and per-assignment constraints.  A typo there does not crash — it
silently stops a pattern from ever matching, which surfaces as wrong
feedback in production.  The linter makes those defects loud and
machine-readable *before* deployment; ``repro lint-kb`` runs it as a CI
gate.

Rules (all findings carry a rule id, severity, and location):

``kb-load-error``
    An assignment module failed to import or build; the finding names
    the offending module (see
    :func:`repro.kb.registry.iter_assignments`).
``dangling-pattern-reference``
    A constraint references a pattern name absent from its expected
    method's pattern list.
``duplicate-pattern``
    The same pattern name appears twice within one expected method
    (directly or shadowed through a group variant), making constraint
    references ambiguous.
``disconnected-pattern``
    A pattern (or group variant) with two or more nodes where some
    component shares neither an edge nor a variable with the rest:
    nothing correlates the component with the rest of the pattern, so
    it matches independently — a strong sign of a missing edge or a
    mistyped variable name.
``invalid-node-expression``
    A node expression (or a containment constraint's expression) whose
    template cannot be compiled by the matcher's own regex machinery
    once variables are bound — it would raise at match time, on the
    first submission that reaches it.
``unbound-feedback-placeholder``
    A feedback template references ``{name}`` where ``name`` is not a
    variable of the pattern (for pattern/node feedback) or of any
    referenced pattern (for constraint feedback); the student would see
    the raw ``{name}`` in their feedback.
``unmatchable-pattern``
    The pattern demands structure no builder-produced EPDG can have —
    a ``Ctrl`` edge out of a non-``Cond`` node, two control parents,
    data flowing out of a ``Break``/``Return`` (they define nothing)
    or into a ``Break``/``Decl`` (they use nothing / are created
    edge-free), a self-loop, or no nodes at all.  Such a pattern can
    never embed, so its feedback can never fire.
``dangling-cost-shape-reference``
    An assignment's :class:`~repro.analysis.perf.model.PerfSpec` names
    an entry method absent from its expected methods, a shape outside
    :data:`~repro.analysis.perf.model.DECLARABLE_SHAPES`, or a size
    metric outside :data:`~repro.analysis.perf.model.SIZE_METRICS` —
    the declaration would silently never drive an escalation.
``unbound-perf-placeholder``
    A perf anti-pattern's feedback template (advisory or confirmed)
    references a placeholder its detector never binds; students would
    see the raw ``{name}``.  Checked once per lint run over
    :data:`~repro.analysis.perf.model.PERF_PATTERNS`, independent of
    any assignment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.analysis.diagnostics import Severity
from repro.analysis.perf.model import (
    DECLARABLE_SHAPES,
    PERF_PATTERNS,
    SIZE_METRICS,
)
from repro.errors import PatternDefinitionError
from repro.patterns.groups import PatternGroup
from repro.patterns.model import (
    ContainmentConstraint,
    Pattern,
)
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType, NodeType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> analysis)
    from repro.core.assignment import Assignment
    from repro.matching.submission import ExpectedMethod

#: ``{placeholder}`` references in feedback text — the same syntax
#: :func:`repro.patterns.template.render_feedback` substitutes.
_PLACEHOLDER = re.compile(r"\{([A-Za-z_$][A-Za-z0-9_$]*)\}")

#: Node types whose *outgoing* Ctrl edges the builder can produce.
#: Untyped pattern nodes may stand for any graph node, so they pass.
_CTRL_SOURCES = frozenset({NodeType.COND, NodeType.UNTYPED})

#: Node types that never define a variable in a builder EPDG, so they
#: can never source a Data edge.
_NEVER_DEFINES = frozenset({NodeType.BREAK, NodeType.RETURN})


@dataclass(frozen=True)
class LintFinding:
    """One knowledge-base defect found by one lint rule."""

    rule: str
    severity: Severity
    assignment: str
    #: Where in the assignment: ``method <m>``, ``pattern <p>``, ...
    location: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "assignment": self.assignment,
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"[{self.severity}] {self.assignment} :: {self.location}: "
            f"{self.message} ({self.rule})"
        )


@dataclass
class LintReport:
    """All findings of one lint run, plus what was actually linted."""

    findings: list[LintFinding] = field(default_factory=list)
    assignments: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no finding reaches ``error`` severity."""
        return not any(
            finding.severity is Severity.ERROR for finding in self.findings
        )

    def counts(self) -> dict[str, int]:
        by_severity = {str(s): 0 for s in Severity}
        for finding in self.findings:
            by_severity[str(finding.severity)] += 1
        return by_severity

    def worst_rank(self) -> int:
        """Highest severity rank present (-1 when there are no findings)."""
        return max(
            (finding.severity.rank for finding in self.findings), default=-1
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "assignments": list(self.assignments),
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render(self) -> str:
        lines = [
            f"Linted {len(self.assignments)} assignment(s): "
            f"{len(self.findings)} finding(s)."
        ]
        lines.extend("  " + finding.render() for finding in self.findings)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# helpers


def _variants(entry: "Pattern | PatternGroup") -> list[Pattern]:
    if isinstance(entry, PatternGroup):
        return [variant.pattern for variant in entry.variants]
    return [entry]


def _method_pattern_names(method: "ExpectedMethod") -> set[str]:
    return {pattern.name for pattern, _count in method.patterns}


def _resolved_variables(
    method: "ExpectedMethod", names: Iterable[str]
) -> set[str]:
    """Union of the variables of every variant of the named patterns."""
    wanted = set(names)
    variables: set[str] = set()
    for entry, _count in method.patterns:
        if entry.name in wanted:
            for variant in _variants(entry):
                variables |= variant.variables
    return variables


def _placeholders(text: str) -> set[str]:
    return set(_PLACEHOLDER.findall(text))


# ----------------------------------------------------------------------
# rules (each yields findings for one assignment)

RuleRunner = Callable[["Assignment"], "Iterator[LintFinding]"]


def _rule_dangling_reference(
    assignment: "Assignment",
) -> Iterator[LintFinding]:
    for method in assignment.expected_methods:
        known = _method_pattern_names(method)
        for constraint in method.constraints:
            for name in constraint.referenced_patterns():
                if name not in known:
                    yield LintFinding(
                        rule="dangling-pattern-reference",
                        severity=Severity.ERROR,
                        assignment=assignment.name,
                        location=(
                            f"method {method.name} / "
                            f"constraint {constraint.name}"
                        ),
                        message=(
                            f"constraint references pattern {name!r}, which "
                            f"is not among the method's patterns "
                            f"{sorted(known)}"
                        ),
                    )


def _rule_duplicate_pattern(
    assignment: "Assignment",
) -> Iterator[LintFinding]:
    for method in assignment.expected_methods:
        occurrences: dict[str, int] = {}
        for entry, _count in method.patterns:
            for pattern in _variants(entry):
                occurrences[pattern.name] = (
                    occurrences.get(pattern.name, 0) + 1
                )
        for name, times in occurrences.items():
            if times > 1:
                yield LintFinding(
                    rule="duplicate-pattern",
                    severity=Severity.ERROR,
                    assignment=assignment.name,
                    location=f"method {method.name}",
                    message=(
                        f"pattern name {name!r} appears {times} times "
                        "(directly or through group variants); constraint "
                        "references to it are ambiguous"
                    ),
                )


def _rule_disconnected_pattern(
    assignment: "Assignment",
) -> Iterator[LintFinding]:
    for method in assignment.expected_methods:
        for entry, _count in method.patterns:
            for pattern in _variants(entry):
                if len(pattern.nodes) < 2:
                    continue
                unreachable = _disconnected_nodes(pattern)
                if unreachable:
                    names = ", ".join(f"u{i}" for i in sorted(unreachable))
                    yield LintFinding(
                        rule="disconnected-pattern",
                        severity=Severity.ERROR,
                        assignment=assignment.name,
                        location=(
                            f"method {method.name} / pattern {pattern.name}"
                        ),
                        message=(
                            f"nodes {names} share no edge and no variable "
                            "with the rest of the pattern, so nothing "
                            "correlates their matches — almost certainly a "
                            "missing edge or a mistyped variable name"
                        ),
                    )


def _disconnected_nodes(pattern: Pattern) -> set[int]:
    """Nodes not reachable from u0 via edges *or* shared variables.

    Sharing a pattern variable correlates two nodes through γ even
    without an edge between them (the knowledge base uses this for
    patterns like ``record-position-read``, whose five cond/read pairs
    are edge-disjoint but all bind ``ri``), so only components that
    share neither an edge nor a variable with the rest are flagged.
    """
    adjacency: dict[int, set[int]] = {
        node.node_id: set() for node in pattern.nodes
    }
    for edge in pattern.edges:
        adjacency[edge.source].add(edge.target)
        adjacency[edge.target].add(edge.source)
    by_variable: dict[str, list[int]] = {}
    for node in pattern.nodes:
        for variable in node.variables:
            by_variable.setdefault(variable, []).append(node.node_id)
    for sharing in by_variable.values():
        first = sharing[0]
        for other in sharing[1:]:
            adjacency[first].add(other)
            adjacency[other].add(first)
    visited: set[int] = set()
    frontier = [0]
    while frontier:
        node_id = frontier.pop()
        if node_id in visited:
            continue
        visited.add(node_id)
        frontier.extend(adjacency[node_id] - visited)
    return set(adjacency) - visited


def _rule_invalid_expression(
    assignment: "Assignment",
) -> Iterator[LintFinding]:
    for method in assignment.expected_methods:
        for entry, _count in method.patterns:
            for pattern in _variants(entry):
                for node in pattern.nodes:
                    templates = [("expr", node.expr)]
                    if node.approx is not None:
                        templates.append(("approx", node.approx))
                    for label, template in templates:
                        problem = _template_problem(template)
                        if problem is not None:
                            yield LintFinding(
                                rule="invalid-node-expression",
                                severity=Severity.ERROR,
                                assignment=assignment.name,
                                location=(
                                    f"method {method.name} / pattern "
                                    f"{pattern.name} / node {node.name} "
                                    f"({label})"
                                ),
                                message=problem,
                            )
        for method_constraint in method.constraints:
            if isinstance(method_constraint, ContainmentConstraint):
                problem = _template_problem(method_constraint.expr)
                if problem is not None:
                    yield LintFinding(
                        rule="invalid-node-expression",
                        severity=Severity.ERROR,
                        assignment=assignment.name,
                        location=(
                            f"method {method.name} / constraint "
                            f"{method_constraint.name} (expr)"
                        ),
                        message=problem,
                    )


def _template_problem(template: ExprTemplate) -> str | None:
    """Why ``template`` would fail at match time, or ``None`` if fine.

    Exercises exactly the matcher's own path: bind every declared
    variable to a plain identifier, render, and compile the resulting
    regex (the frontend canonicalizes node content, and templates are
    regexes over that canonical form).
    """
    if not template.source:
        return None
    gamma = {variable: "x0" for variable in template.variables}
    try:
        rendered = template.render(gamma)
        re.compile(rendered)
    except (PatternDefinitionError, re.error) as error:
        return (
            f"expression template {template.source!r} cannot be compiled: "
            f"{error}"
        )
    return None


def _rule_unbound_placeholder(
    assignment: "Assignment",
) -> Iterator[LintFinding]:
    for method in assignment.expected_methods:
        for entry, _count in method.patterns:
            for pattern in _variants(entry):
                scope = set(pattern.variables)
                texts = [
                    ("feedback_present", pattern.feedback_present),
                    ("feedback_missing", pattern.feedback_missing),
                ]
                for node in pattern.nodes:
                    texts.append(
                        (f"node {node.name} feedback_correct",
                         node.feedback_correct)
                    )
                    texts.append(
                        (f"node {node.name} feedback_incorrect",
                         node.feedback_incorrect)
                    )
                for label, text in texts:
                    for name in sorted(_placeholders(text) - scope):
                        yield LintFinding(
                            rule="unbound-feedback-placeholder",
                            severity=Severity.ERROR,
                            assignment=assignment.name,
                            location=(
                                f"method {method.name} / pattern "
                                f"{pattern.name} / {label}"
                            ),
                            message=(
                                f"feedback references {{{name}}}, but the "
                                f"pattern only binds "
                                f"{sorted(pattern.variables)}; the student "
                                "would see the raw placeholder"
                            ),
                        )
        for constraint in method.constraints:
            scope = _resolved_variables(
                method, constraint.referenced_patterns()
            )
            if not scope and not _method_pattern_names(method).intersection(
                constraint.referenced_patterns()
            ):
                # every referenced pattern is dangling; rule
                # dangling-pattern-reference already reports it
                continue
            for label, text in (
                ("feedback_correct", constraint.feedback_correct),
                ("feedback_incorrect", constraint.feedback_incorrect),
            ):
                for name in sorted(_placeholders(text) - scope):
                    yield LintFinding(
                        rule="unbound-feedback-placeholder",
                        severity=Severity.ERROR,
                        assignment=assignment.name,
                        location=(
                            f"method {method.name} / constraint "
                            f"{constraint.name} / {label}"
                        ),
                        message=(
                            f"feedback references {{{name}}}, which none of "
                            f"the referenced patterns "
                            f"{sorted(set(constraint.referenced_patterns()))} "
                            "binds"
                        ),
                    )


def _rule_unmatchable_pattern(
    assignment: "Assignment",
) -> Iterator[LintFinding]:
    for method in assignment.expected_methods:
        for entry, _count in method.patterns:
            for pattern in _variants(entry):
                location = f"method {method.name} / pattern {pattern.name}"
                for problem in _structural_problems(pattern):
                    yield LintFinding(
                        rule="unmatchable-pattern",
                        severity=Severity.ERROR,
                        assignment=assignment.name,
                        location=location,
                        message=problem,
                    )


def _structural_problems(pattern: Pattern) -> Iterator[str]:
    """Structure demands no builder-produced EPDG can ever satisfy."""
    if not pattern.nodes:
        yield "pattern has no nodes, so it can never match anything"
        return
    in_ctrl: dict[int, int] = {}
    for edge in pattern.edges:
        source = pattern.node(edge.source)
        target = pattern.node(edge.target)
        if edge.source == edge.target:
            yield (
                f"edge {edge} is a self-loop; builder EPDGs never connect "
                "a node to itself"
            )
            continue
        if edge.type is EdgeType.CTRL:
            in_ctrl[edge.target] = in_ctrl.get(edge.target, 0) + 1
            if source.type not in _CTRL_SOURCES:
                yield (
                    f"edge {edge} leaves a {source.type} node, but only "
                    "Cond nodes have outgoing Ctrl edges in builder EPDGs"
                )
        else:
            if source.type in _NEVER_DEFINES:
                yield (
                    f"edge {edge} carries data out of a {source.type} "
                    "node, but such nodes never define a variable"
                )
            if target.type is NodeType.BREAK:
                yield (
                    f"edge {edge} carries data into a Break node, but "
                    "break/continue use no variables"
                )
        if target.type is NodeType.DECL:
            yield (
                f"edge {edge} enters a Decl node, but parameter "
                "declarations are created before all other nodes and "
                "receive no edges"
            )
    for node_id, ctrl_parents in sorted(in_ctrl.items()):
        if ctrl_parents > 1:
            yield (
                f"node u{node_id} has {ctrl_parents} incoming Ctrl edges, "
                "but builder EPDGs give every node at most one control "
                "parent"
            )


def _rule_dangling_cost_shape(
    assignment: "Assignment",
) -> Iterator[LintFinding]:
    spec = assignment.perf
    if spec is None:
        return
    known = {method.name for method in assignment.expected_methods}
    for method_name, shape in spec.expected:
        if method_name not in known:
            yield LintFinding(
                rule="dangling-cost-shape-reference",
                severity=Severity.ERROR,
                assignment=assignment.name,
                location=f"perf / expected {method_name}",
                message=(
                    f"expected cost shape declared for {method_name!r}, "
                    f"which is not among the expected methods "
                    f"{sorted(known)}"
                ),
            )
        if shape not in DECLARABLE_SHAPES:
            yield LintFinding(
                rule="dangling-cost-shape-reference",
                severity=Severity.ERROR,
                assignment=assignment.name,
                location=f"perf / expected {method_name}",
                message=(
                    f"declared shape {shape!r} is not one of "
                    f"{sorted(DECLARABLE_SHAPES)}"
                ),
            )
    for method_name, _arguments in spec.ladder:
        if method_name not in known:
            yield LintFinding(
                rule="dangling-cost-shape-reference",
                severity=Severity.ERROR,
                assignment=assignment.name,
                location=f"perf / ladder {method_name}",
                message=(
                    f"probe ladder targets {method_name!r}, which is not "
                    f"among the expected methods {sorted(known)}"
                ),
            )
    if spec.size_metric not in SIZE_METRICS:
        yield LintFinding(
            rule="dangling-cost-shape-reference",
            severity=Severity.ERROR,
            assignment=assignment.name,
            location="perf / size_metric",
            message=(
                f"size metric {spec.size_metric!r} is not one of "
                f"{sorted(SIZE_METRICS)}"
            ),
        )


def lint_perf_patterns() -> list[LintFinding]:
    """Validate the global perf anti-pattern registry's templates.

    Assignment-independent (the registry is shared), so the driver runs
    it once per lint run rather than per assignment; findings carry the
    pseudo-assignment name ``(perf-patterns)``.
    """
    findings: list[LintFinding] = []
    for pattern in PERF_PATTERNS:
        scope = set(pattern.variables) | {"method"}
        for label, text in (
            ("advisory", pattern.advisory),
            ("confirmed", pattern.confirmed),
        ):
            for name in sorted(_placeholders(text) - scope):
                findings.append(
                    LintFinding(
                        rule="unbound-perf-placeholder",
                        severity=Severity.ERROR,
                        assignment="(perf-patterns)",
                        location=f"perf pattern {pattern.id} / {label}",
                        message=(
                            f"feedback references {{{name}}}, but the "
                            f"detector only binds "
                            f"{sorted(scope)}; the student would see "
                            "the raw placeholder"
                        ),
                    )
                )
    return findings


#: Registered rules, in report order.  ``kb-load-error`` findings are
#: produced by the driver (:func:`lint_knowledge_base`), not a rule.
LINT_RULES: tuple[tuple[str, RuleRunner], ...] = (
    ("dangling-pattern-reference", _rule_dangling_reference),
    ("duplicate-pattern", _rule_duplicate_pattern),
    ("disconnected-pattern", _rule_disconnected_pattern),
    ("invalid-node-expression", _rule_invalid_expression),
    ("unbound-feedback-placeholder", _rule_unbound_placeholder),
    ("unmatchable-pattern", _rule_unmatchable_pattern),
    ("dangling-cost-shape-reference", _rule_dangling_cost_shape),
)


def lint_assignment(assignment: "Assignment") -> list[LintFinding]:
    """Run every lint rule over one built assignment."""
    findings: list[LintFinding] = []
    for _rule_id, runner in LINT_RULES:
        findings.extend(runner(assignment))
    return findings


def lint_knowledge_base(
    names: Iterable[str] | None = None,
) -> LintReport:
    """Lint the registered knowledge base (all assignments by default).

    Assignments that fail to *load* — import error, build error — are
    reported as ``kb-load-error`` findings naming the offending module,
    and linting continues with the rest.
    """
    # imported lazily: repro.core.report imports repro.analysis, and the
    # registry pulls in repro.core — resolving the cycle at call time
    from repro.errors import KnowledgeBaseError
    from repro.kb import registry

    report = LintReport()
    report.findings.extend(lint_perf_patterns())
    selected = (
        list(names) if names is not None else registry.all_assignment_names()
    )
    for name in selected:
        report.assignments.append(name)
        try:
            assignment = registry.get_assignment(name)
        except KnowledgeBaseError as error:
            # the registry's loader names the offending module in the
            # error text; keep linting the remaining assignments
            report.findings.append(
                LintFinding(
                    rule="kb-load-error",
                    severity=Severity.ERROR,
                    assignment=name,
                    location="registry",
                    message=str(error),
                )
            )
            continue
        report.findings.extend(lint_assignment(assignment))
    return report
