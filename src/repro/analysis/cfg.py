"""Lightweight control-flow reasoning over the Java AST.

The submission checks need a handful of classic control-flow facts —
"can execution fall off the end of this statement?", "does this loop
ever terminate?", "which statements can never run?" — and the AST is
the right level for them: the EPDG deliberately drops fall-through
ordering (the paper's static execution model), so reachability must be
recomputed from syntax.

The rules are a simplified version of the JLS "can complete normally"
definition, restricted to the Java subset the frontend accepts.  They
are *conservative*: when in doubt a statement is assumed to complete
normally, so every reported unreachable statement really is unreachable
under the rules below.

Source spans come from the non-field ``position`` attribute the parser
attaches to statements and methods (``(line, column)``, 1-based); ASTs
built by other frontends simply yield ``None`` positions and the
diagnostics stay span-less.
"""

from __future__ import annotations

from typing import Iterator

from repro.java import ast
from repro.pdg.expressions import defined_variables, used_variables


def position_of(node: ast.Node) -> tuple[int, int] | None:
    """The ``(line, column)`` the parser recorded for ``node``, if any."""
    position = getattr(node, "position", None)
    if (
        isinstance(position, tuple)
        and len(position) == 2
        and all(isinstance(part, int) for part in position)
    ):
        return position
    return None


def is_literal_true(expression: ast.Expression | None) -> bool:
    """True for the literal ``true`` (and a ``for``'s omitted condition)."""
    if expression is None:
        return True
    return isinstance(expression, ast.Literal) and expression.value is True


def is_literal_false(expression: ast.Expression | None) -> bool:
    """True only for the literal ``false``."""
    return isinstance(expression, ast.Literal) and expression.value is False


_LOOP_TYPES = (ast.While, ast.DoWhile, ast.For, ast.ForEach)


def iter_statements(statement: ast.Statement) -> Iterator[ast.Statement]:
    """Pre-order over the statement tree only, skipping expressions.

    Everything the checks look for (declarations, loops, returns) is a
    statement, and expression nodes outnumber statements several times
    over, so this is much cheaper than a generic :func:`ast.walk`.
    ``for`` init statements are included (they can declare locals).
    """
    stack = [statement]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Block):
            children = node.statements
        elif isinstance(node, ast.If):
            children = (
                [node.then_branch]
                if node.else_branch is None
                else [node.then_branch, node.else_branch]
            )
        elif isinstance(node, ast.For):
            children = list(node.init) + [node.body]
        elif isinstance(node, (ast.While, ast.DoWhile, ast.ForEach)):
            children = [node.body]
        elif isinstance(node, ast.Switch):
            children = [
                child for case in node.cases for child in case.statements
            ]
        else:
            continue
        stack.extend(reversed(children))


def loop_escapes(statement: ast.Statement, *, via_return: bool = True) -> bool:
    """True when ``statement`` (a loop *body*) can leave its loop.

    Looks for a ``break`` belonging to this loop — not one captured by a
    nested loop or ``switch`` — or, when ``via_return`` is set, any
    ``return`` (which leaves the whole method and therefore the loop).
    """
    if isinstance(statement, ast.Break):
        return True
    if via_return and isinstance(statement, ast.Return):
        return True
    if isinstance(statement, _LOOP_TYPES):
        # an inner loop swallows its own breaks; returns still escape
        return via_return and _contains_return(statement)
    if isinstance(statement, ast.Switch):
        # a switch swallows breaks of its cases
        return via_return and _contains_return(statement)
    if isinstance(statement, ast.Block):
        return any(
            loop_escapes(child, via_return=via_return)
            for child in statement.statements
        )
    if isinstance(statement, ast.If):
        if loop_escapes(statement.then_branch, via_return=via_return):
            return True
        return statement.else_branch is not None and loop_escapes(
            statement.else_branch, via_return=via_return
        )
    return False


def _contains_return(statement: ast.Statement) -> bool:
    return any(
        isinstance(node, ast.Return) for node in iter_statements(statement)
    )


def completes_normally(statement: ast.Statement) -> bool:
    """Can execution reach the point just after ``statement``?

    A simplified JLS §14.22 ("unreachable statements") for the subset:

    * ``return`` / ``break`` / ``continue`` never complete normally;
    * a block completes normally iff its last reachable statement does;
    * ``if`` without ``else`` always completes normally (the condition
      may be false); with ``else`` it completes iff either branch does;
    * ``while (true)`` (and ``for`` with a missing/literal-true
      condition) completes only via a ``break``; any other loop is
      assumed able to skip its body;
    * ``do``/``while`` runs its body at least once, so it completes only
      if the body completes (or breaks) — regardless of the condition
      unless that condition is literally ``true``;
    * ``switch`` is conservatively assumed to complete normally.
    """
    if isinstance(statement, (ast.Return, ast.Break, ast.Continue)):
        return False
    if isinstance(statement, ast.Block):
        reachable = True
        for child in statement.statements:
            if not reachable:
                return False
            reachable = completes_normally(child)
        return reachable
    if isinstance(statement, ast.If):
        if statement.else_branch is None:
            return True
        return completes_normally(statement.then_branch) or completes_normally(
            statement.else_branch
        )
    if isinstance(statement, ast.While):
        if is_literal_true(statement.condition):
            return loop_escapes(statement.body, via_return=False)
        return True
    if isinstance(statement, ast.For):
        if is_literal_true(statement.condition):
            return loop_escapes(statement.body, via_return=False)
        return True
    if isinstance(statement, ast.DoWhile):
        if loop_escapes(statement.body, via_return=False):
            return True
        if is_literal_true(statement.condition):
            return False
        return completes_normally(statement.body)
    return True


def unreachable_statements(
    statement: ast.Statement,
) -> Iterator[ast.Statement]:
    """Yield the *first* unreachable statement of every dead region.

    Walks blocks in source order; once a statement cannot complete
    normally, the next statement in the same block is reported and the
    rest of that block is skipped (one finding per dead region keeps the
    feedback readable).  Nested statements are searched recursively so a
    dead region inside a live branch is still found.
    """
    if isinstance(statement, ast.Block):
        reachable = True
        for child in statement.statements:
            if not reachable:
                yield child
                return
            yield from unreachable_statements(child)
            reachable = completes_normally(child)
    elif isinstance(statement, ast.If):
        yield from unreachable_statements(statement.then_branch)
        if statement.else_branch is not None:
            yield from unreachable_statements(statement.else_branch)
    elif isinstance(statement, (ast.While, ast.DoWhile, ast.For, ast.ForEach)):
        yield from unreachable_statements(statement.body)
    elif isinstance(statement, ast.Switch):
        for case in statement.cases:
            reachable = True
            for child in case.statements:
                if not reachable:
                    yield child
                    break
                yield from unreachable_statements(child)
                reachable = completes_normally(child)


# ----------------------------------------------------------------------
# atoms: (position, defines, uses) in source order


def iter_atoms(
    statement: ast.Statement,
) -> Iterator[tuple[tuple[int, int] | None, frozenset[str], frozenset[str]]]:
    """Yield ``(position, defines, uses)`` per executable unit, in source
    order — the same granularity the EPDG builder creates nodes at, which
    lets the dataflow checks map a graph-level finding back to a span.
    """
    position = position_of(statement)
    if isinstance(statement, ast.Block):
        for child in statement.statements:
            yield from iter_atoms(child)
    elif isinstance(statement, ast.LocalVarDecl):
        for declarator in statement.declarators:
            if declarator.initializer is None:
                yield position, frozenset(), frozenset()
            else:
                yield (
                    position,
                    frozenset({declarator.name}),
                    used_variables(declarator.initializer),
                )
    elif isinstance(statement, ast.ExpressionStatement):
        yield (
            position,
            defined_variables(statement.expression),
            used_variables(statement.expression),
        )
    elif isinstance(statement, ast.If):
        yield (
            position,
            defined_variables(statement.condition),
            used_variables(statement.condition),
        )
        yield from iter_atoms(statement.then_branch)
        if statement.else_branch is not None:
            yield from iter_atoms(statement.else_branch)
    elif isinstance(statement, ast.While):
        yield (
            position,
            defined_variables(statement.condition),
            used_variables(statement.condition),
        )
        yield from iter_atoms(statement.body)
    elif isinstance(statement, ast.DoWhile):
        yield from iter_atoms(statement.body)
        yield (
            position,
            defined_variables(statement.condition),
            used_variables(statement.condition),
        )
    elif isinstance(statement, ast.For):
        for init in statement.init:
            # init statements are built inline by the parser and carry no
            # position of their own; fall back to the for's span
            for init_position, defines, uses in iter_atoms(init):
                yield (
                    init_position if init_position is not None else position,
                    defines,
                    uses,
                )
        if statement.condition is not None:
            yield (
                position,
                defined_variables(statement.condition),
                used_variables(statement.condition),
            )
        yield from iter_atoms(statement.body)
        for update in statement.update:
            yield position, defined_variables(update), used_variables(update)
    elif isinstance(statement, ast.ForEach):
        yield (
            position,
            frozenset({statement.name}),
            used_variables(statement.iterable),
        )
        yield from iter_atoms(statement.body)
    elif isinstance(statement, ast.Return):
        yield position, frozenset(), used_variables(statement.value)
    elif isinstance(statement, ast.Switch):
        yield (
            position,
            defined_variables(statement.selector),
            used_variables(statement.selector),
        )
        for case in statement.cases:
            for child in case.statements:
                yield from iter_atoms(child)


def first_use_position(
    method: ast.MethodDecl, variable: str
) -> tuple[tuple[int, int] | None, str]:
    """Span and description of the first read of ``variable``."""
    for position, _defines, uses in iter_atoms(method.body):
        if variable in uses:
            return position, variable
    return position_of(method), variable


def first_definition_position(
    method: ast.MethodDecl, variable: str
) -> tuple[int, int] | None:
    """Span of the first write to (or declaration of) ``variable``."""
    for statement in iter_statements(method.body):
        if isinstance(statement, ast.LocalVarDecl):
            if any(d.name == variable for d in statement.declarators):
                return position_of(statement)
        elif isinstance(statement, ast.ForEach):
            if statement.name == variable:
                return position_of(statement)
        elif isinstance(statement, ast.ExpressionStatement):
            if variable in defined_variables(statement.expression):
                return position_of(statement)
    return position_of(method)


def declared_locals(
    method: ast.MethodDecl,
    statements: "list[ast.Statement] | None" = None,
) -> list[str]:
    """Names of all locals the method declares, in source order.

    ``statements`` may supply an already-computed
    :func:`iter_statements` list to avoid re-traversing the body.
    """
    names: list[str] = []
    seen: set[str] = set()
    nodes = (
        iter_statements(method.body) if statements is None else statements
    )
    for node in nodes:
        if isinstance(node, ast.LocalVarDecl):
            for declarator in node.declarators:
                if declarator.name not in seen:
                    seen.add(declarator.name)
                    names.append(declarator.name)
        elif isinstance(node, ast.ForEach):
            if node.name not in seen:
                seen.add(node.name)
                names.append(node.name)
    return names
