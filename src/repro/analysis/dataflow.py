"""Dataflow passes over an already-built EPDG.

The EPDG builder computes reaching definitions under the paper's static
execution model (every condition true, every loop body once) and turns
them into ``Data`` edges; these passes read those edges back out instead
of re-running dataflow:

* a node that *uses* a variable with no incoming ``Data`` edge from a
  definition of that variable was reached by **no** definition — the
  variable is read before it is ever assigned (or never declared);
* a variable that some node *defines* but no node *uses* is written and
  never read;
* a parameter's ``Decl`` node with no outgoing ``Data`` edge means the
  caller-supplied value is never read (the method either ignores the
  parameter or overwrites it first).

Because the builder's model assumes every branch executes, a definition
inside any ``if`` arm reaches later uses — so these passes only fire
when *no* path defines the variable, which keeps them conservative
(no false positives from "the student only initializes in one branch").

Class fields are invisible to the per-method EPDG, so callers pass the
submission's field names as ``ignore`` and reads of those are skipped.
"""

from __future__ import annotations

from repro.pdg.graph import EdgeType, Epdg, NodeType


def uninitialized_uses(
    graph: Epdg, ignore: frozenset[str] = frozenset()
) -> dict[str, int]:
    """Variables read with no reaching definition.

    Returns ``{variable: node_id}`` for the first (lowest-id, i.e.
    earliest in the builder's static execution order) node that reads
    each offending variable.  ``ignore`` lists names resolved outside
    the method — class fields — which the per-method graph cannot see.
    """
    found: dict[str, int] = {}
    for node in graph.nodes:
        uses = node.uses
        if not uses:
            continue
        # sorted: frozenset iteration order is hash-randomized across
        # processes, and diagnostics must be byte-identical in all
        # execution modes
        pending = sorted(
            variable
            for variable in uses
            if variable not in ignore and variable not in found
        )
        if not pending:
            continue
        covered: set[str] = set()
        for source_id in graph.predecessors(node.node_id, EdgeType.DATA):
            covered.update(graph.node(source_id).defines)
        for variable in pending:
            if variable not in covered:
                found[variable] = node.node_id
    return found


def unread_definitions(graph: Epdg) -> dict[str, int]:
    """Variables that are written but never read anywhere in the method.

    Returns ``{variable: node_id}`` of the first node defining each
    never-read variable.  Parameters are excluded — their ``Decl`` nodes
    are covered separately by :func:`unused_parameters`.
    """
    read: set[str] = set()
    for node in graph.nodes:
        read.update(node.uses)
    found: dict[str, int] = {}
    for node in graph.nodes:
        if node.type is NodeType.DECL:
            continue
        for variable in sorted(node.defines):
            if variable not in read and variable not in found:
                found[variable] = node.node_id
    return found


def unused_parameters(graph: Epdg) -> list[str]:
    """Parameters whose caller-supplied value is never read.

    A parameter's ``Decl`` node is the definition of its initial value;
    no outgoing ``Data`` edge means nothing ever reads that value (even
    if the name is later reassigned and used — then the *parameter* is
    still dead, only the local reuse of its name is live).
    """
    unused: list[str] = []
    for node in graph.nodes_of_type(NodeType.DECL):
        out_ctrl, out_data, _in_ctrl, _in_data = graph.degree_profile(
            node.node_id
        )
        if out_data == 0:
            unused.extend(sorted(node.defines))
    return unused
