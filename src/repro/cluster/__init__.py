"""Submission clustering and representative grading.

At MOOC scale most submissions are near-duplicates: the same program
structure resubmitted under different variable names, constant
spellings, spacing, and comments.  This package buckets submissions by a
*canonical fingerprint* — a token stream with renameable identifiers
alpha-renamed to first-occurrence slots and constants normalized the way
the frontend printer normalizes them — grades exactly one
*representative* per bucket through the full Algorithm 1/2 + analysis
path, and *specializes* the representative's results back to every other
member by re-binding identifier spellings and source positions.

The member path is one lex plus string joins: the representative's
report is canonicalized once (identifier spellings become fingerprint
slots, diagnostic positions become token indices), and each member's
report is rebuilt by joining the slots with its own spellings and
looking positions up in its own token stream.  No parsing, no EPDGs,
no embedding search, no analysis.  A per-assignment knowledge-base
audit plus per-submission safety gates guarantee the specialized
output is byte-identical to grading the member from scratch; anything
the gates cannot prove safe falls back to the full path.

See ``docs/CLUSTERING.md`` for the fingerprint definition, the
specialization rules, and the equivalence argument.
"""

from repro.cluster.audit import ClusterAudit, audit_assignment
from repro.cluster.fingerprint import (
    SourcePrint,
    fingerprint_graphs,
    fingerprint_source,
)
from repro.cluster.grader import ClusterGrader
from repro.cluster.specialize import (
    SpecializeError,
    build_cluster_record,
    rename_submission,
    specialize,
)

__all__ = [
    "ClusterAudit",
    "ClusterGrader",
    "SourcePrint",
    "SpecializeError",
    "audit_assignment",
    "build_cluster_record",
    "fingerprint_graphs",
    "fingerprint_source",
    "rename_submission",
    "specialize",
]
