"""The cluster grader: one full grade per bucket, specialization for the rest.

:class:`ClusterGrader` wraps a :class:`~repro.core.engine.FeedbackEngine`
and is a drop-in for it wherever only ``grade`` and ``assignment`` are
used (the batch pipeline's workers, the serve pool).  Per submission:

1. fingerprint the token stream (:mod:`repro.cluster.fingerprint`);
2. on a bucket hit — in memory, or fingerprint-keyed in the result
   store — specialize the bucket's canonical report to this member;
3. otherwise grade through the full path and, when the result is
   representable, register the bucket.

Everything the safety gates cannot prove equivalent falls back to the
engine's ordinary ``grade``: assignments whose knowledge base fails the
audit, sources that do not lex, submissions with rename-hazardous
identifiers, records that fail to build or to specialize.  Fallbacks
cost one counter, never correctness.

Counters (flowing into ``PipelineStats`` via the ambient phase
collector):

* ``cluster.submissions`` — grades routed through the cluster grader;
* ``cluster.representatives`` — full grades that registered a bucket;
* ``cluster.specialized`` — member grades served by specialization;
* ``cluster.store_hits`` — buckets revived from the result store;
* ``cluster.fallbacks`` — full grades forced by a safety gate;
* ``cluster.unsafe_kb`` — grades skipped because the audit failed;
* ``cluster.repair_fallbacks`` — full grades forced because the wrapped
  engine carries the repair channel (suggestions are member-specific,
  so representative replay is unsound);
* ``cluster.perf_fallbacks`` — full grades forced because the wrapped
  engine carries the performance analyzer (its findings depend on
  runtime cost counters of the member's own code, which the canonical
  fingerprint deliberately ignores — e.g. constants are normalized —
  so representative replay is unsound).
"""

from __future__ import annotations

import threading

from repro.cluster.audit import audit_assignment
from repro.cluster.fingerprint import fingerprint_source
from repro.cluster.specialize import (
    SpecializeError,
    build_cluster_record,
    specialize,
)
from repro.core.engine import FeedbackEngine
from repro.core.report import GradingReport
from repro.instrumentation import count, phase


class ClusterGrader:
    """Grade submissions bucket-wise through one wrapped engine.

    ``store`` is an optional :class:`~repro.core.store.ResultStore`;
    when given, bucket records persist fingerprint-keyed, so a warm run
    specializes every member of a previously seen bucket without a
    single full grade.  Bucket state is guarded by a lock — one
    instance serves all threads of a batch run, mirroring how the
    pipeline already shares one engine.
    """

    def __init__(
        self, engine: FeedbackEngine, store=None
    ) -> None:
        self.engine = engine
        self.store = store
        self.audit = audit_assignment(engine.assignment)
        self._buckets: dict[str, dict] = {}
        self._lock = threading.Lock()

    @property
    def assignment(self):
        return self.engine.assignment

    def source_digest(self, source: str) -> str | None:
        """The bucket fingerprint of ``source``, if it has one.

        ``None`` for unsafe knowledge bases and sources that do not lex.
        Used by the batch pipeline to link store entries to buckets.
        """
        if not self.audit.safe:
            return None
        sprint = fingerprint_source(source, self.audit)
        if sprint is None or not sprint.replay_safe:
            return None
        return sprint.digest

    def grade(self, source: str) -> GradingReport:
        """Grade one submission, bucket-wise when provably safe."""
        count("cluster.submissions")
        if getattr(self.engine, "repairer", None) is not None:
            # Repair suggestions substitute the *student's own*
            # identifiers into candidate text, so two members of the
            # same rename-equivalence bucket legitimately get different
            # suggestion bytes — replaying the representative's would be
            # wrong.  With the repair channel on, every submission takes
            # the full path.
            count("cluster.repair_fallbacks")
            return self.engine.grade(source)
        if getattr(self.engine, "perf_analyzer", None) is not None:
            # Perf findings come from replaying the member's own code
            # under cost counters; rename-equivalent members can differ
            # in normalized constants (loop bounds!), so the
            # representative's measured shapes do not transfer.  With
            # the perf channel on, every submission takes the full path.
            count("cluster.perf_fallbacks")
            return self.engine.grade(source)
        if not self.audit.safe:
            count("cluster.unsafe_kb")
            return self.engine.grade(source)
        with phase("cluster_fingerprint"):
            sprint = fingerprint_source(source, self.audit)
        if sprint is None:
            # does not lex; the full path produces the syntax-error report
            return self.engine.grade(source)
        if not sprint.replay_safe:
            count("cluster.fallbacks")
            return self.engine.grade(source)
        record = self._lookup(sprint.digest)
        if record is not None:
            try:
                with phase("cluster_specialize"):
                    report = specialize(record, sprint)
            except SpecializeError:
                count("cluster.fallbacks")
                return self.engine.grade(source)
            count("cluster.specialized")
            return report
        return self._grade_representative(source, sprint)

    def _lookup(self, digest: str) -> dict | None:
        with self._lock:
            record = self._buckets.get(digest)
        if record is not None:
            return record
        if self.store is None:
            return None
        record = self.store.get_cluster(digest)
        if record is not None:
            count("cluster.store_hits")
            with self._lock:
                self._buckets.setdefault(digest, record)
        return record

    def _grade_representative(self, source: str, sprint) -> GradingReport:
        """Full-path grade that tries to become the bucket representative."""
        report = self.engine.grade(source)
        if not report.ok:
            # rejected-by-matching still buckets; parse errors and
            # engine failures never do
            return report
        record = build_cluster_record(self.assignment, sprint, report)
        if record is None:
            count("cluster.fallbacks")
            return report
        with self._lock:
            known = sprint.digest in self._buckets
            if not known:
                self._buckets[sprint.digest] = record
        count("cluster.representatives")
        if self.store is not None and not known:
            self.store.put_cluster(sprint.digest, record)
        return report
