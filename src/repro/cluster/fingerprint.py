"""Canonical submission fingerprints (the bucketing key).

Two submissions share a fingerprint exactly when one can be obtained
from the other by renaming identifiers, respelling constants, and
reflowing spacing/comments within lines — the transformations the
specializer (:mod:`repro.cluster.specialize`) can invert.  The
fingerprint is computed from the token stream alone, so bucket members
never need to be parsed:

* **identifiers** are alpha-renamed to their first-occurrence slot
  index, *except* spellings that must be kept verbatim (see below);
* **constants** are normalized to the value the parser would produce
  (``1_000``, ``1000`` and ``0x3E8`` print identically from the AST, so
  they grade identically);
* **string/char literals** hash by their unescaped value, verbatim —
  string contents are grading-relevant;
* **line numbers** ride along per token (diagnostics report lines, so
  members must agree on line layout), but columns and spacing do not;
* an **order signature** records how the renameable spellings interleave
  with the kept identifiers in sorted order.  Algorithm 1 enumerates
  candidate variables with ``sorted(...)``, so two members whose
  spellings sort differently could see embeddings in different orders
  (and, under truncation, different embedding *sets*); the signature
  splits such submissions into different buckets, making the identifier
  bijection between bucket mates monotone — and therefore invisible to
  every ``sorted`` the grading path takes.

A spelling is **kept** (hashed verbatim, excluded from the bijection)
when renaming it could be observable:

* it is in the audit's keep set (an expected method name, an identifier
  the expression templates match literally, or a word of the report
  vocabulary — fixed text that can appear in delivered feedback, which
  the specializer must be able to tell apart from interpolated names);
* it contains one of the audit's literal runs as a substring (a
  template literal like ``print`` matches inside ``println``, so a
  rename could create or destroy a match);
* it contains a digit (template literals may contain ``\\d``);
* it occurs as a whole word inside a string or char literal of this
  submission (string contents are not renamed, so the quoted mention
  would fall out of sync).

Keeping is always sound — bucket mates must agree on every kept
spelling byte for byte — it only splits buckets more finely, so the
per-submission hazards cost cluster merging, never correctness.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.cluster.audit import ClusterAudit
from repro.errors import JavaSyntaxError
from repro.java.lexer import TokenType, tokenize
from repro.pdg.graph import Epdg

#: Spellings that may be renamed must be digit-free: expression
#: templates may contain literal ``\d`` which would otherwise match
#: inside a name in one bucket member but not another.
_SAFE_NAME = re.compile(r"[A-Za-z_$]+\Z")

#: Maximal identifier-character runs, used to scan string-literal values
#: for identifier spellings.
_WORD = re.compile(r"[A-Za-z0-9_$]+")

#: Identifier tokens inside canonical node content (first char non-digit).
_CONTENT_IDENTIFIER = re.compile(r"[A-Za-z_$][A-Za-z0-9_$]*")

#: String/char literal regions of canonical (printer-produced) content.
_CONTENT_LITERALS = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')


@dataclass(frozen=True)
class SourcePrint:
    """The canonical fingerprint of one submission's token stream.

    ``spellings`` holds the renameable identifier spellings in
    first-occurrence (slot) order — the member side of the bucket
    bijection.  ``positions`` holds every token's 1-based
    ``(line, column)``; the specializer maps diagnostic positions
    between bucket mates by token index.  ``unsafe_reason`` is an
    escape valve for hazards that cannot be resolved by keeping a
    spelling; every current gate resolves that way, so it stays
    ``None``.
    """

    digest: str
    spellings: tuple[str, ...]
    positions: tuple[tuple[int, int], ...]
    unsafe_reason: str | None = None

    @property
    def replay_safe(self) -> bool:
        return self.unsafe_reason is None


def _normalize_number(kind: str, text: str) -> str:
    """The spelling-independent value of a numeric literal token.

    Mirrors the parser exactly (``repro/java/parser.py``): underscores
    are insignificant, hex collapses to decimal, type suffixes drop, and
    doubles canonicalize through ``float``.  A spelling the parser would
    reject hashes verbatim (prefixed to stay injective), so submissions
    that fail identically still bucket together.
    """
    try:
        if kind == "int":
            return str(int(text.replace("_", ""), 0))
        if kind == "long":
            return str(int(text.rstrip("lL").replace("_", ""), 0))
        return repr(float(text.rstrip("dDfF").replace("_", "")))
    except ValueError:
        return "!" + text


def _must_keep(
    name: str, audit: ClusterAudit, literal_words: frozenset[str]
) -> bool:
    """Whether ``name`` must be hashed verbatim rather than renamed."""
    if name in audit.keep_identifiers or name in literal_words:
        return True
    if not _SAFE_NAME.match(name):
        return True
    return any(run in name for run in audit.literal_runs)


def fingerprint_source(
    source: str, audit: ClusterAudit
) -> SourcePrint | None:
    """Fingerprint ``source`` under ``audit``'s keep set.

    Returns ``None`` when the source does not lex (the full path will
    produce the syntax-error report).
    """
    try:
        tokens = tokenize(source)
    except JavaSyntaxError:
        return None
    # first pass: identifier spellings quoted inside string/char
    # literals must be kept, and a literal may follow the identifier's
    # first occurrence, so the keep decision needs the whole stream
    literal_words = frozenset(
        word
        for token in tokens
        if token.type in (TokenType.STRING_LITERAL, TokenType.CHAR_LITERAL)
        for word in _WORD.findall(token.value)
    )
    hasher = hashlib.sha256()
    update = hasher.update
    slots: dict[str, int] = {}
    spellings: list[str] = []
    positions: list[tuple[int, int]] = []
    kept_present: set[str] = set()
    keep_memo: dict[str, bool] = {}
    for token in tokens:
        token_type = token.type
        value = token.value
        positions.append((token.line, token.column))
        if token_type is TokenType.IDENTIFIER:
            kept = keep_memo.get(value)
            if kept is None:
                kept = keep_memo[value] = _must_keep(
                    value, audit, literal_words
                )
            if kept:
                kept_present.add(value)
                canonical = "identifier:" + value
            else:
                slot = slots.get(value)
                if slot is None:
                    slot = slots[value] = len(spellings)
                    spellings.append(value)
                canonical = f"s{slot}"
        elif token_type is TokenType.INT_LITERAL:
            canonical = "i" + _normalize_number("int", value)
        elif token_type is TokenType.LONG_LITERAL:
            canonical = "l" + _normalize_number("long", value)
        elif token_type is TokenType.DOUBLE_LITERAL:
            canonical = "d" + _normalize_number("double", value)
        else:
            canonical = token_type.value + ":" + value
        # length prefixes keep the serialization injective whatever the
        # token text contains
        update(f"{len(canonical)}\x1f{canonical}\x1f{token.line}\x1e".encode())
    update(b"\x1dsignature\x1d")
    for name in sorted(kept_present | set(slots)):
        slot = slots.get(name)
        entry = f"k:{name}" if slot is None else f"s:{slot}"
        update(f"{len(entry)}\x1f{entry}\x1e".encode())
    return SourcePrint(
        digest=hasher.hexdigest(),
        spellings=tuple(spellings),
        positions=tuple(positions),
    )


# ----------------------------------------------------------------------
# EPDG-level fingerprint (the semantic reference definition)


def _content_literal_words(text: str) -> set[str]:
    """Identifier words inside the literal regions of printed content.

    Printed literals are re-escaped, and every supported escape target
    is a non-word character, so skipping backslash pairs reproduces the
    word set of the unescaped value (what :func:`fingerprint_source`
    scans).
    """
    words: set[str] = set()
    for match in _CONTENT_LITERALS.finditer(text):
        body = match.group()[1:-1]
        chunk: list[str] = []
        i = 0
        while i < len(body):
            ch = body[i]
            if ch == "\\":
                chunk.append("\x00")
                i += 2
                continue
            chunk.append(ch)
            i += 1
        words.update(_WORD.findall("".join(chunk)))
    return words


def fingerprint_graphs(
    graphs: dict[str, Epdg], audit: ClusterAudit
) -> str:
    """Canonical digest of a submission's EPDGs.

    This is the *semantic definition* of bucket equality: node types,
    alpha-renamed hash-consed node contents, canonical defines/uses,
    edges, and the identifier order signature.  The token-level
    :func:`fingerprint_source` is a strict refinement of it — equal
    token fingerprints imply equal graph fingerprints (asserted by the
    test suite) — and is what the hot path uses, because it never needs
    the frontend.  Graph-level fingerprints serve tests, docs, and any
    future cache that already has graphs in hand.
    """
    literal_words = frozenset(
        word
        for graph in graphs.values()
        for node in graph.nodes
        for word in _content_literal_words(node.content)
    )
    hasher = hashlib.sha256()
    update = hasher.update
    slots: dict[str, int] = {}
    kept_present: set[str] = set()
    keep_memo: dict[str, bool] = {}

    def canonical_word(word: str) -> str:
        kept = keep_memo.get(word)
        if kept is None:
            kept = keep_memo[word] = _must_keep(word, audit, literal_words)
        if kept:
            kept_present.add(word)
            return word
        slot = slots.get(word)
        if slot is None:
            slot = slots[word] = len(slots)
        return f"\x00{slot}\x00"

    def canonical_text(text: str) -> str:
        parts: list[str] = []
        position = 0
        for match in _CONTENT_LITERALS.finditer(text):
            parts.append(
                _CONTENT_IDENTIFIER.sub(
                    lambda m: canonical_word(m.group()),
                    text[position:match.start()],
                )
            )
            parts.append(match.group())
            position = match.end()
        parts.append(
            _CONTENT_IDENTIFIER.sub(
                lambda m: canonical_word(m.group()), text[position:]
            )
        )
        return "".join(parts)

    for method_name in sorted(graphs):
        graph = graphs[method_name]
        header = canonical_word(method_name)
        update(f"m{len(header)}\x1f{header}\x1e".encode())
        for node in graph.nodes:
            content = canonical_text(node.content)
            # iterate in sorted-original order so slot assignment for
            # names that never occur in content stays deterministic
            defines = ",".join(
                canonical_word(name) for name in sorted(node.defines)
            )
            uses = ",".join(
                canonical_word(name) for name in sorted(node.uses)
            )
            entry = f"{node.type.value}|{content}|{defines}|{uses}"
            update(f"n{len(entry)}\x1f{entry}\x1e".encode())
        for edge in sorted(
            graph.edges, key=lambda e: (e.source, e.target, e.type.value)
        ):
            update(
                f"e{edge.source},{edge.target},{edge.type.value}\x1e".encode()
            )
    update(b"\x1dsignature\x1d")
    for name in sorted(kept_present | set(slots)):
        slot = slots.get(name)
        entry = f"k:{name}" if slot is None else f"s:{slot}"
        update(f"{len(entry)}\x1f{entry}\x1e".encode())
    return hasher.hexdigest()
