"""Canonical bucket records and member specialization.

A bucket's representative is graded through the full path once; its
:class:`~repro.core.report.GradingReport` is then *canonicalized* by
:func:`build_cluster_record`: every whole-word occurrence of a
renameable identifier spelling in the delivered text is replaced by its
fingerprint slot, and every diagnostic position by its token index.
The record is a property of the bucket, not of the representative —
any member can be specialized from it, and it persists
fingerprint-keyed in the result store.

:func:`specialize` inverts the canonicalization for one member in
microseconds: slots are joined back with the member's own spellings,
token indices are looked up in the member's own token stream (bucket
mates agree on token count and line layout; columns may differ), and
the report is rebuilt.  No parsing, matching, or analysis runs for a
member — that is the entire point.

Soundness rests on the audit (:mod:`repro.cluster.audit`) and the
fingerprint keep rules (:mod:`repro.cluster.fingerprint`):

* a renameable spelling never collides with the report vocabulary —
  the fixed words of feedback templates, pattern names/descriptions,
  and the matching layer's hard-coded message text — so a whole-word
  occurrence of one in a comment can only be γ interpolation;
* feedback-template holes are word-separated, so an interpolated name
  always appears as a maximal word run;
* renameable spellings never occur inside string literals (and hence
  never inside canonical snippets' literal regions), and diagnostic
  templates quote exactly their identifier bindings.

Grading is rename-equivariant under those rules, so the specialized
report is byte-identical to what the full path would have produced —
the property the differential tests assert over every seed cohort.
"""

from __future__ import annotations

import re

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.cluster.fingerprint import SourcePrint
from repro.core.assignment import Assignment
from repro.core.report import GradingReport
from repro.java.lexer import TokenType, tokenize
from repro.matching.feedback import FeedbackComment, FeedbackStatus
from repro.matching.submission import MatchOutcome

#: Version of the canonical record layout, persisted with every record.
RECORD_VERSION = 2

#: String/char literal regions of canonical (printer-produced) text.
_LITERAL_REGIONS = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')

#: Identifier tokens inside canonical code text.
_IDENTIFIER = re.compile(r"[A-Za-z_$][A-Za-z0-9_$]*")

#: Maximal word runs inside rendered message prose.
_WORD_RUN = re.compile(r"[A-Za-z0-9_$]+")

#: Quoted identifiers inside rendered diagnostic messages.
_QUOTED_NAME = re.compile(r"'([A-Za-z_$][A-Za-z0-9_$]*)'")


class SpecializeError(Exception):
    """A member could not be specialized; callers fall back to the
    full grading path (this is a performance event, never a
    correctness one)."""


# ----------------------------------------------------------------------
# canonical parts: text with slot holes


def _split_code(text: str, slots: dict[str, int]) -> list:
    """Split canonical *code* text into literal chunks and slots.

    String/char literal regions are never split — the fingerprint keep
    rules guarantee no renameable spelling occurs as a word inside
    them, so they are bucket-invariant and stay literal.  Used for
    diagnostic snippets (node content, signatures, names).
    """
    parts: list = []

    def emit_literal(chunk: str) -> None:
        if chunk:
            if parts and parts[-1][0] == "l":
                parts[-1][1] += chunk
            else:
                parts.append(["l", chunk])

    def split_identifiers(chunk: str) -> None:
        position = 0
        for match in _IDENTIFIER.finditer(chunk):
            slot = slots.get(match.group())
            if slot is None:
                continue
            emit_literal(chunk[position:match.start()])
            parts.append(["s", slot])
            position = match.end()
        emit_literal(chunk[position:])

    position = 0
    for match in _LITERAL_REGIONS.finditer(text):
        split_identifiers(text[position:match.start()])
        emit_literal(match.group())
        position = match.end()
    split_identifiers(text[position:])
    return parts


def _split_words(text: str, slots: dict[str, int]) -> list:
    """Split rendered message *prose* on renameable spellings.

    Every maximal word run equal to a renameable spelling becomes a
    slot; the audit's report vocabulary guarantees such a run can only
    be an interpolated identifier.
    """
    parts: list = []
    position = 0
    for match in _WORD_RUN.finditer(text):
        slot = slots.get(match.group())
        if slot is None:
            continue
        chunk = text[position:match.start()]
        if chunk or not parts:
            parts.append(["l", chunk])
        parts.append(["s", slot])
        position = match.end()
    tail = text[position:]
    if tail or not parts:
        parts.append(["l", tail])
    return parts


def _split_quoted(message: str, slots: dict[str, int]) -> list:
    """Split a rendered diagnostic message on its quoted identifiers.

    Diagnostic templates pass the audit's apostrophe discipline —
    they quote exactly their ``{var}``/``{method}`` bindings — so the
    quoted spans are the only places a spelling can appear.
    """
    parts: list = []
    position = 0
    for match in _QUOTED_NAME.finditer(message):
        slot = slots.get(match.group(1))
        if slot is None:
            continue
        parts.append(["l", message[position : match.start() + 1]])
        parts.append(["s", slot])
        position = match.end() - 1
    tail = message[position:]
    if tail or not parts:
        parts.append(["l", tail])
    return parts


def _join(parts: list, spellings: tuple[str, ...]) -> str:
    return "".join(
        chunk if kind == "l" else spellings[chunk] for kind, chunk in parts
    )


def _tag(name: str, slots: dict[str, int]) -> list:
    slot = slots.get(name)
    return ["k", name] if slot is None else ["s", slot]


def _untag(tagged, spellings: tuple[str, ...]) -> str:
    kind, value = tagged
    return value if kind == "k" else spellings[value]


# ----------------------------------------------------------------------
# building the canonical record


def build_cluster_record(
    assignment: Assignment,
    sprint: SourcePrint,
    report: GradingReport,
) -> dict | None:
    """Canonicalize a representative's grading report into a bucket
    record.

    Returns ``None`` when the report cannot be represented (no
    outcome, or a diagnostic whose position is not a token start) —
    the bucket is then simply not registered and members grade through
    the full path.
    """
    outcome = report.outcome
    if outcome is None:
        return None
    slots = {name: i for i, name in enumerate(sprint.spellings)}
    token_index = {
        position: index for index, position in enumerate(sprint.positions)
    }
    diagnostics_payload = []
    for diagnostic in report.diagnostics:
        if diagnostic.line is None:
            index = None
        else:
            index = token_index.get((diagnostic.line, diagnostic.column))
            if index is None:
                return None
        diagnostics_payload.append(
            [
                diagnostic.check,
                str(diagnostic.severity),
                _tag(diagnostic.method, slots),
                _split_quoted(diagnostic.message, slots),
                index,
                _split_code(diagnostic.snippet, slots),
            ]
        )
    return {
        "version": RECORD_VERSION,
        "assignment": assignment.name,
        "slots": len(sprint.spellings),
        "score": outcome.score,
        "truncated": outcome.truncated,
        "method_assignment": [
            [q, _tag(a, slots)]
            for q, a in outcome.method_assignment.items()
        ],
        "comments": [
            [
                comment.source,
                comment.kind,
                str(comment.status),
                _split_words(comment.message, slots),
                [_split_words(detail, slots) for detail in comment.details],
            ]
            for comment in outcome.comments
        ],
        "diagnostics": diagnostics_payload,
    }


# ----------------------------------------------------------------------
# specializing a member


def specialize(record: dict, member: SourcePrint) -> GradingReport:
    """Rebuild the bucket's grading report for one member.

    Pure string joins and position lookups — no parsing, matching, or
    analysis.  Raises :class:`SpecializeError` when the record does not
    fit the member's fingerprint shape (version or slot-count drift).
    """
    spellings = member.spellings
    if record.get("version") != RECORD_VERSION or record.get("slots") != len(
        spellings
    ):
        raise SpecializeError("record does not match member fingerprint")
    comments = [
        FeedbackComment(
            source=source,
            kind=kind,
            status=FeedbackStatus(status),
            message=_join(message, spellings),
            details=tuple(_join(detail, spellings) for detail in details),
        )
        for source, kind, status, message, details in record["comments"]
    ]
    outcome = MatchOutcome(
        comments=comments,
        method_assignment={
            q: _untag(tagged, spellings)
            for q, tagged in record["method_assignment"]
        },
        score=record["score"],
        truncated=bool(record["truncated"]),
    )
    diagnostics = []
    for check, severity, method, message, index, snippet in record[
        "diagnostics"
    ]:
        if index is None:
            line = column = None
        else:
            line, column = member.positions[index]
        diagnostics.append(
            Diagnostic(
                check=check,
                severity=Severity(severity),
                method=_untag(method, spellings),
                message=_join(message, spellings),
                line=line,
                column=column,
                snippet=_join(snippet, spellings),
            )
        )
    return GradingReport(
        assignment_name=record["assignment"],
        outcome=outcome,
        diagnostics=diagnostics,
    )


# ----------------------------------------------------------------------
# renaming helper (benchmarks, tests)


def rename_submission(source: str, renaming: dict[str, str]) -> str:
    """Rewrite identifier tokens of ``source`` through ``renaming``.

    Splices at token positions, so string literals and comments are
    never touched.  Used by the clustering benchmark and the fingerprint
    tests to build alpha-variant cohorts.
    """
    tokens = tokenize(source)
    line_offsets = [0]
    for offset, char in enumerate(source):
        if char == "\n":
            line_offsets.append(offset + 1)
    out: list[str] = []
    consumed = 0
    for token in tokens:
        if token.type is not TokenType.IDENTIFIER:
            continue
        replacement = renaming.get(token.value)
        if replacement is None:
            continue
        start = line_offsets[token.line - 1] + token.column - 1
        out.append(source[consumed:start])
        out.append(replacement)
        consumed = start + len(token.value)
    out.append(source[consumed:])
    return "".join(out)
