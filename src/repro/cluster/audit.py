"""Knowledge-base safety audit for submission clustering.

Clustering grades one representative per fingerprint bucket and re-binds
its feedback to every member, so it is only sound when grading is
*equivariant* under renaming: replacing every occurrence of an
identifier token with a fresh spelling must change nothing about the
grading outcome except the spellings embedded in the delivered text.

Two things can break equivariance, and both live in the knowledge base:

* **expression templates** (:class:`~repro.patterns.template.ExprTemplate`)
  are regexes matched against canonical node content.  Their *variable*
  segments are rename-safe by construction (``render`` wraps the γ-bound
  name in identifier-boundary lookarounds), but their *literal* segments
  are matched verbatim — a literal letter run like ``fact`` matches
  inside an identifier ``myfact``, so a rename could create or destroy a
  match.  The audit whitelists the regex constructs literal segments may
  use and extracts every literal identifier-character run; identifiers
  mentioned literally become *kept* (never renamed), and the
  per-submission gate in :mod:`repro.cluster.fingerprint` refuses any
  submission whose renameable identifiers contain one of the runs as a
  substring.

* **diagnostic message templates** quote identifiers as ``'{var}'`` /
  ``'{method}'``; the specializer re-binds them by rewriting quoted
  spans, which is only unambiguous while the templates use apostrophes
  for nothing else.  The audit enforces that discipline.

A third hazard lives in the *delivered feedback text*.  The specializer
re-binds a representative's comment messages by substituting every
whole-word occurrence of a renameable spelling, which is only correct
when such an occurrence can *only* come from γ interpolation.  The
audit therefore collects the **report vocabulary** — every fixed word
that can reach a comment independent of the submission: the literal
words of the natural-language feedback templates (and their hole
names, which render verbatim when unbound), pattern names and
descriptions, constraint names, and the word inventory of the matching
layer's own hard-coded message strings.  Identifiers that collide with
the vocabulary are kept, never renamed.  Feedback templates must also
keep their ``{hole}``\\ s word-separated — a hole glued to a word
character (``my{x}``, ``{a}{b}``) would fuse the interpolated name
into a larger word run the specializer cannot see.

An assignment that fails the audit is simply never clustered — the
grader counts ``cluster.unsafe_kb`` and grades every submission through
the full path, so the audit can stay strict without risking wrong
feedback.
"""

from __future__ import annotations

import ast
import inspect
import re
from dataclasses import dataclass
from functools import lru_cache

import repro.matching.constraints
import repro.matching.feedback
import repro.matching.submission
from repro.analysis.checks import CHECKS
from repro.core.assignment import Assignment
from repro.patterns.groups import PatternGroup
from repro.patterns.model import ContainmentConstraint, Pattern
from repro.patterns.template import ExprTemplate

#: Characters that may appear in Java identifiers (and hence inside the
#: canonical node content the templates are matched against).
_WORD_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$"
)

#: Escaped letters accepted as regex constructs in literal segments.
#: ``\d`` is neutralized by the no-digit identifier gate and ``\s``
#: never matches inside an identifier; every other construct
#: (``\w``, ``\b``, ``\S`` ...) can see across a rename.
_SAFE_CONSTRUCTS = frozenset("ds")

#: Lookaround/group openers whose *structure* is rename-safe (their
#: contents are still scanned like any other segment text).
_GROUP_PREFIXES = ("(?:", "(?=", "(?!", "(?<=", "(?<!")

_QUOTED_SPAN = re.compile(r"'[^']*'")
_QUOTED_BINDING = re.compile(r"'\{(?:var|method)\}'")

#: ``{hole}`` references in natural-language feedback templates
#: (the :func:`~repro.patterns.template.render_feedback` syntax).
_FEEDBACK_HOLE = re.compile(r"\{([A-Za-z_$][A-Za-z0-9_$]*)\}")

#: Maximal identifier-character runs (word inventory extraction).
_WORD_RUN = re.compile(r"[A-Za-z0-9_$]+")


@dataclass(frozen=True)
class ClusterAudit:
    """Verdict of the clustering safety audit for one assignment.

    ``keep_identifiers`` are spellings the fingerprint must never
    rename (expected method names, identifiers the templates match
    literally, and words of the report vocabulary — fixed text that can
    appear in delivered feedback); ``literal_runs`` are the literal
    identifier-character runs whose presence *inside* a renameable
    identifier makes a spelling unsafe to rename.
    """

    assignment_name: str
    safe: bool
    reasons: tuple[str, ...]
    keep_identifiers: frozenset[str]
    literal_runs: frozenset[str]


def _scan_literal_segment(segment: str) -> tuple[str | None, set[str]]:
    """Whitelist-scan one literal regex segment of a template.

    Returns ``(reason, runs)``: ``reason`` is ``None`` when every
    construct in the segment is rename-safe, otherwise a short
    explanation; ``runs`` collects the maximal identifier-character runs
    matched verbatim (the substring hazards).
    """
    runs: set[str] = set()
    current: list[str] = []

    def flush() -> None:
        if current:
            run = "".join(current)
            if not run.isdigit():
                # pure digit runs cannot occur inside renameable
                # identifiers (the fingerprint gate rejects digits)
                runs.add(run)
            current.clear()

    i = 0
    n = len(segment)
    while i < n:
        ch = segment[i]
        if ch == "\\":
            if i + 1 >= n:
                flush()
                return "dangling backslash", runs
            escaped = segment[i + 1]
            i += 2
            if escaped.isalnum():
                if escaped not in _SAFE_CONSTRUCTS:
                    flush()
                    return f"regex construct \\{escaped}", runs
                flush()
                if i < n and segment[i] in "*+?":
                    i += 1
                continue
            # an escaped metacharacter is a literal character; ``\$``
            # is the one escape that lands inside the identifier
            # alphabet and must extend the current run
            if escaped in _WORD_CHARS:
                current.append(escaped)
            else:
                flush()
            continue
        if ch == "(":
            flush()
            for prefix in _GROUP_PREFIXES:
                if segment.startswith(prefix, i):
                    i += len(prefix)
                    break
            else:
                i += 1
            continue
        if ch == ")":
            flush()
            i += 1
            if i < n and segment[i] in "*+?{":
                return "quantified group", runs
            continue
        if ch == ".":
            flush()
            if i + 1 < n and segment[i + 1] in "*+":
                i += 2
                continue
            return "unquantified '.'", runs
        if ch in "|^$":
            # alternation and anchors never match identifier characters
            flush()
            i += 1
            continue
        if ch in "*+?":
            flush()
            return f"quantifier {ch!r} after a literal", runs
        if ch in "[]{}":
            flush()
            return f"regex construct {ch!r}", runs
        if ch in _WORD_CHARS:
            current.append(ch)
        else:
            # plain punctuation / whitespace: literal, never part of an
            # identifier
            flush()
        i += 1
    flush()
    return None, runs


def _iter_templates(assignment: Assignment):
    """Every :class:`ExprTemplate` the assignment can match with."""
    for expected in assignment.expected_methods:
        for pattern, _count in expected.patterns:
            if isinstance(pattern, PatternGroup):
                variants: list[Pattern] = [
                    v.pattern for v in pattern.variants
                ]
            else:
                variants = [pattern]
            for variant in variants:
                for node in variant.nodes:
                    yield variant.name, node.expr
                    if node.approx is not None:
                        yield variant.name, node.approx
        for constraint in expected.constraints:
            if isinstance(constraint, ContainmentConstraint):
                yield constraint.name, constraint.expr


@lru_cache(maxsize=1)
def _matching_layer_vocabulary() -> frozenset[str]:
    """Word inventory of the matching layer's hard-coded message text.

    Scans the string constants (f-string segments included, docstrings
    excluded) of the modules that compose feedback comments, so the
    vocabulary tracks the code instead of a hand-kept list.
    """
    words: set[str] = set()
    for module in (
        repro.matching.feedback,
        repro.matching.constraints,
        repro.matching.submission,
    ):
        tree = ast.parse(inspect.getsource(module))
        docstrings: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                body = node.body
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    docstrings.add(id(body[0].value))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in docstrings
            ):
                words.update(_WORD_RUN.findall(node.value))
    return frozenset(words)


def _scan_feedback_template(template: str) -> tuple[list[str], set[str]]:
    """Audit one natural-language feedback template.

    Returns ``(reasons, words)``: holes must be word-separated from
    their surroundings and from each other, and ``words`` collects the
    template's fixed text runs plus its hole names (an unbound hole
    renders verbatim as ``{name}``).
    """
    reasons: list[str] = []
    previous_end = -1
    for match in _FEEDBACK_HOLE.finditer(template):
        before = template[match.start() - 1] if match.start() else ""
        after = template[match.end()] if match.end() < len(template) else ""
        if (
            before in _WORD_CHARS
            or after in _WORD_CHARS
            or match.start() == previous_end
        ):
            reasons.append(
                f"feedback template {template!r} glues hole "
                f"{match.group()!r} to adjacent text"
            )
        previous_end = match.end()
    words = set(_WORD_RUN.findall(_FEEDBACK_HOLE.sub(" ", template)))
    words.update(_FEEDBACK_HOLE.findall(template))
    return reasons, words


def _iter_feedback_text(assignment: Assignment):
    """Every string that can reach a comment: ``(kind, owner, text)``.

    ``kind`` is ``"template"`` for :func:`render_feedback` inputs (which
    get the hole-discipline check) and ``"fixed"`` for plain text
    interpolated into messages (names, descriptions).
    """
    for expected in assignment.expected_methods:
        yield "fixed", expected.name, expected.name
        for pattern, _count in expected.patterns:
            if isinstance(pattern, PatternGroup):
                yield "fixed", pattern.name, pattern.name
                variants: list[Pattern] = [v.pattern for v in pattern.variants]
            else:
                variants = [pattern]
            for variant in variants:
                yield "fixed", variant.name, variant.name
                yield "fixed", variant.name, variant.description
                yield "template", variant.name, variant.feedback_present
                yield "template", variant.name, variant.feedback_missing
                for node in variant.nodes:
                    yield "template", variant.name, node.feedback_correct
                    yield "template", variant.name, node.feedback_incorrect
        for constraint in expected.constraints:
            yield "fixed", constraint.name, constraint.name
            yield "template", constraint.name, constraint.feedback_correct
            yield "template", constraint.name, constraint.feedback_incorrect


def _audit_check_templates() -> list[str]:
    """Enforce the apostrophe discipline of diagnostic templates.

    The specializer re-binds identifiers in rendered diagnostic
    messages by rewriting ``'...'`` spans, which is only unambiguous
    while check templates quote exactly their ``{var}``/``{method}``
    interpolations and nothing else.
    """
    reasons = []
    for check in CHECKS:
        template = check.template
        spans = _QUOTED_SPAN.findall(template)
        if template.count("'") != 2 * len(spans) or any(
            not _QUOTED_BINDING.fullmatch(span) for span in spans
        ):
            reasons.append(
                f"check {check.id!r} template quotes more than its "
                "identifier bindings"
            )
    return reasons


def audit_assignment(assignment: Assignment) -> ClusterAudit:
    """Decide whether ``assignment`` may be graded through clustering."""
    reasons: list[str] = []
    runs: set[str] = set()
    if not assignment.enforce_headers:
        # without header enforcement the method-assignment sweep orders
        # methods by name, which a rename may permute
        reasons.append("assignment does not enforce method headers")
    seen: set[tuple[str, frozenset[str]]] = set()
    for owner, template in _iter_templates(assignment):
        key = (template.source, template.variables)
        if key in seen:
            continue
        seen.add(key)
        for kind, segment in template_segments(template):
            if kind != "lit":
                continue
            reason, segment_runs = _scan_literal_segment(segment)
            runs.update(segment_runs)
            if reason is not None:
                reasons.append(
                    f"template {template.source!r} of {owner!r}: {reason}"
                )
    reasons.extend(_audit_check_templates())
    vocabulary: set[str] = set(_matching_layer_vocabulary())
    for kind, owner, text in _iter_feedback_text(assignment):
        if kind == "template":
            template_reasons, words = _scan_feedback_template(text)
            for reason in template_reasons:
                reasons.append(f"{owner!r}: {reason}")
            vocabulary.update(words)
        else:
            vocabulary.update(_WORD_RUN.findall(text))
    keep = {q.name for q in assignment.expected_methods}
    keep.update(run for run in runs if _is_identifier(run))
    keep.update(word for word in vocabulary if _is_identifier(word))
    return ClusterAudit(
        assignment_name=assignment.name,
        safe=not reasons,
        reasons=tuple(reasons),
        keep_identifiers=frozenset(keep),
        literal_runs=frozenset(runs),
    )


def template_segments(template: ExprTemplate):
    """The template's (kind, text) segments; ``kind`` is "lit" or "var"."""
    return template._segments


_IDENTIFIER_RE = re.compile(r"[A-Za-z_$][A-Za-z0-9_$]*\Z")


def _is_identifier(text: str) -> bool:
    return _IDENTIFIER_RE.match(text) is not None
