"""Public grading API.

:class:`Assignment` bundles everything an instructor configures for one
assignment — expected methods with patterns/counts/constraints, reference
solutions, functional tests, and (for the evaluation) the synthetic error
model.  :class:`FeedbackEngine` grades submissions against an assignment
and returns :class:`GradingReport` objects.  :class:`BatchGrader` grades
whole cohorts with worker pools, a content-keyed result cache, and
per-phase :class:`PipelineStats` metrics (see ``docs/SCALING.md``).
"""

from repro.core.analytics import CohortAnalysis, analyze_cohort
from repro.core.assignment import Assignment, FunctionalTest
from repro.core.engine import FeedbackEngine
from repro.core.metrics import PipelineStats
from repro.core.pipeline import (
    BatchGrader,
    BatchResult,
    GradedSubmission,
    ResultCache,
    source_key,
)
from repro.core.report import GradingReport

__all__ = [
    "CohortAnalysis",
    "analyze_cohort",
    "Assignment",
    "FunctionalTest",
    "FeedbackEngine",
    "GradingReport",
    "BatchGrader",
    "BatchResult",
    "GradedSubmission",
    "ResultCache",
    "PipelineStats",
    "source_key",
]
