"""Public grading API.

:class:`Assignment` bundles everything an instructor configures for one
assignment — expected methods with patterns/counts/constraints, reference
solutions, functional tests, and (for the evaluation) the synthetic error
model.  :class:`FeedbackEngine` grades submissions against an assignment
and returns :class:`GradingReport` objects.
"""

from repro.core.analytics import CohortAnalysis, analyze_cohort
from repro.core.assignment import Assignment, FunctionalTest
from repro.core.engine import FeedbackEngine
from repro.core.report import GradingReport

__all__ = [
    "CohortAnalysis",
    "analyze_cohort",
    "Assignment",
    "FunctionalTest",
    "FeedbackEngine",
    "GradingReport",
]
