"""Pipeline instrumentation: structured metrics for batch grading.

:class:`PipelineStats` is the structured record a
:class:`~repro.core.pipeline.BatchGrader` run returns alongside the
reports: per-phase wall time (parse / EPDG build / pattern match /
constraint match, see :data:`repro.instrumentation.PIPELINE_PHASES`),
cache hit rate, error counts, and end-to-end throughput.  The CLI's
``grade-batch --stats`` prints :meth:`PipelineStats.summary`;
programmatic consumers use :meth:`PipelineStats.to_dict` (flat,
JSON-friendly).

The numbers come from two sources: the :class:`BatchGrader` itself
(wall time, cache counters, error counts) and the ambient
:mod:`repro.instrumentation` phase timers that the engine and matcher
wrap around their hot sections.

Usage — the fields are plain data, so stats can also be built by hand
(handy for tests and for aggregating across shards):

>>> from repro.core.metrics import PipelineStats
>>> stats = PipelineStats(mode="thread", workers=4)
>>> stats.record_submission(cache_hit=False, seconds=0.25)
>>> stats.record_submission(cache_hit=True)
>>> stats.record_phase("parse", 0.05)
>>> stats.record_phase("pattern_match", 0.15)
>>> stats.wall_seconds = 0.5
>>> stats.submissions, stats.graded, stats.cache_hits
(2, 1, 1)
>>> stats.cache_hit_rate
0.5
>>> stats.throughput
4.0
>>> sorted(stats.to_dict())[:4]
['cache_hit_rate', 'cache_hits', 'counters', 'errors']
>>> print(stats.summary())
Pipeline stats (mode=thread, workers=4)
  submissions: 2 (1 graded, 1 cache hits, 0 parse errors, 0 timeouts, 0 errors)
  cache hit rate: 50.0%
  throughput: 4.0 submissions/s (wall 0.500 s)
  per-phase wall time:
    parse                50.0ms  (1 calls)
    pattern_match       150.0ms  (1 calls)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrumentation import PIPELINE_PHASES, PhaseCollector


@dataclass
class PipelineStats:
    """Metrics for one batch-grading run.

    Counter semantics:

    ``submissions``
        Every item in the batch, including failures and cache hits.
    ``graded``
        Submissions that went through the full pipeline (cache misses).
    ``cache_hits``
        Submissions answered from the result cache — either a previous
        batch's entry or a duplicate earlier in the same batch.
    ``parse_errors``
        Submissions rejected by the Java frontend (still *answered*:
        they get a ``parse-error`` report).
    ``timeouts``
        Submissions abandoned by the per-submission wall-clock guard
        (``max_seconds``) or a serving-layer deadline; they get a
        ``timeout`` report.
    ``errors``
        Submissions whose grading raised unexpectedly; the pipeline
        isolates these into ``error`` reports instead of aborting.
    """

    mode: str = "serial"
    workers: int = 1
    submissions: int = 0
    graded: int = 0
    cache_hits: int = 0
    parse_errors: int = 0
    timeouts: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    grading_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_counts: dict[str, int] = field(default_factory=dict)
    #: Event counters from :func:`repro.instrumentation.count` — matcher
    #: search statistics (``match.candidates_pruned``), analysis and
    #: repair events, and interpreter compile-cache traffic
    #: (``interp.compile_hits`` / ``interp.compile_misses``).
    counters: dict[str, int] = field(default_factory=dict)

    # -- recording -------------------------------------------------------

    def record_submission(
        self,
        cache_hit: bool = False,
        seconds: float = 0.0,
        parse_error: bool = False,
        timeout: bool = False,
        error: bool = False,
    ) -> None:
        """Count one batch item and its grading time (0 for cache hits)."""
        self.submissions += 1
        if cache_hit:
            self.cache_hits += 1
        else:
            self.graded += 1
            self.grading_seconds += seconds
        if parse_error:
            self.parse_errors += 1
        if timeout:
            self.timeouts += 1
        if error:
            self.errors += 1

    def record_phase(self, name: str, seconds: float, calls: int = 1) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
        self.phase_counts[name] = self.phase_counts.get(name, 0) + calls

    def record_counter(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge_phases(self, collector: PhaseCollector) -> None:
        """Fold a per-submission :class:`PhaseCollector` into the totals."""
        for name, seconds in collector.seconds.items():
            self.record_phase(name, seconds, collector.counts.get(name, 1))
        for name, amount in collector.counters.items():
            self.record_counter(name, amount)

    def merge(self, other: "PipelineStats") -> None:
        """Fold another run's counters in (sharded / multi-batch use)."""
        self.submissions += other.submissions
        self.graded += other.graded
        self.cache_hits += other.cache_hits
        self.parse_errors += other.parse_errors
        self.timeouts += other.timeouts
        self.errors += other.errors
        self.wall_seconds += other.wall_seconds
        self.grading_seconds += other.grading_seconds
        for name, seconds in other.phase_seconds.items():
            self.record_phase(name, seconds, other.phase_counts.get(name, 1))
        for name, amount in other.counters.items():
            self.record_counter(name, amount)

    # -- derived ---------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submissions answered without grading."""
        return self.cache_hits / self.submissions if self.submissions else 0.0

    @property
    def throughput(self) -> float:
        """Submissions per wall-clock second, end to end."""
        return (
            self.submissions / self.wall_seconds if self.wall_seconds else 0.0
        )

    @property
    def grading_ms_per_submission(self) -> float:
        """Mean milliseconds actually spent grading one cache miss."""
        return 1000 * self.grading_seconds / self.graded if self.graded else 0.0

    # -- export ----------------------------------------------------------

    def to_dict(self) -> dict:
        """Flat JSON-friendly view (phase times in milliseconds)."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "submissions": self.submissions,
            "graded": self.graded,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "parse_errors": self.parse_errors,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 6),
            "grading_seconds": round(self.grading_seconds, 6),
            "throughput_per_second": round(self.throughput, 2),
            "phase_ms": {
                name: round(1000 * seconds, 3)
                for name, seconds in sorted(self.phase_seconds.items())
            },
            "phase_calls": dict(sorted(self.phase_counts.items())),
            "counters": dict(sorted(self.counters.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineStats":
        """Rebuild stats from a :meth:`to_dict` payload.

        The inverse of :meth:`to_dict` up to its rounding: phase times
        come back from milliseconds, derived rates are recomputed.  Used
        by the campaign runner to replay checkpointed shard stats into a
        whole-campaign aggregate on resume; unknown or missing fields
        default, so journals written by older versions still load.
        """
        stats = cls(
            mode=str(payload.get("mode", "serial")),
            workers=int(payload.get("workers", 1)),
            submissions=int(payload.get("submissions", 0)),
            graded=int(payload.get("graded", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            parse_errors=int(payload.get("parse_errors", 0)),
            timeouts=int(payload.get("timeouts", 0)),
            errors=int(payload.get("errors", 0)),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            grading_seconds=float(payload.get("grading_seconds", 0.0)),
        )
        phase_ms = payload.get("phase_ms") or {}
        phase_calls = payload.get("phase_calls") or {}
        for name, ms in phase_ms.items():
            stats.phase_seconds[name] = float(ms) / 1000.0
        for name, calls in phase_calls.items():
            stats.phase_counts[name] = int(calls)
        for name, amount in (payload.get("counters") or {}).items():
            stats.counters[name] = int(amount)
        return stats

    def summary(self) -> str:
        """Human-readable multi-line report (the CLI's ``--stats`` view)."""
        lines = [
            f"Pipeline stats (mode={self.mode}, workers={self.workers})",
            f"  submissions: {self.submissions} ({self.graded} graded, "
            f"{self.cache_hits} cache hits, {self.parse_errors} parse "
            f"errors, {self.timeouts} timeouts, {self.errors} errors)",
            f"  cache hit rate: {100 * self.cache_hit_rate:.1f}%",
            f"  throughput: {self.throughput:.1f} submissions/s "
            f"(wall {self.wall_seconds:.3f} s)",
        ]
        if self.phase_seconds:
            lines.append("  per-phase wall time:")
            known = [p for p in PIPELINE_PHASES if p in self.phase_seconds]
            extra = sorted(set(self.phase_seconds) - set(known))
            for name in [*known, *extra]:
                lines.append(
                    f"    {name:16s} {1000 * self.phase_seconds[name]:8.1f}ms"
                    f"  ({self.phase_counts.get(name, 0)} calls)"
                )
        if self.counters:
            lines.append("  event counters:")
            for name in sorted(self.counters):
                lines.append(f"    {name:32s} {self.counters[name]:>10d}")
        return "\n".join(lines)
