"""Assignment specification: the instructor-facing configuration object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.matching.submission import ExpectedMethod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.perf.model import PerfSpec
    from repro.synth.spaces import SubmissionSpace


@dataclass(frozen=True)
class FunctionalTest:
    """One functional test: invoke a method and compare observations.

    ``expected_stdout`` compares captured console output verbatim (the
    strictness that produces several of the paper's discrepancies);
    ``expected_return`` compares the return value; ``check`` is an
    optional custom predicate over the :class:`ExecutionResult` for tests
    that need richer logic.
    """

    method: str
    arguments: tuple = ()
    expected_stdout: str | None = None
    expected_return: object | None = None
    compare_return: bool = False
    files: tuple[tuple[str, str], ...] = ()
    stdin: str = ""
    check: Callable[[object], bool] | None = None

    def files_dict(self) -> dict[str, str]:
        return dict(self.files)


@dataclass
class Assignment:
    """Everything the grading pipeline knows about one assignment.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"esc-LAB-3-P2-V1"``.
    title / statement:
        Human-readable description shown in reports.
    expected_methods:
        Algorithm 2 inputs: per expected method, its patterns with
        occurrence counts and its constraints.
    reference_solutions:
        At least one correct solution (source text), used by the synthetic
        generator and the baselines.
    tests:
        Functional test suite (Table I column ``T``).
    enforce_headers:
        Whether submissions must use the published method header(s).
    space_factory:
        Zero-argument callable building the assignment's synthetic
        :class:`~repro.synth.spaces.SubmissionSpace` (column ``S``).
    perf:
        Optional :class:`~repro.analysis.perf.model.PerfSpec` declaring
        the achievable cost shape per entry method, the input-size
        metric, and extra probe-ladder runs for the performance
        analyzer (``--perf``); ``None`` disables the dynamic side.
    """

    name: str
    title: str
    statement: str
    expected_methods: list[ExpectedMethod] = field(default_factory=list)
    reference_solutions: list[str] = field(default_factory=list)
    tests: list[FunctionalTest] = field(default_factory=list)
    enforce_headers: bool = True
    space_factory: Callable[[], "SubmissionSpace"] | None = None
    #: Section VII extension: synthesize negated Cond nodes for else
    #: branches so positive-form patterns match either arm.
    synthesize_else_conditions: bool = False
    perf: "PerfSpec | None" = None

    @property
    def pattern_count(self) -> int:
        """Table I column ``P``: number of pattern uses in this assignment."""
        return sum(len(q.patterns) for q in self.expected_methods)

    @property
    def constraint_count(self) -> int:
        """Table I column ``C``: number of constraints in this assignment."""
        return sum(len(q.constraints) for q in self.expected_methods)

    def space(self) -> "SubmissionSpace":
        if self.space_factory is None:
            raise ValueError(f"assignment {self.name} has no submission space")
        return self.space_factory()

    def method_names(self) -> list[str]:
        return [q.name for q in self.expected_methods]
