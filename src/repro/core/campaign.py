"""Streaming campaign runner: grade arbitrarily large cohorts safely.

A grading *campaign* is the offline counterpart of the serving layer:
one assignment, one knowledge-base version, and a submission stream
that can be far larger than memory — the million-submission cohort the
paper's MOOC setting implies.  :class:`CampaignRunner` consumes any
iterable of ``(label, source)`` pairs **in bounded memory** by slicing
it into fixed-size shards and feeding each shard to a
:class:`~repro.core.pipeline.BatchGrader` (cluster-aware, any worker
mode), with three properties the one-shot ``grade-batch`` path cannot
give:

* **Checkpoint/resume.**  After each shard is graded and its reports
  are persisted, the runner journals a shard record — content digest,
  submission count, and the shard's
  :class:`~repro.core.metrics.PipelineStats` — into the result store
  under the campaign id.  A re-run of the same campaign skips every
  journaled shard (validating its digest against the incoming stream,
  so a changed manifest fails loudly instead of resuming into the
  wrong data) and merges the checkpointed stats back in, making an
  interrupted million-submission run resumable with **zero regrades**.
* **Transactional shards.**  Each shard's store writes happen inside
  ``store.batch()`` — on the SQLite backend that is one transaction
  per shard (one fsync per thousand reports), and a crash mid-shard
  rolls back to misses rather than torn entries.  The journal record
  is written only *after* the shard's reports and output file are
  durable, so a checkpoint never claims work that did not land.
* **KB-scoped journal.**  Journal records live in the store under the
  same KB fingerprint as the reports they checkpoint; editing the
  knowledge base invalidates both together, and a resumed campaign
  under a new KB regrades from scratch instead of trusting stale
  checkpoints.

Usage::

    from repro.core.campaign import CampaignRunner, synthetic_stream
    from repro.kb import get_assignment

    assignment = get_assignment("assignment1")
    runner = CampaignRunner(assignment, "/var/cache/repro", shard_size=1000)
    result = runner.run(
        synthetic_stream(assignment, 1_000_000),
        campaign_id="cohort-2026",
    )
    print(result.stats.summary())

The CLI front end is ``repro grade-campaign`` (manifest files or
``--synthetic`` streams); ``benchmarks/bench_campaign.py`` drives the
million-submission acceptance run.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core.assignment import Assignment
from repro.core.metrics import PipelineStats
from repro.core.pipeline import BatchGrader
from repro.core.store import ResultStore, _safe_component
from repro.errors import ReproError

#: Default submissions per shard: large enough to amortize the per-shard
#: transaction and journal write, small enough that one shard's labels,
#: sources, and reports stay comfortably in memory.
DEFAULT_SHARD_SIZE = 1000


class CampaignError(ReproError):
    """A campaign cannot start or resume safely."""


@dataclass
class CampaignResult:
    """Everything one :meth:`CampaignRunner.run` call produced.

    ``stats`` aggregates the *whole* campaign — checkpointed shards
    replayed from the journal plus shards graded by this run — while
    ``run_stats`` covers only the work this invocation performed, which
    is what makes "resume finished with zero regrades" a checkable
    property (``run_stats.graded == 0``).
    """

    campaign_id: str
    assignment_name: str
    stats: PipelineStats = field(default_factory=PipelineStats)
    run_stats: PipelineStats = field(default_factory=PipelineStats)
    shards_total: int = 0
    shards_resumed: int = 0
    shards_graded: int = 0
    submissions: int = 0
    wall_seconds: float = 0.0
    #: ``False`` when ``max_shards`` stopped the run before the stream
    #: was exhausted — the checkpoint state a resume picks up from.
    completed: bool = True

    def to_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "assignment": self.assignment_name,
            "shards_total": self.shards_total,
            "shards_resumed": self.shards_resumed,
            "shards_graded": self.shards_graded,
            "submissions": self.submissions,
            "wall_seconds": round(self.wall_seconds, 6),
            "completed": self.completed,
            "stats": self.stats.to_dict(),
            "run_stats": self.run_stats.to_dict(),
        }


def _shard_digest(shard: Sequence[tuple[str, str]]) -> str:
    """Order-sensitive content digest of one shard's submissions."""
    hasher = hashlib.sha256()
    for label, source in shard:
        hasher.update(label.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(source.encode("utf-8"))
        hasher.update(b"\x01")
    return hasher.hexdigest()


def _chunked(
    submissions: Iterable[tuple[str, str]], size: int
) -> Iterator[list[tuple[str, str]]]:
    """Slice a lazy stream into lists of at most ``size`` items."""
    shard: list[tuple[str, str]] = []
    for item in submissions:
        shard.append(item)
        if len(shard) >= size:
            yield shard
            shard = []
    if shard:
        yield shard


class CampaignRunner:
    """Grades a submission stream in resumable, transactional shards.

    Parameters mirror :class:`~repro.core.pipeline.BatchGrader` — the
    runner owns one grader for the whole campaign, so the in-memory
    result cache and (in cluster mode) the bucket registry warm up
    across shards.  ``store`` is required: the journal and the reports
    live there, and it is what makes the campaign resumable.
    """

    def __init__(
        self,
        assignment: Assignment,
        store: ResultStore | str | os.PathLike,
        *,
        shard_size: int = DEFAULT_SHARD_SIZE,
        mode: str = "serial",
        workers: int | None = None,
        cluster: bool = False,
        max_seconds: float | None = None,
        store_backend: str = "auto",
        repair: bool = False,
        perf: bool = False,
    ):
        if shard_size <= 0:
            raise ValueError("shard_size must be positive")
        self.assignment = assignment
        self.shard_size = shard_size
        if isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(
                store, assignment, backend=store_backend, repair=repair,
                perf=perf,
            )
        self.grader = BatchGrader(
            assignment,
            mode=mode,
            workers=workers,
            cache=True,
            max_seconds=max_seconds,
            store=self.store,
            cluster=cluster,
            repair=repair,
            perf=perf,
        )

    # ------------------------------------------------------------------

    def run(
        self,
        submissions: Iterable[tuple[str, str]],
        *,
        campaign_id: str = "campaign",
        resume: bool = True,
        max_shards: int | None = None,
        output_dir: str | os.PathLike | None = None,
    ) -> CampaignResult:
        """Grade the stream; journal each shard; resume past checkpoints.

        ``max_shards`` stops the run after that many shards have been
        *processed* (graded or resumed) — deliberate checkpoint-and-exit
        semantics for benchmarks and crash drills.  ``output_dir``
        additionally writes one JSONL file per shard
        (``shard-<index>.jsonl``; one ``{"label", "key", "report"}``
        object per line, in input order) — the campaign's deliverable,
        byte-identical whichever backend or worker mode produced it.

        Raises :class:`CampaignError` when the journal disagrees with
        the incoming stream (different ``shard_size``, or a shard whose
        digest no longer matches its checkpoint): resuming would
        silently mislabel reports, so it refuses.
        """
        if not campaign_id or _safe_component(campaign_id) != campaign_id:
            raise CampaignError(
                f"campaign id {campaign_id!r} must be non-empty and use "
                "only letters, digits, '-', '_', and '.'"
            )
        if max_shards is not None and max_shards <= 0:
            raise ValueError("max_shards must be positive")
        started = time.perf_counter()
        out_dir = Path(output_dir) if output_dir is not None else None
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)

        result = CampaignResult(
            campaign_id=campaign_id,
            assignment_name=self.assignment.name,
        )
        self._check_header(campaign_id, resume)

        for index, shard in enumerate(_chunked(submissions, self.shard_size)):
            if max_shards is not None and index >= max_shards:
                result.completed = False
                break
            digest = _shard_digest(shard)
            shard_key = f"{campaign_id}/shard-{index:08d}"
            checkpoint = self.store.get_campaign(shard_key) if resume else None
            if checkpoint is not None:
                self._resume_shard(
                    index, shard, digest, checkpoint, out_dir, result
                )
            else:
                self._grade_shard(
                    index, shard, digest, shard_key, out_dir, result
                )
            result.shards_total += 1
            result.submissions += len(shard)

        result.wall_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # internals

    def _check_header(self, campaign_id: str, resume: bool) -> None:
        """Validate or create the campaign's header record.

        The header pins the shard geometry: resuming with a different
        ``shard_size`` would re-slice the stream so no digest could
        match, which must be an explicit error, not a silent full
        regrade.
        """
        header_key = f"{campaign_id}/header"
        header = self.store.get_campaign(header_key) if resume else None
        if header is not None:
            recorded = header.get("shard_size")
            if recorded != self.shard_size:
                raise CampaignError(
                    f"campaign {campaign_id!r} was journaled with "
                    f"shard_size={recorded}, cannot resume with "
                    f"shard_size={self.shard_size}"
                )
            return
        self.store.put_campaign(
            header_key,
            {
                "shard_size": self.shard_size,
                "assignment": self.assignment.name,
            },
        )

    def _resume_shard(
        self,
        index: int,
        shard: list[tuple[str, str]],
        digest: str,
        checkpoint: dict,
        out_dir: Path | None,
        result: CampaignResult,
    ) -> None:
        """Replay a journaled shard: stats from the checkpoint, no grading."""
        if checkpoint.get("digest") != digest:
            raise CampaignError(
                f"campaign {result.campaign_id!r} shard {index} does not "
                "match its checkpoint (the manifest changed); rerun with "
                "a new campaign id or --no-resume"
            )
        result.stats.merge(PipelineStats.from_dict(checkpoint.get("stats", {})))
        result.shards_resumed += 1
        result.run_stats.record_counter("campaign.shards_resumed")
        result.run_stats.record_counter(
            "campaign.submissions_resumed", len(shard)
        )
        if out_dir is not None and not self._output_path(out_dir, index).is_file():
            # The reports are in the store; regenerate the missing file
            # by replaying them (store hits — still zero regrades).
            batch = self.grader.grade_batch(shard)
            self.run_stats_merge(result, batch.stats)
            self._write_output(out_dir, index, batch)

    def _grade_shard(
        self,
        index: int,
        shard: list[tuple[str, str]],
        digest: str,
        shard_key: str,
        out_dir: Path | None,
        result: CampaignResult,
    ) -> None:
        """Grade one shard transactionally, then journal its checkpoint."""
        with self.store.batch():
            batch = self.grader.grade_batch(shard)
        if out_dir is not None:
            self._write_output(out_dir, index, batch)
        # Journal strictly after the reports (and output file) are
        # durable: a crash between them re-grades one shard from a warm
        # store, which is cheap — the opposite order could checkpoint
        # work that never landed.
        self.store.put_campaign(
            shard_key,
            {
                "digest": digest,
                "count": len(shard),
                "stats": batch.stats.to_dict(),
            },
        )
        result.stats.merge(batch.stats)
        self.run_stats_merge(result, batch.stats)
        result.shards_graded += 1
        result.run_stats.record_counter("campaign.shards_graded")

    @staticmethod
    def run_stats_merge(result: CampaignResult, stats: PipelineStats) -> None:
        """Fold one batch's stats into the fresh-work aggregate."""
        result.run_stats.mode = stats.mode
        result.run_stats.workers = stats.workers
        result.run_stats.merge(stats)

    @staticmethod
    def _output_path(out_dir: Path, index: int) -> Path:
        return out_dir / f"shard-{index:08d}.jsonl"

    def _write_output(self, out_dir: Path, index: int, batch) -> None:
        """Atomically write one shard's reports as JSONL, input order."""
        path = self._output_path(out_dir, index)
        lines = [
            json.dumps(
                {
                    "label": item.label,
                    "key": item.key,
                    "report": item.report.to_dict(),
                },
                separators=(",", ":"),
            )
            for item in batch.items
        ]
        tmp_path = path.parent / f"{path.name}.{os.getpid()}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
        os.replace(tmp_path, path)


# ----------------------------------------------------------------------
# submission streams


def iter_manifest(path: str | os.PathLike) -> Iterator[tuple[str, str]]:
    """Stream ``(label, source)`` pairs from a JSONL manifest, lazily.

    Each line is a JSON object with a ``label`` (optional; defaults to
    the line number) and either an inline ``source`` or a ``path`` to a
    Java file resolved relative to the manifest.  The file is read one
    line at a time, so manifests can be arbitrarily large.
    """
    manifest = Path(path)
    base = manifest.parent
    with open(manifest, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise CampaignError(
                    f"{manifest}:{number}: not valid JSON ({error})"
                ) from None
            if not isinstance(record, dict):
                raise CampaignError(
                    f"{manifest}:{number}: expected a JSON object"
                )
            label = str(record.get("label", f"line-{number:08d}"))
            if "source" in record:
                source = record["source"]
                if not isinstance(source, str):
                    raise CampaignError(
                        f"{manifest}:{number}: 'source' must be a string"
                    )
            elif "path" in record:
                source_path = base / str(record["path"])
                try:
                    source = source_path.read_text(encoding="utf-8")
                except OSError as error:
                    raise CampaignError(
                        f"{manifest}:{number}: cannot read "
                        f"{source_path} ({error})"
                    ) from None
            else:
                raise CampaignError(
                    f"{manifest}:{number}: needs 'source' or 'path'"
                )
            yield label, source


def synthetic_stream(
    assignment: Assignment,
    count: int,
    seed: int = 11,
    unique: int = 200,
    duplicate_fraction: float = 0.6,
) -> Iterator[tuple[str, str]]:
    """Generate a duplicate-heavy synthetic cohort, lazily.

    Mirrors the MOOC workload shape the paper targets: a bounded pool
    of distinct solutions (drawn from the assignment's synthesis
    space) covered by a much larger stream of resubmissions.  The
    first ``unique`` items enumerate the pool once (so every distinct
    source appears), then the remainder samples the pool at random —
    ``duplicate_fraction`` of the *pool-eligible* stream positions are
    repeats by construction.  Deterministic for a given seed, which is
    what lets an interrupted synthetic campaign resume against the
    digest journal.
    """
    from repro.synth import sample_submissions

    unique = max(1, min(unique, count, round(count * (1 - duplicate_fraction)) or 1))
    originals = sample_submissions(assignment.space(), unique, seed=seed)
    rng = random.Random(seed)
    for i in range(count):
        if i < len(originals):
            source = originals[i].source
        else:
            source = rng.choice(originals).source
        yield f"synthetic-{i:08d}", source
