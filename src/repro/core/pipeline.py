"""Batch grading pipeline: workers + content-keyed caching + metrics.

A MOOC assignment receives its submissions as a *stream* with heavy
duplication — students resubmit unchanged files, and cohorts converge
on identical solutions.  :class:`BatchGrader` exploits that: it grades
an iterable of submissions against one assignment using

* a **content-keyed result cache** (:class:`ResultCache`) so identical
  or resubmitted sources skip parse + EPDG build + matching entirely —
  duplicates inside one batch are graded exactly once, and the cache
  persists across batches of the same grader;
* a configurable **worker pool** (``mode="serial" | "thread" |
  "process"``) — serial is fully deterministic and dependency-free,
  threads share one stateless engine, processes sidestep the GIL for
  CPU-bound cohorts on multicore hosts;
* an **instrumentation layer** (:mod:`repro.core.metrics`) recording
  per-phase wall time, cache hit rate, error counts, and throughput as
  a structured :class:`~repro.core.metrics.PipelineStats`.

Results are **order-stable and mode-independent**: the reports come
back in input order and are identical whichever mode produced them
(grading is deterministic, and duplicates share the representative's
report).  A submission that fails to parse — or whose grading raises —
is isolated into a ``parse-error`` / ``error`` report instead of
aborting the batch.

Usage:

>>> from repro import get_assignment
>>> from repro.core.pipeline import BatchGrader
>>> assignment = get_assignment("assignment1")
>>> good = assignment.reference_solutions[0]
>>> grader = BatchGrader(assignment)  # mode="serial", cache on
>>> result = grader.grade_batch(
...     [("alice", good), ("bob", good), ("carol", "int x = ;")]
... )
>>> [item.report.status for item in result.items]
['ok', 'ok', 'parse-error']
>>> [item.from_cache for item in result.items]  # bob reuses alice's work
[False, True, False]
>>> (result.stats.submissions, result.stats.graded, result.stats.cache_hits)
(3, 2, 1)
>>> again = grader.grade_batch([good])  # cross-batch cache hit
>>> (again.stats.cache_hits, again.stats.graded)
(1, 0)
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.assignment import Assignment
from repro.core.engine import FeedbackEngine
from repro.core.metrics import PipelineStats
from repro.core.report import GradingReport
from repro.core.store import ResultStore
from repro.instrumentation import (
    DeadlineExceeded,
    PhaseCollector,
    collecting,
    deadline,
)

#: Supported worker models.
MODES = ("serial", "thread", "process")

#: Report statuses that are deterministic functions of the source text
#: and therefore safe to cache.  Internal ``error`` reports may be
#: transient (e.g. a worker dying) and ``timeout`` reports depend on
#: host load and the configured budget, so neither is ever cached —
#: neither in memory here nor on disk (the serve layer checks this set
#: before persisting to a :class:`~repro.core.store.ResultStore`).
CACHEABLE_STATUSES = frozenset({"ok", "rejected", "parse-error"})


def source_key(source: str) -> str:
    """Content key for a submission: SHA-256 of its normalized text.

    Normalization is deliberately conservative — it must never change
    what the parser sees.  Line endings are canonicalized, trailing
    whitespace is stripped per line, and leading/trailing blank lines
    are dropped; so a resubmission that only differs in CRLFs or a
    stray trailing newline still hits the cache.
    """
    lines = source.replace("\r\n", "\n").replace("\r", "\n").split("\n")
    normalized = "\n".join(line.rstrip() for line in lines).strip("\n")
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded LRU cache of :class:`GradingReport` keyed by content.

    Grading is deterministic and the engine stateless, so a report can
    be replayed verbatim for any submission with the same key.  Eviction
    is least-recently-used; invalidation is by construction — the key
    is the content, so a changed submission is a different key, and a
    changed *assignment* requires a new cache (one cache belongs to one
    :class:`BatchGrader`, which is bound to one assignment).
    """

    def __init__(self, maxsize: int = 8192):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, GradingReport] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> GradingReport | None:
        report = self._entries.get(key)
        if report is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return report

    def put(self, key: str, report: GradingReport) -> None:
        if report.status not in CACHEABLE_STATUSES:
            return
        self._entries[key] = report
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


@dataclass(frozen=True)
class GradedSubmission:
    """One batch item: its label, content key, and report."""

    label: str
    key: str
    report: GradingReport
    #: True when the report was replayed (cross-batch cache hit or
    #: duplicate of an earlier submission in the same batch) rather
    #: than graded fresh for this item.
    from_cache: bool


@dataclass
class BatchResult:
    """Everything one :meth:`BatchGrader.grade_batch` call produced."""

    assignment_name: str
    items: list[GradedSubmission] = field(default_factory=list)
    stats: PipelineStats = field(default_factory=PipelineStats)

    @property
    def reports(self) -> list[GradingReport]:
        return [item.report for item in self.items]

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for item in self.items:
            status = item.report.status
            counts[status] = counts.get(status, 0) + 1
        return counts

    def rendered(self) -> list[str]:
        """Per-submission feedback texts, in input order."""
        return [item.report.render() for item in self.items]


# -- process-pool plumbing (must be module-level for pickling) -----------

_WORKER_ENGINE: FeedbackEngine | None = None
_WORKER_MAX_SECONDS: float | None = None


def _init_process_worker(
    assignment: Assignment,
    max_seconds: float | None = None,
    cluster: bool = False,
    store_root: str | None = None,
    store_backend: str = "auto",
    repair: bool = False,
    perf: bool = False,
) -> None:
    """Build one engine per worker process (assignment pickled once).

    With ``cluster=True`` each worker wraps its engine in a
    :class:`~repro.cluster.grader.ClusterGrader`; bucket registries are
    per-process (workers cannot share memory), but with a ``store_root``
    every worker reads and writes the same fingerprint-keyed records, so
    buckets discovered by one process specialize in all of them.  The
    parent passes its already-resolved ``store_backend`` so workers
    never re-run auto-detection against a directory the parent may
    still be populating.

    With ``repair=True`` each worker carries its own
    :class:`~repro.repair.engine.RepairEngine`; the store (scoped to the
    repair fingerprint, see :class:`~repro.core.storage.ResultStore`)
    lets the first worker's built corpus be loaded by the rest.
    ``perf=True`` gives each worker its own
    :class:`~repro.analysis.perf.analyzer.PerfAnalyzer` (stateless
    beyond its cached probe ladder, so per-process copies are free).
    """
    global _WORKER_ENGINE, _WORKER_MAX_SECONDS
    store = (
        ResultStore(
            store_root, assignment, backend=store_backend, repair=repair,
            perf=perf,
        )
        if store_root is not None
        else None
    )
    repairer = None
    if repair:
        from repro.repair.engine import RepairEngine

        repairer = RepairEngine.for_assignment(assignment, store=store)
    perf_analyzer = None
    if perf:
        from repro.analysis.perf.analyzer import PerfAnalyzer

        perf_analyzer = PerfAnalyzer(assignment)
    engine = FeedbackEngine(
        assignment, frontend_cache_size=0, repairer=repairer,
        perf_analyzer=perf_analyzer,
    )
    if cluster:
        from repro.cluster.grader import ClusterGrader

        engine = ClusterGrader(engine, store=store)
    _WORKER_ENGINE = engine
    _WORKER_MAX_SECONDS = max_seconds


def _process_grade(job: tuple[str, str]):
    key, source = job
    assert _WORKER_ENGINE is not None
    return (key, *_grade_one(_WORKER_ENGINE, source, _WORKER_MAX_SECONDS))


def _grade_one(
    engine, source: str, max_seconds: float | None = None
) -> tuple[GradingReport, PhaseCollector, float]:
    """Grade one source with per-phase timing and error isolation.

    ``engine`` is anything exposing ``grade``/``assignment`` — a
    :class:`FeedbackEngine` or a cluster grader wrapping one.

    ``max_seconds`` installs a cooperative wall-clock deadline around
    the grade: the pipeline phases and the matcher's search loop check
    it, so a pathological parse/match is abandoned (``timeout`` report)
    instead of hanging its worker.  Phases completed before the
    deadline fired are still in the returned collector — partial work
    is accounted for, not dropped.
    """
    collector = PhaseCollector()
    started = time.perf_counter()
    try:
        with collecting(collector), deadline(max_seconds):
            report = engine.grade(source)
    except DeadlineExceeded:
        report = GradingReport(
            assignment_name=engine.assignment.name,
            timeout=(
                f"grading exceeded the {max_seconds:g}s wall-clock limit"
                if max_seconds is not None
                else "grading exceeded its wall-clock limit"
            ),
        )
    except Exception as exc:  # noqa: BLE001 - isolate, don't abort the batch
        report = GradingReport(
            assignment_name=engine.assignment.name,
            error=f"{type(exc).__name__}: {exc}",
        )
    return report, collector, time.perf_counter() - started


class BatchGrader:
    """Grades many submissions against one assignment.

    Parameters
    ----------
    assignment:
        The assignment to grade against.
    mode:
        ``"serial"`` (deterministic in-process loop, the default),
        ``"thread"`` (one shared engine across a thread pool), or
        ``"process"`` (one engine per worker process; requires the
        assignment to be picklable, which every registry assignment is).
    workers:
        Pool size for the parallel modes; defaults to the host's CPU
        count.  Ignored in serial mode.
    cache:
        ``True`` (default) for a private :class:`ResultCache`, ``False``
        to disable caching, or a :class:`ResultCache` instance to share
        one cache across graders/batches.
    max_seconds:
        Optional per-submission wall-clock budget.  A submission whose
        parse/match exceeds it is abandoned cooperatively (the matcher
        checks the ambient deadline in its search loop) and reported
        with ``status == "timeout"`` instead of hanging its worker.
        Timeout reports are never cached — they depend on host load,
        not just the source text.
    store:
        Optional persistent cross-process cache: a
        :class:`~repro.core.store.ResultStore`, or a directory path from
        which one is built for this assignment.  Consulted after the
        in-memory cache misses and written through after fresh grades,
        so a later batch run — or a concurrent one in another process —
        replays reports instead of re-grading.  Requires ``cache`` to be
        enabled (with ``cache=False`` the grader is a deliberate
        no-reuse baseline and the store is ignored).  Store traffic is
        reported in ``stats.counters`` as ``cache.store_hits`` /
        ``cache.store_misses`` / ``cache.store_writes`` /
        ``cache.store_errors``.
    cluster:
        Opt into submission clustering (:mod:`repro.cluster`): bucket
        submissions by canonical fingerprint, grade one representative
        per bucket through the full path, and specialize its report to
        the other members.  Strictly output-preserving — specialized
        reports are byte-identical to full grades — and effective
        exactly when the content cache is not: structural duplicates
        under different variable names, constants, and spacing.
        Cluster traffic shows up in ``stats.counters`` under
        ``cluster.*``.  With a ``store``, bucket records persist
        fingerprint-keyed, so warm runs specialize whole buckets
        without a single full grade.
    store_backend:
        Backend selector used when ``store`` is a directory path:
        ``"auto"`` (default; flips to SQLite when a ``store.sqlite``
        exists in the root), ``"json"``, or ``"sqlite"``.  Ignored when
        ``store`` is already a constructed
        :class:`~repro.core.store.ResultStore`.  Process workers
        inherit the parent's resolved backend rather than re-running
        auto-detection.
    repair:
        Opt into the repair channel (:mod:`repro.repair`): rejected
        submissions additionally get corpus-backed, functionally
        verified minimal-fix suggestions on their reports.  Off by
        default, and strictly additive when off — disabled runs produce
        byte-identical output to a build without the channel, enforced
        by scoping repair-enabled store entries under a derived
        fingerprint (see
        :func:`~repro.core.storage.repair_fingerprint`).  Repair
        traffic shows up in ``stats.counters`` under ``repair.*``.
    perf:
        Opt into performance diagnostics (:mod:`repro.analysis.perf`):
        every graded submission additionally runs the static loop
        anti-pattern detectors and — for assignments declaring a
        :class:`~repro.analysis.perf.model.PerfSpec` — the dynamic
        cost-shape fitter over the functional-test input ladder.
        Off by default and strictly additive when off (byte-identical
        output, enforced by the derived store fingerprint — see
        :func:`~repro.core.storage.perf_fingerprint`).  Perf traffic
        shows up in ``stats.counters`` under ``perf.*``.
    """

    def __init__(
        self,
        assignment: Assignment,
        mode: str = "serial",
        workers: int | None = None,
        cache: ResultCache | bool = True,
        max_seconds: float | None = None,
        store: ResultStore | str | os.PathLike | None = None,
        cluster: bool = False,
        store_backend: str = "auto",
        repair: bool = False,
        perf: bool = False,
    ):
        if mode not in MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {MODES}"
            )
        if max_seconds is not None and max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        self.max_seconds = max_seconds
        self.assignment = assignment
        self.mode = mode
        self.workers = (
            1 if mode == "serial"
            else max(1, workers if workers is not None
                     else (os.cpu_count() or 1))
        )
        if cache is True:
            self.cache: ResultCache | None = ResultCache()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        if store is None or isinstance(store, ResultStore):
            if (
                store is not None
                and store.repair_enabled != repair
            ):
                raise ValueError(
                    "store repair scope does not match the grader: pass "
                    "ResultStore(..., repair={}) or a directory path"
                    .format(repair)
                )
            if (
                store is not None
                and store.perf_enabled != perf
            ):
                raise ValueError(
                    "store perf scope does not match the grader: pass "
                    "ResultStore(..., perf={}) or a directory path"
                    .format(perf)
                )
            self.store: ResultStore | None = store
        else:
            self.store = ResultStore(
                store, assignment, backend=store_backend, repair=repair,
                perf=perf,
            )
        self.repair = repair
        self.perf = perf
        repairer = None
        if repair:
            from repro.repair.engine import RepairEngine

            repairer = RepairEngine.for_assignment(
                assignment, store=self.store
            )
        perf_analyzer = None
        if perf:
            from repro.analysis.perf.analyzer import PerfAnalyzer

            perf_analyzer = PerfAnalyzer(assignment)
        self.engine = FeedbackEngine(
            assignment, frontend_cache_size=0, repairer=repairer,
            perf_analyzer=perf_analyzer,
        )
        self.cluster = cluster
        self._cluster_grader = None
        if cluster:
            from repro.cluster.grader import ClusterGrader

            # serial/thread share one grader (its bucket registry is
            # lock-guarded); process mode builds one per worker in
            # _init_process_worker
            self._cluster_grader = ClusterGrader(
                self.engine, store=self.store
            )

    def grade_batch(
        self, submissions: Iterable[str | tuple[str, str]]
    ) -> BatchResult:
        """Grade a batch; returns reports in input order plus stats.

        ``submissions`` yields source texts or ``(label, source)``
        pairs; bare sources are labelled ``#0``, ``#1``, …
        """
        started = time.perf_counter()
        labelled = self._labelled(submissions)
        keys = [source_key(source) for _, source in labelled]
        # With the cache off, every item is its own job — no within-batch
        # dedupe either, so ``cache=False`` is a true no-reuse baseline.
        reuse = self.cache is not None
        job_keys = keys if reuse else [str(i) for i in range(len(keys))]

        # Resolve cross-batch cache hits — memory first, then the
        # persistent store — then dedupe what remains so each unique
        # uncached source is graded exactly once.
        stats = PipelineStats(mode=self.mode, workers=self.workers)
        store = self.store if reuse else None
        replayed: dict[str, GradingReport] = {}
        jobs: list[tuple[str, str]] = []
        seen: set[str] = set()
        for (_, source), job_key in zip(labelled, job_keys):
            if job_key in seen or job_key in replayed:
                continue
            cached = self.cache.get(job_key) if reuse else None
            if cached is None and store is not None:
                cached = store.get(job_key)
                if cached is not None:
                    stats.record_counter("cache.store_hits")
                    # Promote to memory so the next batch skips the disk.
                    self.cache.put(job_key, cached)
                else:
                    stats.record_counter("cache.store_misses")
            if cached is not None:
                replayed[job_key] = cached
            else:
                seen.add(job_key)
                jobs.append((job_key, source))

        fresh = self._run_jobs(jobs, stats)
        if reuse:
            sources = dict(jobs)
            for job_key, report in fresh.items():
                self.cache.put(job_key, report)
                if (
                    store is not None
                    and report.status in CACHEABLE_STATUSES
                ):
                    # in cluster mode, link the entry to its bucket so
                    # tooling can group stored reports by fingerprint
                    # (readers default the key away — see
                    # ResultStore.cluster_key)
                    link = (
                        self._cluster_grader.source_digest(
                            sources[job_key]
                        )
                        if self._cluster_grader is not None
                        else None
                    )
                    if store.put(job_key, report, cluster=link):
                        stats.record_counter("cache.store_writes")
                    else:
                        stats.record_counter("cache.store_errors")

        # Reassemble in input order; only the first occurrence of a
        # freshly graded key counts as "graded", the rest are hits.
        items: list[GradedSubmission] = []
        first_use: set[str] = set()
        for (label, _), key, job_key in zip(labelled, keys, job_keys):
            if job_key in fresh and job_key not in first_use:
                first_use.add(job_key)
                report, from_cache = fresh[job_key], False
            else:
                report = fresh.get(job_key) or replayed[job_key]
                from_cache = True
                stats.record_submission(cache_hit=True)
            items.append(
                GradedSubmission(
                    label=label, key=key, report=report,
                    from_cache=from_cache,
                )
            )
        stats.wall_seconds = time.perf_counter() - started
        return BatchResult(
            assignment_name=self.assignment.name, items=items, stats=stats
        )

    # -- internals -------------------------------------------------------

    @staticmethod
    def _labelled(
        submissions: Iterable[str | tuple[str, str]]
    ) -> list[tuple[str, str]]:
        labelled = []
        for position, item in enumerate(submissions):
            if isinstance(item, tuple):
                labelled.append(item)
            else:
                labelled.append((f"#{position}", item))
        return labelled

    def _run_jobs(
        self, jobs: Sequence[tuple[str, str]], stats: PipelineStats
    ) -> dict[str, GradingReport]:
        """Grade unique uncached jobs under the configured worker model."""
        results: dict[str, GradingReport] = {}
        if not jobs:
            return results
        grader = self._cluster_grader or self.engine
        if self.mode == "serial":
            outcomes = (
                (key, *_grade_one(grader, source, self.max_seconds))
                for key, source in jobs
            )
        elif self.mode == "thread":
            pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-grade",
            )
            with pool:
                outcomes = list(
                    pool.map(
                        lambda job: (
                            job[0],
                            *_grade_one(grader, job[1],
                                        self.max_seconds),
                        ),
                        jobs,
                    )
                )
        else:  # process
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_process_worker,
                initargs=(
                    self.assignment,
                    self.max_seconds,
                    self.cluster,
                    str(self.store.root) if self.store is not None else None,
                    self.store.backend_name
                    if self.store is not None
                    else "auto",
                    self.repair,
                    self.perf,
                ),
            )
            with pool:
                outcomes = list(pool.map(_process_grade, jobs))
        # Each outcome carries the child's PhaseCollector back to the
        # parent (it crosses the process boundary by pickle), so the
        # batch snapshot aggregates per-phase timings and matcher
        # counters identically in all three modes.
        for key, report, collector, seconds in outcomes:
            results[key] = report
            stats.merge_phases(collector)
            stats.record_submission(
                seconds=seconds,
                parse_error=report.status == "parse-error",
                timeout=report.status == "timeout",
                error=report.status == "error",
            )
        return results
