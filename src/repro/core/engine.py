"""The feedback engine: parse → EPDGs → Algorithm 2 → report."""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.report import GradingReport
from repro.errors import JavaSyntaxError
from repro.java import ast, parse_submission
from repro.matching.submission import match_graphs, match_submission
from repro.pdg.builder import extract_all_epdgs


class FeedbackEngine:
    """Grades submissions against one assignment.

    The engine is stateless across submissions (patterns and constraints
    are immutable), so a single instance can grade a whole MOOC's
    submission stream.
    """

    def __init__(self, assignment: Assignment):
        self.assignment = assignment

    def grade(self, source: str) -> GradingReport:
        """Grade one submission given as Java source text."""
        try:
            unit = parse_submission(source)
        except JavaSyntaxError as error:
            return GradingReport(
                assignment_name=self.assignment.name,
                parse_error=str(error),
            )
        return self.grade_unit(unit)

    def grade_unit(self, unit: ast.CompilationUnit) -> GradingReport:
        """Grade an already-parsed submission."""
        outcome = match_submission(
            unit,
            self.assignment.expected_methods,
            enforce_headers=self.assignment.enforce_headers,
            synthesize_else_conditions=(
                self.assignment.synthesize_else_conditions
            ),
        )
        return GradingReport(
            assignment_name=self.assignment.name, outcome=outcome
        )

    def grade_graphs(self, graphs) -> GradingReport:
        """Grade pre-built EPDGs (used by benchmarks to time phases)."""
        outcome = match_graphs(
            graphs,
            self.assignment.expected_methods,
            enforce_headers=self.assignment.enforce_headers,
        )
        return GradingReport(
            assignment_name=self.assignment.name, outcome=outcome
        )

    def extract(self, source: str):
        """Parse a submission and build its EPDGs (benchmark helper)."""
        return extract_all_epdgs(parse_submission(source))
