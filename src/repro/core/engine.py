"""The feedback engine: parse → EPDGs → Algorithm 2 → report."""

from __future__ import annotations

import threading

from repro.core.assignment import Assignment
from repro.core.report import GradingReport
from repro.errors import JavaSyntaxError
from repro.instrumentation import count, phase
from repro.java import ast, parse_submission
from repro.matching.submission import match_graphs
from repro.pdg.builder import extract_all_epdgs
from repro.pdg.graph import Epdg

#: Default capacity of the per-engine frontend cache (distinct sources).
FRONTEND_CACHE_SIZE = 512


class FeedbackEngine:
    """Grades submissions against one assignment.

    The engine's only mutable state is a bounded frontend cache mapping
    source text to its parse/EPDG-build result (guarded by a lock, so a
    single instance can still be shared across the batch pipeline's worker
    threads).  MOOC cohorts are duplicate-heavy, so re-submissions and
    copy-paste variants skip the ``parse`` and ``epdg_build`` phases
    entirely; EPDGs are immutable after construction and the matcher only
    reads them, so sharing graphs between repeated grades is safe.

    Each pipeline phase (parse, EPDG build, matching) runs inside a
    :func:`repro.instrumentation.phase` block; when an ambient
    :class:`~repro.instrumentation.PhaseCollector` is installed (as the
    batch pipeline does), per-phase wall time is recorded at no cost to
    ordinary one-off ``grade`` calls.  Frontend cache traffic shows up as
    ``frontend.cache_hits`` / ``frontend.cache_misses`` counters.
    """

    def __init__(
        self,
        assignment: Assignment,
        frontend_cache_size: int = FRONTEND_CACHE_SIZE,
    ):
        self.assignment = assignment
        self._frontend_cache_size = frontend_cache_size
        # source text -> dict of method EPDGs, or the JavaSyntaxError text
        # for submissions that do not parse.  Insertion-ordered for FIFO
        # eviction; a plain dict keeps the hit path to a single lookup.
        self._frontend_cache: dict[str, dict[str, Epdg] | str] = {}
        self._frontend_lock = threading.Lock()

    def grade(self, source: str) -> GradingReport:
        """Grade one submission given as Java source text."""
        result = self.frontend(source)
        if isinstance(result, str):
            return GradingReport(
                assignment_name=self.assignment.name, parse_error=result
            )
        return self.grade_graphs(result)

    def frontend(self, source: str) -> dict[str, Epdg] | str:
        """Parse ``source`` and build its EPDGs, through the cache.

        Returns the method-name → :class:`Epdg` mapping, or — for a
        submission that does not parse — the formatted
        :class:`JavaSyntaxError` text (parse errors are cached and
        replayed like any other frontend result).
        """
        if not self._frontend_cache_size:
            # Cache disabled (``frontend_cache_size=0``): the batch pipeline
            # and serve pool dedup at the report level already, and skipping
            # phases only in some workers would make per-phase counts
            # diverge across execution modes.
            try:
                with phase("parse"):
                    unit = parse_submission(source)
            except JavaSyntaxError as error:
                return str(error)
            with phase("epdg_build"):
                return extract_all_epdgs(
                    unit, self.assignment.synthesize_else_conditions
                )
        cached = self._frontend_cache.get(source)
        if cached is not None:
            count("frontend.cache_hits")
            return cached
        count("frontend.cache_misses")
        try:
            with phase("parse"):
                unit = parse_submission(source)
        except JavaSyntaxError as error:
            text = str(error)
            self._remember(source, text)
            return text
        with phase("epdg_build"):
            graphs = extract_all_epdgs(
                unit, self.assignment.synthesize_else_conditions
            )
        self._remember(source, graphs)
        return graphs

    def _remember(self, source: str, result: dict[str, Epdg] | str) -> None:
        with self._frontend_lock:
            cache = self._frontend_cache
            if source not in cache and len(cache) >= self._frontend_cache_size:
                cache.pop(next(iter(cache)))
            cache[source] = result

    def grade_unit(self, unit: ast.CompilationUnit) -> GradingReport:
        """Grade an already-parsed submission."""
        with phase("epdg_build"):
            graphs = extract_all_epdgs(
                unit, self.assignment.synthesize_else_conditions
            )
        return self.grade_graphs(graphs)

    def grade_graphs(self, graphs) -> GradingReport:
        """Grade pre-built EPDGs (used by benchmarks to time phases)."""
        outcome = match_graphs(
            graphs,
            self.assignment.expected_methods,
            enforce_headers=self.assignment.enforce_headers,
        )
        return GradingReport(
            assignment_name=self.assignment.name, outcome=outcome
        )

    def extract(self, source: str):
        """Parse a submission and build its EPDGs (benchmark helper)."""
        return extract_all_epdgs(parse_submission(source))
