"""The feedback engine: parse → EPDGs → Algorithm 2 → report."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.analysis.checks import run_checks
from repro.core.assignment import Assignment
from repro.core.report import GradingReport
from repro.errors import JavaSyntaxError
from repro.instrumentation import count, phase
from repro.java import ast, parse_submission
from repro.matching.submission import match_graphs
from repro.pdg.builder import extract_all_epdgs
from repro.pdg.graph import Epdg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.perf.analyzer import PerfAnalyzer
    from repro.repair.engine import RepairEngine

#: A cached frontend result: the parsed unit plus its method EPDGs.
FrontendEntry = tuple[ast.CompilationUnit, "dict[str, Epdg]"]

#: Default capacity of the per-engine frontend cache (distinct sources).
FRONTEND_CACHE_SIZE = 512


class FeedbackEngine:
    """Grades submissions against one assignment.

    The engine's only mutable state is a bounded frontend cache mapping
    source text to its parse/EPDG-build result (guarded by a lock, so a
    single instance can still be shared across the batch pipeline's worker
    threads).  MOOC cohorts are duplicate-heavy, so re-submissions and
    copy-paste variants skip the ``parse`` and ``epdg_build`` phases
    entirely; EPDGs are immutable after construction and the matcher only
    reads them, so sharing graphs between repeated grades is safe.

    Each pipeline phase (parse, EPDG build, matching) runs inside a
    :func:`repro.instrumentation.phase` block; when an ambient
    :class:`~repro.instrumentation.PhaseCollector` is installed (as the
    batch pipeline does), per-phase wall time is recorded at no cost to
    ordinary one-off ``grade`` calls.  Frontend cache traffic shows up as
    ``frontend.cache_hits`` / ``frontend.cache_misses`` counters.
    """

    def __init__(
        self,
        assignment: Assignment,
        frontend_cache_size: int = FRONTEND_CACHE_SIZE,
        repairer: "RepairEngine | None" = None,
        perf_analyzer: "PerfAnalyzer | None" = None,
    ):
        self.assignment = assignment
        #: Opt-in repair channel (:mod:`repro.repair`): when set, graded
        #: submissions that are rejected by pattern matching additionally
        #: run the ``repair`` phase and may carry verified fix
        #: suggestions on their reports.  ``None`` — the default
        #: everywhere unless explicitly enabled — keeps output
        #: byte-identical to earlier revisions.
        self.repairer = repairer
        #: Opt-in performance analyzer (:mod:`repro.analysis.perf`): when
        #: set, every graded submission with a parsed unit additionally
        #: runs the ``perf`` phase, and performance findings ride the
        #: report's ``perf`` list.  ``None`` keeps output byte-identical
        #: to earlier revisions.
        self.perf_analyzer = perf_analyzer
        self._frontend_cache_size = frontend_cache_size
        # source text -> (unit, EPDG dict), or the JavaSyntaxError text
        # for submissions that do not parse.  Insertion-ordered for FIFO
        # eviction; a plain dict keeps the hit path to a single lookup.
        # The AST rides along with the graphs because the analysis checks
        # need both views of the same submission; like the EPDGs, the AST
        # is never mutated after parsing, so sharing it is safe.
        self._frontend_cache: dict[str, FrontendEntry | str] = {}
        self._frontend_lock = threading.Lock()

    def grade(self, source: str) -> GradingReport:
        """Grade one submission given as Java source text."""
        result = self._frontend_entry(source)
        if isinstance(result, str):
            return GradingReport(
                assignment_name=self.assignment.name, parse_error=result
            )
        unit, graphs = result
        return self.grade_graphs(graphs, unit=unit)

    def frontend(self, source: str) -> dict[str, Epdg] | str:
        """Parse ``source`` and build its EPDGs, through the cache.

        Returns the method-name → :class:`Epdg` mapping, or — for a
        submission that does not parse — the formatted
        :class:`JavaSyntaxError` text (parse errors are cached and
        replayed like any other frontend result).
        """
        result = self._frontend_entry(source)
        if isinstance(result, str):
            return result
        return result[1]

    def frontend_entry(self, source: str) -> FrontendEntry | str:
        """Like :meth:`frontend` but also returning the parsed unit.

        Used by the cluster tests (:mod:`repro.cluster`) to obtain the
        graphs the graph-level fingerprint is defined over.
        """
        return self._frontend_entry(source)

    def _frontend_entry(self, source: str) -> FrontendEntry | str:
        """Like :meth:`frontend` but also returning the parsed unit."""
        if not self._frontend_cache_size:
            # Cache disabled (``frontend_cache_size=0``): the batch pipeline
            # and serve pool dedup at the report level already, and skipping
            # phases only in some workers would make per-phase counts
            # diverge across execution modes.
            try:
                with phase("parse"):
                    unit = parse_submission(source)
            except JavaSyntaxError as error:
                return str(error)
            with phase("epdg_build"):
                graphs = extract_all_epdgs(
                    unit, self.assignment.synthesize_else_conditions
                )
            return unit, graphs
        cached = self._frontend_cache.get(source)
        if cached is not None:
            count("frontend.cache_hits")
            return cached
        count("frontend.cache_misses")
        try:
            with phase("parse"):
                unit = parse_submission(source)
        except JavaSyntaxError as error:
            text = str(error)
            self._remember(source, text)
            return text
        with phase("epdg_build"):
            graphs = extract_all_epdgs(
                unit, self.assignment.synthesize_else_conditions
            )
        entry = (unit, graphs)
        self._remember(source, entry)
        return entry

    def _remember(self, source: str, result: FrontendEntry | str) -> None:
        with self._frontend_lock:
            cache = self._frontend_cache
            if source not in cache and len(cache) >= self._frontend_cache_size:
                cache.pop(next(iter(cache)))
            cache[source] = result

    def grade_unit(self, unit: ast.CompilationUnit) -> GradingReport:
        """Grade an already-parsed submission."""
        with phase("epdg_build"):
            graphs = extract_all_epdgs(
                unit, self.assignment.synthesize_else_conditions
            )
        return self.grade_graphs(graphs, unit=unit)

    def grade_graphs(
        self, graphs, unit: ast.CompilationUnit | None = None
    ) -> GradingReport:
        """Grade pre-built EPDGs (used by benchmarks to time phases).

        When the parsed ``unit`` is supplied, the static-analysis checks
        run over it alongside the graphs and their findings ride on the
        report's ``diagnostics``; without it (graphs from an external
        frontend) the report ships without diagnostics.
        """
        outcome = match_graphs(
            graphs,
            self.assignment.expected_methods,
            enforce_headers=self.assignment.enforce_headers,
        )
        diagnostics = []
        if unit is not None:
            with phase("analysis"):
                diagnostics = run_checks(unit, graphs)
        repair = []
        if self.repairer is not None and not outcome.is_fully_correct:
            # Only rejected submissions get suggestions: a fully correct
            # one needs none, and parse errors never reach this method.
            with phase("repair"):
                repair = self.repairer.suggest(graphs)
        perf = []
        if self.perf_analyzer is not None and unit is not None:
            # Performance findings apply to correct submissions too —
            # correct-but-slow is exactly the case the channel exists for.
            with phase("perf"):
                perf = self.perf_analyzer.analyze(unit)
        return GradingReport(
            assignment_name=self.assignment.name,
            outcome=outcome,
            diagnostics=diagnostics,
            repair=repair,
            perf=perf,
        )

    def extract(self, source: str):
        """Parse a submission and build its EPDGs (benchmark helper)."""
        return extract_all_epdgs(parse_submission(source))
