"""The feedback engine: parse → EPDGs → Algorithm 2 → report."""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.report import GradingReport
from repro.errors import JavaSyntaxError
from repro.instrumentation import phase
from repro.java import ast, parse_submission
from repro.matching.submission import match_graphs
from repro.pdg.builder import extract_all_epdgs


class FeedbackEngine:
    """Grades submissions against one assignment.

    The engine is stateless across submissions (patterns and constraints
    are immutable), so a single instance can grade a whole MOOC's
    submission stream — and, because it holds no mutable state, it can
    be shared freely across the batch pipeline's worker threads.

    Each pipeline phase (parse, EPDG build, matching) runs inside a
    :func:`repro.instrumentation.phase` block; when an ambient
    :class:`~repro.instrumentation.PhaseCollector` is installed (as the
    batch pipeline does), per-phase wall time is recorded at no cost to
    ordinary one-off ``grade`` calls.
    """

    def __init__(self, assignment: Assignment):
        self.assignment = assignment

    def grade(self, source: str) -> GradingReport:
        """Grade one submission given as Java source text."""
        try:
            with phase("parse"):
                unit = parse_submission(source)
        except JavaSyntaxError as error:
            return GradingReport(
                assignment_name=self.assignment.name,
                parse_error=str(error),
            )
        return self.grade_unit(unit)

    def grade_unit(self, unit: ast.CompilationUnit) -> GradingReport:
        """Grade an already-parsed submission."""
        with phase("epdg_build"):
            graphs = extract_all_epdgs(
                unit, self.assignment.synthesize_else_conditions
            )
        return self.grade_graphs(graphs)

    def grade_graphs(self, graphs) -> GradingReport:
        """Grade pre-built EPDGs (used by benchmarks to time phases)."""
        outcome = match_graphs(
            graphs,
            self.assignment.expected_methods,
            enforce_headers=self.assignment.enforce_headers,
        )
        return GradingReport(
            assignment_name=self.assignment.name, outcome=outcome
        )

    def extract(self, source: str):
        """Parse a submission and build its EPDGs (benchmark helper)."""
        return extract_all_epdgs(parse_submission(source))
