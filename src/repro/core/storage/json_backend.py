"""Sharded-JSON store backend: one atomic file per entry.

The original PR-4 representation, unchanged on disk so existing cache
directories keep working: report entries live at
``<root>/<assignment>/<kb[:12]>/<key[:2]>/<key>.json``, cluster records
under a ``cluster/`` namespace of the same directory, repair-corpus
records under ``repair/``, and campaign journal records under
``campaign/``.  Writers stage a unique temp file
and ``os.replace`` it into place (atomic on POSIX); concurrent writers
of the same key race benignly because grading is deterministic.

New in this revision: **unchanged entries are not rewritten**.  Grading
is deterministic, so a warm re-run used to churn every shard file with
byte-identical content — same payload, new inode, new mtime, pointless
fsync traffic across a million-entry cache.  ``write`` now compares the
serialized entry against the existing file and skips the stage+replace
when they already match (still reporting success; the entry *is*
stored).  A read failure during the comparison simply falls through to
the normal write path.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from contextlib import nullcontext
from pathlib import Path

_tmp_counter = itertools.count()


class JsonBackend:
    """Directory-of-JSON-files representation of one store scope.

    ``scope`` is ``(assignment_component, kb_fingerprint)``; this
    backend owns everything under
    ``<root>/<assignment_component>/<kb_fingerprint[:12]>/``.
    """

    name = "json"

    def __init__(self, root: Path, scope: tuple[str, str]):
        self.root = Path(root)
        component, fingerprint = scope
        self._dir = self.root / component / fingerprint[:12]
        self._mkdir_lock = threading.Lock()

    # ------------------------------------------------------------------
    # paths

    def path_for(self, key: str) -> Path:
        """Entry path for a content key (sharded to keep directories small)."""
        shard = key[:2] if len(key) >= 2 else "xx"
        return self._dir / shard / f"{key}.json"

    def cluster_path_for(self, fingerprint: str) -> Path:
        """Entry path for a cluster record, keyed by bucket fingerprint.

        Cluster records live beside the source-keyed entries, under a
        ``cluster/`` namespace of the same assignment+KB directory, so
        editing the knowledge base invalidates them together with the
        reports they were recorded from.
        """
        shard = fingerprint[:2] if len(fingerprint) >= 2 else "xx"
        return self._dir / "cluster" / shard / f"{fingerprint}.json"

    def repair_path_for(self, key: str) -> Path:
        """Entry path for a repair-corpus record.

        Corpus records (verified correct solutions plus their index)
        live under a ``repair/`` namespace of the same assignment+KB
        directory, mirroring ``cluster/``: a knowledge-base edit
        invalidates the corpus together with everything else in the
        scope.
        """
        shard = key[:2] if len(key) >= 2 else "xx"
        return self._dir / "repair" / shard / f"{key}.json"

    def campaign_path_for(self, key: str) -> Path:
        """Journal path for a campaign record.

        Keys are ``<campaign_id>/<record>``; the id becomes a
        subdirectory, so one campaign's journal is one directory.
        """
        campaign_id, _, record = key.partition("/")
        return self._dir / "campaign" / campaign_id / f"{record or 'x'}.json"

    def _path(self, kind: str, key: str) -> Path:
        if kind == "entry":
            return self.path_for(key)
        if kind == "cluster":
            return self.cluster_path_for(key)
        if kind == "repair":
            return self.repair_path_for(key)
        if kind == "campaign":
            return self.campaign_path_for(key)
        raise ValueError(f"unknown record kind {kind!r}")

    # ------------------------------------------------------------------
    # backend contract

    def read(self, kind: str, key: str) -> dict | None:
        """Raw envelope for ``(kind, key)``, or ``None`` when unreadable."""
        try:
            with open(self._path(kind, key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            return entry if isinstance(entry, dict) else None
        except Exception:  # noqa: BLE001 - a bad entry is a miss, never an error
            return None

    def write(self, kind: str, key: str, entry: dict) -> bool:
        """Atomically stage-and-replace one JSON entry.

        Skips the rewrite when the serialized payload already matches
        the file on disk (warm re-runs would otherwise churn every
        shard file with byte-identical content).
        """
        path = self._path(kind, key)
        payload = json.dumps(entry, separators=(",", ":")).encode("utf-8")
        try:
            with open(path, "rb") as handle:
                if handle.read(len(payload) + 1) == payload:
                    return True
        except OSError:
            pass  # missing or unreadable: write normally
        tmp_name = (
            f"{path.name}.{os.getpid()}.{threading.get_ident()}"
            f".{next(_tmp_counter)}.tmp"
        )
        tmp_path = path.parent / tmp_name
        try:
            if not path.parent.is_dir():
                with self._mkdir_lock:
                    path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp_path, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
            return True
        except Exception:  # noqa: BLE001 - callers treat a failed write as best-effort
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False

    def count(self, kind: str) -> int:
        """Number of readable-looking records of ``kind`` in this scope."""
        if kind == "entry":
            if not self._dir.is_dir():
                return 0
            return sum(1 for _ in self._dir.glob("*/*.json"))
        base = self._dir / kind
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.json"))

    def batch(self):
        """Writes are individually atomic; there is nothing to batch."""
        return nullcontext()
