"""Persistent result storage: one store contract, pluggable backends.

PR-4 introduced :class:`ResultStore` as a directory of sharded JSON
entries; this package generalizes it into a **backend interface** so the
same store contract — content-addressed grading reports, KB-fingerprint
invalidation, cluster-bucket records, corruption-as-miss — can ride
different on-disk representations:

* :mod:`repro.core.storage.json_backend` — the PR-4 layout: one atomic
  JSON file per entry, sharded by key prefix.  Zero setup, ``rm -rf``
  safe, ideal for small/medium caches and debugging (entries are
  greppable files).
* :mod:`repro.core.storage.sqlite_backend` — a single SQLite database in
  WAL mode: concurrent readers never block the writer, writes can be
  batched into one transaction per shard, and a million entries cost one
  file and one file descriptor instead of a million inodes.  This is the
  backend the million-submission campaign runner
  (:mod:`repro.core.campaign`) is built for.

The facade is unchanged for callers: ``ResultStore(root, assignment)``
still works everywhere it did, now with an optional
``backend="auto" | "json" | "sqlite"`` selector.  ``"auto"`` picks
SQLite when ``root`` names a ``*.sqlite`` / ``*.db`` file or a
directory containing ``store.sqlite`` (what ``repro store migrate``
leaves behind), and JSON otherwise — so migrating a cache directory in
place transparently flips every consumer that points at it.

**Invariant across backends:** a report stored through one backend and
read through another renders byte-identically.  Both persist the same
``GradingReport.to_dict()`` payload inside the same validated envelope
(schema version, full KB fingerprint, content key); only the bytes
around the envelope differ.  ``benchmarks/bench_campaign.py`` gates
this end-to-end.

The envelope rules are owned here, not by the backends:

* **Content-addressed.**  Keys are :func:`repro.core.pipeline.source_key`
  hashes (SHA-256 of normalized source).
* **KB-versioned.**  Entries are scoped by :func:`kb_fingerprint`; a KB
  edit changes the fingerprint and atomically orphans every stale entry.
  The full fingerprint is stored inside each entry and verified on read.
* **Corruption-tolerant.**  A truncated, unreadable, or
  schema-mismatched entry is a cache miss, never an error — and never a
  wrong report.  This holds for torn JSON files, corrupted SQLite
  database images, and corrupted ``-wal`` sidecars alike.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from repro.analysis.checks import analysis_fingerprint
from repro.analysis.perf.model import PerfSpec, perf_analysis_fingerprint
from repro.core.assignment import Assignment
from repro.core.report import GradingReport
from repro.core.storage.json_backend import JsonBackend
from repro.core.storage.sqlite_backend import SQLITE_FILENAME, SqliteBackend

#: Entry format version.  Bump when the on-disk layout or the meaning of a
#: stored report changes; old entries then read as misses.
SCHEMA_VERSION = 1

#: Supported backend names (``"auto"`` resolves to one of these).
BACKENDS = ("json", "sqlite")

#: Characters allowed verbatim in the assignment path component.
_SAFE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)


def _safe_component(name: str) -> str:
    """Make an assignment name safe to use as a directory name."""
    cleaned = "".join(ch if ch in _SAFE_CHARS else "_" for ch in name)
    return cleaned or "_"


def kb_fingerprint(assignment: Assignment) -> str:
    """Hex digest of the assignment configuration grading depends on.

    Covers the expected methods (patterns, their occurrence counts,
    constraints, feedback texts — everything in their dataclass reprs),
    the matching flags, and the active static-analysis check set
    (:func:`repro.analysis.checks.analysis_fingerprint`) — stored reports
    carry diagnostics, so a report graded under a different check set
    must read as a miss.  Reference solutions, functional tests, and the
    synthesis space are deliberately excluded: they do not influence
    :meth:`FeedbackEngine.grade` output, so editing them must not
    invalidate cached reports.
    """
    canonical = repr(
        (
            SCHEMA_VERSION,
            assignment.name,
            assignment.enforce_headers,
            assignment.synthesize_else_conditions,
            assignment.expected_methods,
            analysis_fingerprint(),
        )
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def repair_fingerprint(base: str) -> str:
    """Derive the repair-channel scope fingerprint from the base one.

    Reports graded with the repair channel enabled carry verified fix
    suggestions, so they are *not* byte-identical to plain reports of
    the same source.  Scoping them under a derived fingerprint keeps the
    two artifact classes apart in one store: a repair-enabled run never
    replays a plain entry (which would silently drop its suggestions)
    and — the important direction — a plain run never replays a
    repair-enabled entry, so with repair disabled all grading output
    stays byte-identical to earlier revisions whatever else has used
    the cache directory.  The derivation preserves KB invalidation: a
    KB edit changes the base fingerprint and therefore this one.
    """
    return hashlib.sha256(f"{base}:repair".encode("utf-8")).hexdigest()


def perf_fingerprint(base: str, spec: "PerfSpec | None") -> str:
    """Derive the perf-channel scope fingerprint from ``base``.

    Reports graded with the performance analyzer enabled may carry perf
    findings, so — exactly like :func:`repair_fingerprint` — they live
    under a derived fingerprint: a perf-enabled run never replays a
    plain entry (silently dropping findings) and a plain run never
    replays a perf-enabled one.  The derivation also folds in the
    analyzer version/registry (:func:`perf_analysis_fingerprint`) and
    the assignment's :class:`~repro.analysis.perf.model.PerfSpec` repr,
    so changing a detector, a feedback template, an expected cost
    shape, or the probe ladder orphans stale entries the same way a KB
    edit does.  Channels chain: with both repair and perf enabled the
    derivation applies on top of the repair fingerprint.
    """
    canonical = f"{base}:perf:{perf_analysis_fingerprint()}:{spec!r}"
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def resolve_backend(root: str | os.PathLike[str], backend: str = "auto") -> str:
    """Resolve ``backend`` (possibly ``"auto"``) against ``root``.

    ``"auto"`` chooses SQLite when ``root`` is (or names) a database
    file, or when the directory already holds a ``store.sqlite`` — the
    state ``repro store migrate`` leaves behind — and JSON otherwise.
    """
    if backend in BACKENDS:
        return backend
    if backend != "auto":
        raise ValueError(
            f"unknown store backend {backend!r}; "
            f"expected one of {('auto', *BACKENDS)}"
        )
    path = Path(root)
    if path.suffix in (".sqlite", ".db") or path.is_file():
        return "sqlite"
    if (path / SQLITE_FILENAME).is_file():
        return "sqlite"
    return "json"


class ResultStore:
    """On-disk grading cache for one assignment under one KB version.

    All methods are safe to call concurrently from multiple threads and
    multiple processes.  ``get`` returns ``None`` for anything it cannot
    fully read and validate; ``put`` returns ``False`` instead of raising
    when the entry cannot be written.

    ``backend`` selects the on-disk representation (see the package
    docstring); the default ``"auto"`` keeps existing JSON caches
    working and picks up migrated SQLite ones transparently.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        assignment: Assignment,
        backend: str = "auto",
        repair: bool = False,
        perf: bool = False,
    ):
        self.assignment = assignment
        self.kb = kb_fingerprint(assignment)
        self.repair_enabled = repair
        self.perf_enabled = perf
        # With an opt-in channel on, everything in this store — reports
        # carrying suggestions or perf findings, the repair corpus
        # itself — lives under a derived fingerprint (see
        # :func:`repair_fingerprint` / :func:`perf_fingerprint`), so
        # plain consumers of the same directory keep reading exactly
        # what they always did.  The derivations chain (kb → repair →
        # perf), giving each enabled-channel combination its own scope.
        fingerprint = repair_fingerprint(self.kb) if repair else self.kb
        if perf:
            fingerprint = perf_fingerprint(fingerprint, assignment.perf)
        self.fingerprint = fingerprint
        self.root = Path(root)
        self.backend_name = resolve_backend(self.root, backend)
        scope = (_safe_component(assignment.name), self.fingerprint)
        if self.backend_name == "sqlite":
            self.backend = SqliteBackend(self.root, scope)
        else:
            self.backend = JsonBackend(self.root, scope)

    # ------------------------------------------------------------------
    # paths (JSON backend only; kept for tooling and tests)

    def path_for(self, key: str) -> Path:
        """Entry path for a content key (JSON backend only)."""
        return self.backend.path_for(key)

    def cluster_path_for(self, fingerprint: str) -> Path:
        """Entry path for a cluster record (JSON backend only)."""
        return self.backend.cluster_path_for(fingerprint)

    # ------------------------------------------------------------------
    # read side

    def get(self, key: str) -> GradingReport | None:
        """Return the stored report for ``key``, or ``None`` on any miss.

        Missing entry, partial write, corrupt bytes, wrong schema, wrong
        fingerprint, or undecodable report all count as misses.
        """
        try:
            entry = self.backend.read("entry", key)
            if entry is None:
                return None
            if entry.get("schema") != SCHEMA_VERSION:
                return None
            if entry.get("kb") != self.fingerprint:
                return None
            if entry.get("key") != key:
                return None
            return GradingReport.from_dict(entry["report"])
        except Exception:  # noqa: BLE001 - a bad entry is a miss, never an error
            return None

    def cluster_key(self, key: str) -> str | None:
        """The bucket fingerprint recorded on entry ``key``, if any.

        Forward-compat by defaulting, exactly like the report decoder's
        handling of pre-diagnostics payloads: entries written before
        clustering existed simply lack the ``cluster`` key and read as
        ``None`` — they stay valid reports and never invalidate on
        upgrade.
        """
        try:
            entry = self.backend.read("entry", key)
            if entry is None:
                return None
            if entry.get("schema") != SCHEMA_VERSION:
                return None
            if entry.get("kb") != self.fingerprint:
                return None
            value = entry.get("cluster")
            return value if isinstance(value, str) else None
        except Exception:  # noqa: BLE001 - a bad entry is a miss, never an error
            return None

    def get_cluster(self, fingerprint: str) -> dict | None:
        """Return the cluster record for a bucket fingerprint, or ``None``.

        Like :meth:`get`, anything unreadable or mismatched is a miss.
        The record's internal layout is owned by
        :mod:`repro.cluster.specialize`; the store only validates its own
        envelope.
        """
        return self._get_record("cluster", fingerprint)

    def get_repair(self, key: str) -> dict | None:
        """Return a repair-corpus record, or ``None`` on any miss.

        Corpus records (verified correct solutions and their index) share
        the entry envelope, so a KB edit invalidates the corpus together
        with the reports graded against it, and corruption degrades to
        "no suggestion" — never to a wrong suggestion.  Record layout is
        owned by :mod:`repro.repair.corpus`.
        """
        return self._get_record("repair", key)

    def get_campaign(self, key: str) -> dict | None:
        """Return a campaign-journal record, or ``None`` on any miss.

        The journal shares the entry envelope (and therefore the KB
        fingerprint scope): editing the knowledge base invalidates the
        journal together with the reports it checkpoints, so a resumed
        campaign re-grades under the new KB instead of trusting stale
        shard records.  Record layout is owned by
        :mod:`repro.core.campaign`.
        """
        return self._get_record("campaign", key)

    def _get_record(self, kind: str, key: str) -> dict | None:
        try:
            entry = self.backend.read(kind, key)
            if entry is None:
                return None
            if entry.get("schema") != SCHEMA_VERSION:
                return None
            if entry.get("kb") != self.fingerprint:
                return None
            if entry.get("key") != key:
                return None
            record = entry.get("record")
            return record if isinstance(record, dict) else None
        except Exception:  # noqa: BLE001 - a bad entry is a miss, never an error
            return None

    # ------------------------------------------------------------------
    # write side

    def put(
        self, key: str, report: GradingReport, cluster: str | None = None
    ) -> bool:
        """Persist ``report`` under ``key``; returns ``False`` on failure.

        ``cluster`` optionally records the submission's bucket
        fingerprint alongside the report (see :meth:`cluster_key`).
        """
        entry = {
            "schema": SCHEMA_VERSION,
            "kb": self.fingerprint,
            "key": key,
            "report": report.to_dict(),
        }
        if cluster is not None:
            entry["cluster"] = cluster
        return self._write("entry", key, entry)

    def put_cluster(self, fingerprint: str, record: dict) -> bool:
        """Persist a cluster record under its bucket fingerprint."""
        return self._put_record("cluster", fingerprint, record)

    def put_repair(self, key: str, record: dict) -> bool:
        """Persist a repair-corpus record under its key."""
        return self._put_record("repair", key, record)

    def put_campaign(self, key: str, record: dict) -> bool:
        """Persist a campaign-journal record under its key."""
        return self._put_record("campaign", key, record)

    def _put_record(self, kind: str, key: str, record: dict) -> bool:
        entry = {
            "schema": SCHEMA_VERSION,
            "kb": self.fingerprint,
            "key": key,
            "record": record,
        }
        return self._write(kind, key, entry)

    def _write(self, kind: str, key: str, entry: dict) -> bool:
        try:
            return self.backend.write(kind, key, entry)
        except Exception:  # noqa: BLE001 - callers treat a failed write as best-effort
            return False

    def batch(self):
        """Context manager grouping writes into one backend transaction.

        A no-op for the JSON backend (every entry is its own atomic
        file); for SQLite it wraps the block in a single ``BEGIN
        IMMEDIATE … COMMIT``, which is what makes high-volume campaign
        shards cheap — one fsync per shard instead of one per report.
        Crash-safety is unchanged either way: a transaction that never
        commits rolls back to misses, never to torn entries.
        """
        return self.backend.batch()

    # ------------------------------------------------------------------
    # maintenance helpers

    def entry_count(self) -> int:
        """Number of readable-looking entries for this assignment+KB."""
        return self.backend.count("entry")

    def repair_count(self) -> int:
        """Number of readable-looking repair-corpus records in scope."""
        return self.backend.count("repair")


__all__ = [
    "BACKENDS",
    "JsonBackend",
    "ResultStore",
    "SCHEMA_VERSION",
    "SqliteBackend",
    "kb_fingerprint",
    "perf_fingerprint",
    "repair_fingerprint",
    "resolve_backend",
]
