"""SQLite store backend: one WAL-mode database file for the whole cache.

A million-entry JSON cache is a million inodes; a million-entry SQLite
cache is one file.  This backend keeps the exact store contract of the
JSON layout — same envelope, same KB-fingerprint scoping, same
corruption-as-miss semantics — on a single database shared by every
assignment and KB version pointed at the same root:

* **WAL mode** — readers never block the writer and the writer never
  blocks readers, so N serve shards and a campaign runner can share one
  database without a coordinator.  ``synchronous=NORMAL`` keeps
  durability at the WAL-checkpoint level, which is the right trade for
  a cache that can always be regraded.
* **Batched transactional writes** — ``batch()`` wraps a block's writes
  in one ``BEGIN IMMEDIATE … COMMIT``.  The campaign runner commits one
  transaction per shard: one fsync per thousand reports instead of one
  per report.  A crash mid-transaction rolls back to misses.
* **Connection-per-process/thread** — SQLite connections cannot cross
  ``fork`` or threads; the backend lazily opens one connection per
  ``(pid, thread)`` and discards inherited ones, so the batch
  pipeline's process workers and the serve shards each get their own.
* **Corruption degrades to misses** — a corrupted database image or
  ``-wal`` sidecar makes reads raise inside SQLite; every exception is
  swallowed into a miss (and every failed write into ``False``), never
  a wrong report.

Layout: one ``records`` table keyed ``(assignment, kb, kind, key)``
where ``kind`` is ``entry`` / ``cluster`` / ``campaign`` and the value
is the same JSON envelope the JSON backend stores per file — which is
what makes ``repro store migrate`` a plain copy and keeps reports
byte-identical across backends.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path

#: Database filename used when the store root is a directory.  Its
#: presence is also what flips ``backend="auto"`` detection to SQLite
#: after a ``repro store migrate``.
SQLITE_FILENAME = "store.sqlite"

#: Milliseconds a writer waits on a locked database before giving up
#: (reads under WAL never need it; write contention between processes
#: does).
BUSY_TIMEOUT_MS = 5000

_CREATE = """
CREATE TABLE IF NOT EXISTS records (
    assignment TEXT NOT NULL,
    kb TEXT NOT NULL,
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    entry TEXT NOT NULL,
    PRIMARY KEY (assignment, kb, kind, key)
) WITHOUT ROWID
"""


def database_path(root: Path) -> Path:
    """The database file for a store root (file path or directory)."""
    root = Path(root)
    if root.suffix in (".sqlite", ".db"):
        return root
    return root / SQLITE_FILENAME


class SqliteBackend:
    """Single-database representation of one store scope.

    ``scope`` is ``(assignment_component, kb_fingerprint)``; rows are
    filtered by both, so many scopes share the database file safely and
    a KB edit orphans stale rows exactly like the JSON layout's
    fingerprint directories.
    """

    name = "sqlite"

    def __init__(self, root: Path, scope: tuple[str, str]):
        self.root = Path(root)
        self.db_path = database_path(self.root)
        self._assignment, self._kb = scope
        self._local = threading.local()

    # ------------------------------------------------------------------
    # connections

    def _connection(self) -> sqlite3.Connection:
        """One connection per (process, thread), created on demand.

        A connection inherited across ``fork`` is unusable (SQLite
        documents this as undefined behavior), so the owning pid is
        checked and stale connections are abandoned to the OS — closing
        them could corrupt the parent's view.
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            return conn
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            self.db_path, timeout=BUSY_TIMEOUT_MS / 1000.0
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        conn.execute(_CREATE)
        conn.commit()
        self._local.conn = conn
        self._local.pid = os.getpid()
        return conn

    # ------------------------------------------------------------------
    # backend contract

    def read(self, kind: str, key: str) -> dict | None:
        """Raw envelope for ``(kind, key)``, or ``None`` when unreadable."""
        try:
            row = self._connection().execute(
                "SELECT entry FROM records"
                " WHERE assignment = ? AND kb = ? AND kind = ? AND key = ?",
                (self._assignment, self._kb, kind, key),
            ).fetchone()
            if row is None:
                return None
            entry = json.loads(row[0])
            return entry if isinstance(entry, dict) else None
        except Exception:  # noqa: BLE001 - a bad entry is a miss, never an error
            self._discard_connection()
            return None

    def write(self, kind: str, key: str, entry: dict) -> bool:
        """Upsert one envelope; its own transaction unless inside ``batch``."""
        try:
            conn = self._connection()
            conn.execute(
                "INSERT OR REPLACE INTO records"
                " (assignment, kb, kind, key, entry) VALUES (?, ?, ?, ?, ?)",
                (
                    self._assignment,
                    self._kb,
                    kind,
                    key,
                    json.dumps(entry, separators=(",", ":")),
                ),
            )
            if not getattr(self._local, "in_batch", False):
                conn.commit()
            return True
        except Exception:  # noqa: BLE001 - callers treat a failed write as best-effort
            self._discard_connection()
            return False

    def count(self, kind: str) -> int:
        """Number of records of ``kind`` in this scope (0 when unreadable)."""
        try:
            row = self._connection().execute(
                "SELECT COUNT(*) FROM records"
                " WHERE assignment = ? AND kb = ? AND kind = ?",
                (self._assignment, self._kb, kind),
            ).fetchone()
            return int(row[0])
        except Exception:  # noqa: BLE001 - unreadable database counts as empty
            self._discard_connection()
            return 0

    @contextmanager
    def batch(self):
        """Group this thread's writes into one transaction.

        Exceptions inside the block roll the whole transaction back —
        either every write in the batch lands or none does, which is
        exactly the checkpoint semantics the campaign journal needs.
        Commit failures are swallowed like any other write failure (the
        batch degrades to unpersisted work, never to a torn store).
        """
        try:
            conn = self._connection()
            conn.execute("BEGIN IMMEDIATE")
        except Exception:  # noqa: BLE001 - degraded store: run the block unbatched
            self._discard_connection()
            yield
            return
        self._local.in_batch = True
        try:
            yield
        except BaseException:
            self._local.in_batch = False
            try:
                conn.rollback()
            except Exception:  # noqa: BLE001
                self._discard_connection()
            raise
        else:
            self._local.in_batch = False
            try:
                conn.commit()
            except Exception:  # noqa: BLE001 - failed batch = nothing persisted
                self._discard_connection()

    # ------------------------------------------------------------------
    # internals

    def _discard_connection(self) -> None:
        """Drop this thread's connection after an error.

        The next operation reopens from scratch, which is what recovers
        from transient lock storms — and keeps failing soft (as misses)
        on a genuinely corrupt database.
        """
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        self._local.in_batch = False
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            try:
                conn.close()
            except Exception:  # noqa: BLE001
                pass
