"""In-place migration of a sharded-JSON cache to the SQLite backend.

``repro store migrate <dir>`` walks every assignment/KB scope under a
JSON store root, copies each readable envelope verbatim into
``<dir>/store.sqlite``, and leaves the JSON files where they are (or
deletes them with ``remove_json=True``).  Because ``backend="auto"``
prefers a ``store.sqlite`` sitting in the root, every consumer pointed
at the directory — ``grade-batch --cache-dir``, ``serve --cache-dir``,
the campaign runner — flips to SQLite on its next open with no
configuration change and no cold cache: the envelopes are identical, so
every previously stored report still hits, byte-for-byte.

Unreadable or non-envelope files are skipped and counted, mirroring the
store's corruption-as-miss contract: a corrupt JSON entry was already a
miss, so it simply does not travel.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.storage.sqlite_backend import SqliteBackend, database_path


@dataclass
class MigrationStats:
    """What one migration run moved, per record kind."""

    migrated: dict[str, int] = field(
        default_factory=lambda: {
            "entry": 0,
            "cluster": 0,
            "repair": 0,
            "campaign": 0,
        }
    )
    skipped: int = 0
    scopes: int = 0

    @property
    def total(self) -> int:
        return sum(self.migrated.values())

    def summary(self) -> str:
        parts = ", ".join(
            f"{count} {kind}" for kind, count in self.migrated.items()
        )
        return (
            f"migrated {self.total} records ({parts}) across "
            f"{self.scopes} assignment/KB scopes; {self.skipped} "
            f"unreadable files skipped"
        )


def _iter_json_records(scope_dir: Path):
    """Yield ``(kind, key, envelope, path)`` for one assignment/KB dir."""
    for path in sorted(scope_dir.glob("*/*.json")):
        yield "entry", path.stem, path
    for path in sorted(scope_dir.glob("cluster/*/*.json")):
        yield "cluster", path.stem, path
    for path in sorted(scope_dir.glob("repair/*/*.json")):
        yield "repair", path.stem, path
    for path in sorted(scope_dir.glob("campaign/*/*.json")):
        yield "campaign", f"{path.parent.name}/{path.stem}", path


def migrate_to_sqlite(
    root: str | Path, remove_json: bool = False
) -> MigrationStats:
    """Copy every JSON envelope under ``root`` into ``root/store.sqlite``.

    Idempotent: rerunning upserts the same rows.  Returns per-kind
    counts; raises only when the database itself cannot be created
    (e.g. an unwritable root) — individual bad files are skipped.
    """
    root = Path(root)
    stats = MigrationStats()
    db_path = database_path(root)
    db_path.parent.mkdir(parents=True, exist_ok=True)
    for assignment_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        for scope_dir in sorted(
            p for p in assignment_dir.iterdir() if p.is_dir()
        ):
            stats.scopes += 1
            backend: SqliteBackend | None = None
            migrated_files: list[Path] = []
            for kind, key, path in _iter_json_records(scope_dir):
                try:
                    envelope = json.loads(path.read_text(encoding="utf-8"))
                except Exception:  # noqa: BLE001 - corrupt entry was a miss anyway
                    stats.skipped += 1
                    continue
                if not isinstance(envelope, dict) or not isinstance(
                    envelope.get("kb"), str
                ):
                    stats.skipped += 1
                    continue
                if backend is None or backend._kb != envelope["kb"]:
                    # scope rows by the full fingerprint stored inside the
                    # envelope (the directory name only keeps a prefix)
                    backend = SqliteBackend(
                        root, (assignment_dir.name, envelope["kb"])
                    )
                if backend.write(kind, key, envelope):
                    stats.migrated[kind] += 1
                    migrated_files.append(path)
                else:
                    stats.skipped += 1
            if remove_json:
                for path in migrated_files:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                _prune_empty_dirs(scope_dir)
    if remove_json:
        for assignment_dir in list(root.iterdir()):
            if assignment_dir.is_dir():
                _prune_empty_dirs(assignment_dir)
    if not db_path.is_file():
        # nothing migrated at all: still create the database so auto
        # detection flips and future writes land in SQLite
        SqliteBackend(root, ("_", "_"))._connection()
    return stats


def _prune_empty_dirs(base: Path) -> None:
    """Remove now-empty directories bottom-up (best effort)."""
    for path in sorted(
        (p for p in base.rglob("*") if p.is_dir()), reverse=True
    ):
        try:
            path.rmdir()
        except OSError:
            pass
    try:
        base.rmdir()
    except OSError:
        pass


def remove_tree(root: str | Path) -> None:  # pragma: no cover - trivial
    """Helper for tooling/tests: delete a store directory entirely."""
    shutil.rmtree(root, ignore_errors=True)
