"""Grading reports returned by the feedback engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic
from repro.matching.feedback import FeedbackComment, FeedbackStatus
from repro.matching.submission import MatchOutcome
from repro.repair.model import RepairSuggestion


@dataclass
class GradingReport:
    """The personalized feedback for one submission.

    Exactly one of four shapes, distinguished by :attr:`status`:

    ``"ok"`` / ``"rejected"``
        ``outcome`` holds the full Algorithm 2 result; ``ok`` when every
        comment is Correct, ``rejected`` when at least one is not.
    ``"parse-error"``
        ``parse_error`` is set: the submission did not compile, so no
        matching was attempted.
    ``"timeout"``
        ``timeout`` is set: grading exceeded its wall-clock budget (the
        batch pipeline's ``max_seconds`` guard or the serving layer's
        per-request deadline) and was abandoned.
    ``"error"``
        ``error`` is set: grading itself failed unexpectedly (the batch
        pipeline isolates such failures instead of aborting the batch).
    """

    assignment_name: str
    outcome: MatchOutcome | None = None
    parse_error: str | None = None
    error: str | None = None
    timeout: str | None = None
    #: Static-analysis findings over the submission (``repro.analysis``).
    #: Populated whenever the frontend produced an AST — including for
    #: submissions whose pattern matching found nothing, where the
    #: diagnostics become the *primary* feedback (see :meth:`render`).
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Verified minimal-fix suggestions (``repro.repair``).  Empty unless
    #: the opt-in repair channel graded this submission; ordered after
    #: pattern feedback and diagnostics in :meth:`render`, and promoted
    #: to the headline when neither has anything personal to say (see
    #: :attr:`repair_is_primary`).
    repair: list[RepairSuggestion] = field(default_factory=list)
    #: Performance findings (``repro.analysis.perf``).  Empty unless the
    #: opt-in ``--perf`` phase graded this submission; static-only
    #: findings arrive as advisories, findings corroborated by a
    #: measured cost shape arrive escalated (see docs/ANALYSIS.md).
    perf: list[Diagnostic] = field(default_factory=list)

    @property
    def status(self) -> str:
        """``"ok"`` | ``"rejected"`` | ``"parse-error"`` | ``"timeout"``
        | ``"error"``."""
        if self.parse_error is not None:
            return "parse-error"
        if self.timeout is not None:
            return "timeout"
        if self.error is not None or self.outcome is None:
            return "error"
        return "ok" if self.outcome.is_fully_correct else "rejected"

    @property
    def ok(self) -> bool:
        """True when the submission parsed and was graded."""
        return self.outcome is not None

    @property
    def comments(self) -> list[FeedbackComment]:
        return [] if self.outcome is None else self.outcome.comments

    @property
    def score(self) -> float:
        """The Λ value of the delivered feedback (Equation 3)."""
        return 0.0 if self.outcome is None else self.outcome.score

    @property
    def max_score(self) -> float:
        """Λ if every comment were Correct."""
        return float(len(self.comments))

    @property
    def is_positive(self) -> bool:
        """True when every comment is Correct (our positive verdict).

        This is the signal compared against functional testing when
        counting Table I's column ``D`` discrepancies.
        """
        return self.outcome is not None and self.outcome.is_fully_correct

    @property
    def truncated(self) -> bool:
        """True when a matcher safety cap cut grading short.

        Either Algorithm 1 hit its per-pattern embedding cap or the
        method-assignment sweep hit its permutation cap; the feedback
        is still delivered, but it may rest on incomplete search
        results, and :meth:`render` says so.
        """
        return self.outcome is not None and self.outcome.truncated

    def by_status(self, status: FeedbackStatus) -> list[FeedbackComment]:
        return [c for c in self.comments if c.status is status]

    def to_dict(self) -> dict:
        """Flat JSON-friendly view (``grade-batch --json``, the grading
        service's response bodies).  :meth:`from_dict` inverts it.

        The ``repair`` and ``perf`` keys appear only when findings
        exist: with those channels disabled the payload is
        byte-identical to what earlier revisions produced, so stored
        entries, service response bodies, and campaign output files are
        unchanged unless a channel is explicitly enabled.
        """
        payload = {
            "assignment": self.assignment_name,
            "status": self.status,
            "score": self.score,
            "max_score": self.max_score,
            "parse_error": self.parse_error,
            "error": self.error,
            "timeout": self.timeout,
            "truncated": self.truncated,
            "method_assignment": (
                {} if self.outcome is None
                else dict(self.outcome.method_assignment)
            ),
            "comments": [
                {
                    "source": c.source,
                    "kind": c.kind,
                    "status": str(c.status),
                    "message": c.message,
                    "details": list(c.details),
                }
                for c in self.comments
            ],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if self.repair:
            payload["repair"] = [s.to_dict() for s in self.repair]
        if self.perf:
            payload["perf"] = [d.to_dict() for d in self.perf]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "GradingReport":
        """Rebuild a report from :meth:`to_dict` output.

        The inverse is *feedback-preserving*, not structure-preserving:
        comments, statuses, scores, the method assignment, and the
        truncation flag round-trip exactly (so :meth:`render` of the
        rebuilt report matches the original), but the node-level
        embeddings — internal matcher state that ``to_dict`` never
        exports — come back empty.  This is what service clients need
        to re-render feedback from a JSON response.

        Payloads written before diagnostics existed simply lack the key
        and rebuild with ``diagnostics=[]`` — never a ``KeyError``; the
        same treatment applies to ``repair`` and ``perf``, so every
        ResultStore entry written before those channels existed keeps
        loading as "no suggestions" / "no performance findings".
        """
        diagnostics = [
            Diagnostic.from_dict(d) for d in payload.get("diagnostics", ())
        ]
        repair = [
            RepairSuggestion.from_dict(s) for s in payload.get("repair", ())
        ]
        perf = [
            Diagnostic.from_dict(d) for d in payload.get("perf", ())
        ]
        if payload.get("parse_error") is not None:
            return cls(
                assignment_name=payload["assignment"],
                parse_error=payload["parse_error"],
                diagnostics=diagnostics,
                repair=repair,
                perf=perf,
            )
        if payload.get("timeout") is not None:
            return cls(
                assignment_name=payload["assignment"],
                timeout=payload["timeout"],
                diagnostics=diagnostics,
                repair=repair,
                perf=perf,
            )
        if payload.get("status") == "error":
            return cls(
                assignment_name=payload["assignment"],
                error=payload.get("error"),
                diagnostics=diagnostics,
                repair=repair,
                perf=perf,
            )
        comments = [
            FeedbackComment(
                source=c["source"],
                kind=c["kind"],
                status=FeedbackStatus(c["status"]),
                message=c["message"],
                details=tuple(c.get("details", ())),
            )
            for c in payload.get("comments", ())
        ]
        outcome = MatchOutcome(
            comments=comments,
            method_assignment=dict(payload.get("method_assignment", {})),
            score=payload["score"],
            truncated=bool(payload.get("truncated", False)),
        )
        return cls(
            assignment_name=payload["assignment"],
            outcome=outcome,
            diagnostics=diagnostics,
            repair=repair,
            perf=perf,
        )

    @property
    def diagnostics_are_primary(self) -> bool:
        """True when the diagnostics carry the feedback.

        The matcher produced no usable embedding — every comment says an
        expected method was simply Not Expected/found — so the paper's
        pattern feedback has nothing personal to say, and the
        static-analysis findings are promoted to the headline of
        :meth:`render`.  Computable from serialized payloads too (it
        only reads comment statuses, which round-trip exactly).
        """
        return (
            bool(self.diagnostics)
            and self.outcome is not None
            and all(
                c.status is FeedbackStatus.NOT_EXPECTED for c in self.comments
            )
        )

    @property
    def repair_is_primary(self) -> bool:
        """True when the repair suggestions carry the feedback.

        No pattern embedded (every comment is Not Expected) *and* static
        analysis found nothing — the two channels ahead of repair in the
        render order are silent, so a verified fix suggestion is the
        only personal feedback available and is promoted to the headline
        of :meth:`render`.  Like :attr:`diagnostics_are_primary`, this is
        computable from serialized payloads (statuses round-trip).
        """
        return (
            bool(self.repair)
            and not self.diagnostics
            and self.outcome is not None
            and all(
                c.status is FeedbackStatus.NOT_EXPECTED for c in self.comments
            )
        )

    def render(self) -> str:
        """Human-readable feedback text for the student."""
        lines = [f"Feedback for {self.assignment_name} [{self.status}]:"]
        if self.parse_error is not None:
            lines.append(f"  Your submission does not compile: {self.parse_error}")
            return "\n".join(lines)
        if self.timeout is not None:
            lines.append(
                "  Your submission could not be graded within the time "
                f"limit: {self.timeout}"
            )
            lines.append(
                "  Please simplify your solution or resubmit later."
            )
            return "\n".join(lines)
        if self.error is not None or self.outcome is None:
            lines.append(
                "  Your submission could not be graded due to an internal "
                f"error: {self.error or 'unknown failure'}"
            )
            lines.append("  Please report this to the course staff.")
            return "\n".join(lines)
        if self.diagnostics_are_primary:
            lines.append(
                "  No expected solution structure was recognized; here is "
                "what static analysis found in your code:"
            )
            for diagnostic in self.diagnostics:
                lines.append("    " + diagnostic.render())
        if self.repair_is_primary:
            lines.append(
                "  No expected solution structure was recognized; here is "
                "a verified fix suggestion instead:"
            )
            for suggestion in self.repair:
                lines.extend(
                    "    " + line
                    for line in suggestion.render().splitlines()
                )
        for comment in self.outcome.comments:
            lines.extend("  " + line for line in comment.render().splitlines())
        if self.diagnostics and not self.diagnostics_are_primary:
            lines.append("  Additional observations about your code:")
            for diagnostic in self.diagnostics:
                lines.append("    " + diagnostic.render())
        if self.perf:
            lines.append("  Performance observations about your code:")
            for finding in self.perf:
                lines.append("    " + finding.render())
        if self.repair and not self.repair_is_primary:
            for suggestion in self.repair:
                lines.extend(
                    "  " + line for line in suggestion.render().splitlines()
                )
        if self.truncated:
            lines.append(
                "  Note: grading was truncated by a search safety cap; "
                "some feedback may be based on incomplete matching."
            )
        lines.append(f"  Score: {self.score:g} / {self.max_score:g}")
        return "\n".join(lines)
