"""Grading reports returned by the feedback engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.matching.feedback import FeedbackComment, FeedbackStatus
from repro.matching.submission import MatchOutcome


@dataclass
class GradingReport:
    """The personalized feedback for one submission.

    ``parse_error`` is set (and ``outcome`` is ``None``) when the
    submission did not parse; otherwise ``outcome`` holds the full
    Algorithm 2 result.
    """

    assignment_name: str
    outcome: MatchOutcome | None = None
    parse_error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the submission parsed and was graded."""
        return self.outcome is not None

    @property
    def comments(self) -> list[FeedbackComment]:
        return [] if self.outcome is None else self.outcome.comments

    @property
    def score(self) -> float:
        """The Λ value of the delivered feedback (Equation 3)."""
        return 0.0 if self.outcome is None else self.outcome.score

    @property
    def max_score(self) -> float:
        """Λ if every comment were Correct."""
        return float(len(self.comments))

    @property
    def is_positive(self) -> bool:
        """True when every comment is Correct (our positive verdict).

        This is the signal compared against functional testing when
        counting Table I's column ``D`` discrepancies.
        """
        return self.outcome is not None and self.outcome.is_fully_correct

    def by_status(self, status: FeedbackStatus) -> list[FeedbackComment]:
        return [c for c in self.comments if c.status is status]

    def render(self) -> str:
        """Human-readable feedback text for the student."""
        lines = [f"Feedback for {self.assignment_name}:"]
        if self.parse_error is not None:
            lines.append(f"  Your submission does not compile: {self.parse_error}")
            return "\n".join(lines)
        assert self.outcome is not None
        for comment in self.outcome.comments:
            lines.extend("  " + line for line in comment.render().splitlines())
        lines.append(f"  Score: {self.score:g} / {self.max_score:g}")
        return "\n".join(lines)
