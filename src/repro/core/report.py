"""Grading reports returned by the feedback engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.feedback import FeedbackComment, FeedbackStatus
from repro.matching.submission import MatchOutcome


@dataclass
class GradingReport:
    """The personalized feedback for one submission.

    Exactly one of three shapes, distinguished by :attr:`status`:

    ``"ok"`` / ``"rejected"``
        ``outcome`` holds the full Algorithm 2 result; ``ok`` when every
        comment is Correct, ``rejected`` when at least one is not.
    ``"parse-error"``
        ``parse_error`` is set: the submission did not compile, so no
        matching was attempted.
    ``"error"``
        ``error`` is set: grading itself failed unexpectedly (the batch
        pipeline isolates such failures instead of aborting the batch).
    """

    assignment_name: str
    outcome: MatchOutcome | None = None
    parse_error: str | None = None
    error: str | None = None

    @property
    def status(self) -> str:
        """``"ok"`` | ``"rejected"`` | ``"parse-error"`` | ``"error"``."""
        if self.parse_error is not None:
            return "parse-error"
        if self.error is not None or self.outcome is None:
            return "error"
        return "ok" if self.outcome.is_fully_correct else "rejected"

    @property
    def ok(self) -> bool:
        """True when the submission parsed and was graded."""
        return self.outcome is not None

    @property
    def comments(self) -> list[FeedbackComment]:
        return [] if self.outcome is None else self.outcome.comments

    @property
    def score(self) -> float:
        """The Λ value of the delivered feedback (Equation 3)."""
        return 0.0 if self.outcome is None else self.outcome.score

    @property
    def max_score(self) -> float:
        """Λ if every comment were Correct."""
        return float(len(self.comments))

    @property
    def is_positive(self) -> bool:
        """True when every comment is Correct (our positive verdict).

        This is the signal compared against functional testing when
        counting Table I's column ``D`` discrepancies.
        """
        return self.outcome is not None and self.outcome.is_fully_correct

    @property
    def truncated(self) -> bool:
        """True when a matcher safety cap cut grading short.

        Either Algorithm 1 hit its per-pattern embedding cap or the
        method-assignment sweep hit its permutation cap; the feedback
        is still delivered, but it may rest on incomplete search
        results, and :meth:`render` says so.
        """
        return self.outcome is not None and self.outcome.truncated

    def by_status(self, status: FeedbackStatus) -> list[FeedbackComment]:
        return [c for c in self.comments if c.status is status]

    def to_dict(self) -> dict:
        """Flat JSON-friendly view (used by ``grade-batch --json``)."""
        return {
            "assignment": self.assignment_name,
            "status": self.status,
            "score": self.score,
            "max_score": self.max_score,
            "parse_error": self.parse_error,
            "error": self.error,
            "truncated": self.truncated,
            "comments": [
                {
                    "source": c.source,
                    "kind": c.kind,
                    "status": str(c.status),
                    "message": c.message,
                    "details": list(c.details),
                }
                for c in self.comments
            ],
        }

    def render(self) -> str:
        """Human-readable feedback text for the student."""
        lines = [f"Feedback for {self.assignment_name} [{self.status}]:"]
        if self.parse_error is not None:
            lines.append(f"  Your submission does not compile: {self.parse_error}")
            return "\n".join(lines)
        if self.error is not None or self.outcome is None:
            lines.append(
                "  Your submission could not be graded due to an internal "
                f"error: {self.error or 'unknown failure'}"
            )
            lines.append("  Please report this to the course staff.")
            return "\n".join(lines)
        for comment in self.outcome.comments:
            lines.extend("  " + line for line in comment.render().splitlines())
        if self.truncated:
            lines.append(
                "  Note: grading was truncated by a search safety cap; "
                "some feedback may be based on incomplete matching."
            )
        lines.append(f"  Score: {self.score:g} / {self.max_score:g}")
        return "\n".join(lines)
