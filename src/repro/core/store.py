"""Compatibility shim: the store grew into :mod:`repro.core.storage`.

PR-4's single-module ``repro.core.store`` became a package with
pluggable backends (sharded JSON and SQLite/WAL) plus an in-place
migration path; see :mod:`repro.core.storage` for the contract and
:mod:`repro.core.storage.migrate` for ``repro store migrate``.  Every
public name keeps importing from here so existing callers and cache
directories are untouched.
"""

from __future__ import annotations

from repro.core.storage import (
    BACKENDS,
    ResultStore,
    SCHEMA_VERSION,
    _safe_component,
    kb_fingerprint,
    perf_fingerprint,
    repair_fingerprint,
    resolve_backend,
)

__all__ = [
    "BACKENDS",
    "ResultStore",
    "SCHEMA_VERSION",
    "_safe_component",
    "kb_fingerprint",
    "perf_fingerprint",
    "repair_fingerprint",
    "resolve_backend",
]
