"""Persistent, content-addressed grading result cache.

The in-memory result cache in :mod:`repro.core.pipeline` dies with its
process, so every fresh batch run and every forked serve worker re-grades
submissions the system has already seen.  MOOC cohorts are duplicate-heavy,
which makes that waste large.  :class:`ResultStore` is the cross-process
complement: a directory of sharded JSON entries keyed by submission content
hash, namespaced by assignment and by a fingerprint of the assignment's
grading configuration.

Design points:

* **Content-addressed.**  Keys are :func:`repro.core.pipeline.source_key`
  hashes (SHA-256 of normalized source), so resubmissions and CRLF/blank
  line variants share one entry.
* **KB-versioned.**  Entries live under ``<assignment>/<fingerprint[:12]>/``
  where the fingerprint digests the assignment's patterns, constraints, and
  matching flags (:func:`kb_fingerprint`).  Editing the knowledge base
  changes the fingerprint, which atomically invalidates every stale entry
  — no migration or cleanup pass required.  The full fingerprint is also
  stored inside each entry and verified on read.
* **Process-safe without locks.**  Writers stage a unique temp file and
  ``os.replace`` it into place (atomic on POSIX).  Concurrent writers of
  the same key race benignly: grading is deterministic, so last-writer-wins
  replaces identical content.
* **Corruption-tolerant.**  A truncated, unreadable, or schema-mismatched
  entry is a cache miss, never an error; readers validate everything and
  swallow all I/O and decode failures.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from pathlib import Path

from repro.analysis.checks import analysis_fingerprint
from repro.core.assignment import Assignment
from repro.core.report import GradingReport

#: Entry format version.  Bump when the on-disk layout or the meaning of a
#: stored report changes; old entries then read as misses.
SCHEMA_VERSION = 1

#: Characters allowed verbatim in the assignment path component.
_SAFE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)

_tmp_counter = itertools.count()


def _safe_component(name: str) -> str:
    """Make an assignment name safe to use as a directory name."""
    cleaned = "".join(ch if ch in _SAFE_CHARS else "_" for ch in name)
    return cleaned or "_"


def kb_fingerprint(assignment: Assignment) -> str:
    """Hex digest of the assignment configuration grading depends on.

    Covers the expected methods (patterns, their occurrence counts,
    constraints, feedback texts — everything in their dataclass reprs),
    the matching flags, and the active static-analysis check set
    (:func:`repro.analysis.checks.analysis_fingerprint`) — stored reports
    carry diagnostics, so a report graded under a different check set
    must read as a miss.  Reference solutions, functional tests, and the
    synthesis space are deliberately excluded: they do not influence
    :meth:`FeedbackEngine.grade` output, so editing them must not
    invalidate cached reports.
    """
    canonical = repr(
        (
            SCHEMA_VERSION,
            assignment.name,
            assignment.enforce_headers,
            assignment.synthesize_else_conditions,
            assignment.expected_methods,
            analysis_fingerprint(),
        )
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """On-disk grading cache for one assignment under one KB version.

    All methods are safe to call concurrently from multiple threads and
    multiple processes.  ``get`` returns ``None`` for anything it cannot
    fully read and validate; ``put`` returns ``False`` instead of raising
    when the entry cannot be written.
    """

    def __init__(self, root: str | os.PathLike[str], assignment: Assignment):
        self.assignment = assignment
        self.fingerprint = kb_fingerprint(assignment)
        self.root = Path(root)
        self._dir = (
            self.root
            / _safe_component(assignment.name)
            / self.fingerprint[:12]
        )
        self._mkdir_lock = threading.Lock()

    # ------------------------------------------------------------------
    # paths

    def path_for(self, key: str) -> Path:
        """Entry path for a content key (sharded to keep directories small)."""
        shard = key[:2] if len(key) >= 2 else "xx"
        return self._dir / shard / f"{key}.json"

    def cluster_path_for(self, fingerprint: str) -> Path:
        """Entry path for a cluster record, keyed by bucket fingerprint.

        Cluster records live beside the source-keyed entries, under a
        ``cluster/`` namespace of the same assignment+KB directory, so
        editing the knowledge base invalidates them together with the
        reports they were recorded from.
        """
        shard = fingerprint[:2] if len(fingerprint) >= 2 else "xx"
        return self._dir / "cluster" / shard / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # read side

    def get(self, key: str) -> GradingReport | None:
        """Return the stored report for ``key``, or ``None`` on any miss.

        Missing file, partial write, corrupt JSON, wrong schema, wrong
        fingerprint, or undecodable report all count as misses.
        """
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("schema") != SCHEMA_VERSION:
                return None
            if entry.get("kb") != self.fingerprint:
                return None
            if entry.get("key") != key:
                return None
            return GradingReport.from_dict(entry["report"])
        except Exception:  # noqa: BLE001 - a bad entry is a miss, never an error
            return None

    def cluster_key(self, key: str) -> str | None:
        """The bucket fingerprint recorded on entry ``key``, if any.

        Forward-compat by defaulting, exactly like the report decoder's
        handling of pre-diagnostics payloads: entries written before
        clustering existed simply lack the ``cluster`` key and read as
        ``None`` — they stay valid reports and never invalidate on
        upgrade.
        """
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("schema") != SCHEMA_VERSION:
                return None
            if entry.get("kb") != self.fingerprint:
                return None
            value = entry.get("cluster")
            return value if isinstance(value, str) else None
        except Exception:  # noqa: BLE001 - a bad entry is a miss, never an error
            return None

    def get_cluster(self, fingerprint: str) -> dict | None:
        """Return the cluster record for a bucket fingerprint, or ``None``.

        Like :meth:`get`, anything unreadable or mismatched is a miss.
        The record's internal layout is owned by
        :mod:`repro.cluster.specialize`; the store only validates its own
        envelope.
        """
        try:
            path = self.cluster_path_for(fingerprint)
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("schema") != SCHEMA_VERSION:
                return None
            if entry.get("kb") != self.fingerprint:
                return None
            if entry.get("key") != fingerprint:
                return None
            record = entry.get("record")
            return record if isinstance(record, dict) else None
        except Exception:  # noqa: BLE001 - a bad entry is a miss, never an error
            return None

    # ------------------------------------------------------------------
    # write side

    def put(
        self, key: str, report: GradingReport, cluster: str | None = None
    ) -> bool:
        """Persist ``report`` under ``key``; returns ``False`` on failure.

        ``cluster`` optionally records the submission's bucket
        fingerprint alongside the report (see :meth:`cluster_key`).
        """
        path = self.path_for(key)
        entry = {
            "schema": SCHEMA_VERSION,
            "kb": self.fingerprint,
            "key": key,
            "report": report.to_dict(),
        }
        if cluster is not None:
            entry["cluster"] = cluster
        return self._write_entry(path, entry)

    def put_cluster(self, fingerprint: str, record: dict) -> bool:
        """Persist a cluster record under its bucket fingerprint."""
        entry = {
            "schema": SCHEMA_VERSION,
            "kb": self.fingerprint,
            "key": fingerprint,
            "record": record,
        }
        return self._write_entry(self.cluster_path_for(fingerprint), entry)

    def _write_entry(self, path: Path, entry: dict) -> bool:
        """Atomically stage-and-replace one JSON entry."""
        tmp_name = (
            f"{path.name}.{os.getpid()}.{threading.get_ident()}"
            f".{next(_tmp_counter)}.tmp"
        )
        tmp_path = path.parent / tmp_name
        try:
            if not path.parent.is_dir():
                with self._mkdir_lock:
                    path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(tmp_path, path)
            return True
        except Exception:  # noqa: BLE001 - callers treat a failed write as best-effort
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False

    # ------------------------------------------------------------------
    # maintenance helpers

    def entry_count(self) -> int:
        """Number of readable-looking entries for this assignment+KB."""
        if not self._dir.is_dir():
            return 0
        return sum(1 for _ in self._dir.glob("*/*.json"))
