"""Cohort analytics: aggregate feedback over many submissions.

The paper's setting is a MOOC where one assignment receives hundreds of
thousands of submissions; the individual feedback reports are for
students, while the *aggregate* is for instructors — which mistakes
dominate, how often patterns disagree with functional tests, and how
fast the pipeline runs.  :func:`analyze_cohort` grades a cohort and
returns a :class:`CohortAnalysis` with exactly those aggregates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.assignment import Assignment
from repro.core.engine import FeedbackEngine
from repro.core.report import GradingReport
from repro.matching.feedback import FeedbackStatus
from repro.testing.functional import run_tests_on_source


@dataclass(frozen=True)
class SubmissionOutcome:
    """One cohort member's verdicts."""

    label: str
    positive: bool
    tests_passed: bool | None
    score: float
    max_score: float

    @property
    def is_discrepancy(self) -> bool:
        """Paper Table I column D: the verdicts disagree."""
        return self.tests_passed is not None and \
            self.positive != self.tests_passed


@dataclass
class CohortAnalysis:
    """Aggregated results of grading one cohort."""

    assignment_name: str
    outcomes: list[SubmissionOutcome] = field(default_factory=list)
    mistake_counts: dict[str, int] = field(default_factory=dict)
    grading_seconds: float = 0.0
    testing_seconds: float = 0.0

    # -- verdicts --------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.outcomes)

    @property
    def positive_count(self) -> int:
        return sum(1 for o in self.outcomes if o.positive)

    @property
    def negative_count(self) -> int:
        return self.size - self.positive_count

    @property
    def discrepancies(self) -> list[SubmissionOutcome]:
        return [o for o in self.outcomes if o.is_discrepancy]

    @property
    def discrepancy_rate(self) -> float:
        return len(self.discrepancies) / self.size if self.size else 0.0

    # -- timing ----------------------------------------------------------

    @property
    def grading_ms_per_submission(self) -> float:
        return 1000 * self.grading_seconds / self.size if self.size else 0.0

    # -- instructor views --------------------------------------------------

    def top_mistakes(self, limit: int = 10) -> list[tuple[str, int]]:
        """Most frequent non-Correct feedback comments, descending."""
        ranked = sorted(
            self.mistake_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:limit]

    def to_rows(self) -> list[dict]:
        """Flat per-submission rows (CSV/JSON-friendly)."""
        return [
            {
                "label": o.label,
                "positive": o.positive,
                "tests_passed": o.tests_passed,
                "discrepancy": o.is_discrepancy,
                "score": o.score,
                "max_score": o.max_score,
            }
            for o in self.outcomes
        ]

    def summary(self) -> str:
        lines = [
            f"Cohort analysis for {self.assignment_name}: "
            f"{self.size} submissions",
            f"  verdicts: {self.positive_count} positive, "
            f"{self.negative_count} negative",
            f"  grading: {self.grading_ms_per_submission:.1f} ms per "
            "submission",
        ]
        if any(o.tests_passed is not None for o in self.outcomes):
            lines.append(
                f"  discrepancies vs functional tests: "
                f"{len(self.discrepancies)} "
                f"({100 * self.discrepancy_rate:.1f}%)"
            )
        if self.mistake_counts:
            lines.append("  top mistakes:")
            for source, count in self.top_mistakes(5):
                lines.append(f"    {count:4d}  {source}")
        return "\n".join(lines)


def analyze_cohort(
    assignment: Assignment,
    sources: list[str] | list[tuple[str, str]],
    run_tests: bool = True,
    step_budget: int | None = None,
) -> CohortAnalysis:
    """Grade a cohort and aggregate the results.

    ``sources`` is a list of submission texts, or ``(label, text)``
    pairs.  With ``run_tests`` the functional suite runs as well and the
    per-submission agreement (Table I's D) is recorded.
    """
    engine = FeedbackEngine(assignment)
    analysis = CohortAnalysis(assignment_name=assignment.name)
    for position, item in enumerate(sources):
        if isinstance(item, tuple):
            label, source = item
        else:
            label, source = f"#{position}", item
        started = time.perf_counter()
        report: GradingReport = engine.grade(source)
        analysis.grading_seconds += time.perf_counter() - started
        tests_passed: bool | None = None
        if run_tests and assignment.tests:
            started = time.perf_counter()
            kwargs = {}
            if step_budget is not None:
                kwargs["step_budget"] = step_budget
            tests_passed = run_tests_on_source(
                source, assignment.tests, **kwargs
            ).passed
            analysis.testing_seconds += time.perf_counter() - started
        analysis.outcomes.append(
            SubmissionOutcome(
                label=label,
                positive=report.is_positive,
                tests_passed=tests_passed,
                score=report.score,
                max_score=report.max_score,
            )
        )
        for comment in report.comments:
            if comment.status is not FeedbackStatus.CORRECT:
                key = f"{comment.source} [{comment.status}]"
                analysis.mistake_counts[key] = (
                    analysis.mistake_counts.get(key, 0) + 1
                )
    return analysis
