"""Corpus-backed minimal-fix suggestions (``repro.repair``).

The paper's pattern feedback tells students *what is wrong*; this
package tells them *what to change*, following the search-align-repair
recipe (Wang et al.; Singh et al., PAPERS.md):

1. :mod:`repro.repair.corpus` — a per-assignment corpus of
   functionally-verified correct solutions, seeded from the KB's
   reference solutions plus synth sampling and persisted through the
   :mod:`repro.core.storage` backends (record kind ``repair``);
2. :mod:`repro.repair.search` — nearest-neighbor search over the corpus
   by EPDG distance, with cheap signature pre-filtering and a
   deadline-aware budget;
3. :mod:`repro.repair.align` / :mod:`repro.repair.edits` — bipartite
   node alignment of the best candidates against the failing
   submission, yielding a ranked minimal edit script with the student's
   own identifiers substituted back;
4. :mod:`repro.repair.engine` — the channel itself:
   :class:`~repro.repair.engine.RepairEngine` plugs into
   :class:`~repro.core.engine.FeedbackEngine` as the opt-in ``repair``
   pipeline phase, and every suggestion it emits is machine-verified
   (the repaired source passes :mod:`repro.testing`) first.

Submodules are resolved lazily: :mod:`repro.core.report` imports
:mod:`repro.repair.model` (a dependency-free leaf), and an eager import
of the heavier submodules here would close an import cycle back through
``repro.core``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.repair.model import RepairEdit, RepairSuggestion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.repair.corpus import CorpusEntry, RepairCorpus
    from repro.repair.engine import RepairConfig, RepairEngine

__all__ = [
    "CorpusEntry",
    "RepairConfig",
    "RepairCorpus",
    "RepairEdit",
    "RepairEngine",
    "RepairSuggestion",
]

_LAZY = {
    "CorpusEntry": "repro.repair.corpus",
    "RepairCorpus": "repro.repair.corpus",
    "RepairConfig": "repro.repair.engine",
    "RepairEngine": "repro.repair.engine",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
