"""Repair-channel data records: edits and suggestions.

This module is deliberately a *leaf*: it imports nothing from the rest
of :mod:`repro` so that :mod:`repro.core.report` can carry
:class:`RepairSuggestion` values without creating an import cycle
through the heavier repair machinery (corpus, search, alignment), which
itself depends on :mod:`repro.core`.

A :class:`RepairSuggestion` is the unit that rides a
:class:`~repro.core.report.GradingReport`: one corpus candidate, the
ranked minimal edit script that turns the student's submission into it,
and the fully-applied result (``repaired_source``) that was
machine-verified against the assignment's functional tests before the
suggestion was allowed anywhere near a report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: Edit operations, in the order they rank inside a script: rewrites are
#: the most actionable feedback, inserts add missing statements, deletes
#: remove leftovers.
EDIT_OPS = ("rewrite", "insert", "delete")


@dataclass(frozen=True)
class RepairEdit:
    """One statement-level edit against the student's submission.

    ``before``/``after`` are printer-rendered statement texts
    (:mod:`repro.java.printer` content, the same canonical spelling the
    EPDG nodes carry), with the student's own identifiers substituted
    back into candidate-side text wherever the variable alignment made
    that safe.
    """

    op: str
    method: str
    node_type: str
    before: str | None = None
    after: str | None = None

    def render(self) -> str:
        if self.op == "rewrite":
            return f"in {self.method}: change '{self.before}' to '{self.after}'"
        if self.op == "insert":
            return f"in {self.method}: add '{self.after}'"
        return f"in {self.method}: remove '{self.before}'"

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "method": self.method,
            "node_type": self.node_type,
            "before": self.before,
            "after": self.after,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RepairEdit":
        return cls(
            op=str(payload["op"]),
            method=str(payload["method"]),
            node_type=str(payload.get("node_type", "")),
            before=payload.get("before"),
            after=payload.get("after"),
        )


@dataclass(frozen=True)
class RepairSuggestion:
    """A verified minimal-fix suggestion for one failing submission.

    ``verified`` is ``True`` for every suggestion the engine emits — the
    repair channel runs the assignment's functional tests over
    ``repaired_source`` (the edit script fully applied) and drops the
    suggestion on any failure, so a wrong fix can never reach a report.
    The flag is stored anyway so serialized payloads are self-describing
    and so tests can pin the invariant.
    """

    candidate_key: str
    origin: str
    distance: float
    edits: tuple[RepairEdit, ...]
    repaired_source: str
    verified: bool = True

    @property
    def edit_count(self) -> int:
        return len(self.edits)

    def render(self) -> str:
        """Human-readable suggestion block (used by report rendering)."""
        header = (
            f"Suggested fix ({self.edit_count} edit"
            f"{'' if self.edit_count == 1 else 's'}, aligned with a "
            "verified correct solution):"
        )
        lines = [header]
        lines.extend(f"  {edit.render()}" for edit in self.edits)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "candidate": self.candidate_key,
            "origin": self.origin,
            "distance": self.distance,
            "verified": self.verified,
            "edits": [edit.to_dict() for edit in self.edits],
            "repaired_source": self.repaired_source,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RepairSuggestion":
        return cls(
            candidate_key=str(payload.get("candidate", "")),
            origin=str(payload.get("origin", "")),
            distance=float(payload.get("distance", 0.0)),
            edits=tuple(
                RepairEdit.from_dict(e) for e in payload.get("edits", ())
            ),
            repaired_source=str(payload.get("repaired_source", "")),
            verified=bool(payload.get("verified", False)),
        )
