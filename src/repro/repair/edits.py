"""Edit-script extraction: from an alignment to student-facing edits.

Two responsibilities:

1. **Identifier substitution.**  The candidate solved the assignment
   with its own variable names; telling a student who wrote ``total``
   to add a statement about ``sum`` is noise.  Aligned pairs whose
   shapes agree vote on a candidate→student variable mapping (matching
   identifier occurrence positions inside the paired contents), the
   votes are resolved into a deterministic injective mapping over the
   candidate's *defined* variables, and every candidate-side text —
   edit ``after`` strings and the full repaired source — is rewritten
   through :func:`repro.cluster.specialize.rename_submission` (token
   splicing: simultaneous, never touches string literals).  A mapping
   target that would capture an existing candidate identifier which is
   not itself being renamed away is dropped rather than risked.

2. **Edit-script assembly.**  Matched pairs with differing content
   become ``rewrite`` edits, unmatched candidate nodes ``insert``,
   unmatched submission nodes ``delete`` — ranked rewrites first (the
   most actionable), then inserts, then deletes, each sub-ordered by
   method and node id.  The fully-applied result (``repaired_source``,
   the renamed candidate source) is what the engine verifies against
   the functional tests before any of this reaches a report.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping

from repro.cluster.specialize import rename_submission
from repro.pdg.graph import Epdg
from repro.repair.align import MethodAlignment, node_shape
from repro.repair.model import EDIT_OPS, RepairEdit

_IDENTIFIER = re.compile(r"[A-Za-z_$][A-Za-z0-9_$]*")


def _occurrences(content: str, variables: frozenset[str]) -> list[str]:
    """The node's variable occurrences, in textual order."""
    return [
        token
        for token in _IDENTIFIER.findall(content)
        if token in variables
    ]


def variable_mapping(
    alignments: Iterable[MethodAlignment],
    candidate_graphs: Mapping[str, Epdg],
    candidate_source: str,
) -> dict[str, str]:
    """Candidate→student identifier mapping from the aligned pairs.

    Only shape-equal pairs vote (position-for-position over their
    variable occurrences); votes are resolved greedily by descending
    count with alphabetical tie-breaks, injectively on both sides, and
    restricted to variables the candidate actually *defines* — method
    names and field accesses never get renamed.  Identity votes still
    claim their slot, which protects a shared name from being mapped
    elsewhere.
    """
    defined: set[str] = set()
    for graph in candidate_graphs.values():
        for node in graph.nodes:
            defined.update(node.defines)
    votes: dict[tuple[str, str], int] = {}
    for alignment in alignments:
        for left, right in alignment.pairs:
            if node_shape(left) != node_shape(right):
                continue
            left_seq = _occurrences(left.content, left.variables)
            right_seq = _occurrences(right.content, right.variables)
            if len(left_seq) != len(right_seq):
                continue
            for student_var, candidate_var in zip(left_seq, right_seq):
                if candidate_var in defined:
                    pair = (candidate_var, student_var)
                    votes[pair] = votes.get(pair, 0) + 1
    mapping: dict[str, str] = {}
    used_targets: set[str] = set()
    for (candidate_var, student_var), _ in sorted(
        votes.items(), key=lambda item: (-item[1], item[0])
    ):
        if candidate_var in mapping or student_var in used_targets:
            continue
        mapping[candidate_var] = student_var
        used_targets.add(student_var)
    # Capture safety: renaming x -> y is only sound if y either does not
    # occur in the candidate at all or is itself renamed away (the token
    # splice is simultaneous, so swaps are fine).  Drop offenders in
    # deterministic order; dropping shrinks the key set, so re-check
    # until stable.
    candidate_identifiers = set(_IDENTIFIER.findall(candidate_source))
    while True:
        offenders = sorted(
            source
            for source, target in mapping.items()
            if target != source
            and target in candidate_identifiers
            and target not in mapping
        )
        if not offenders:
            break
        for source in offenders:
            del mapping[source]
    return {
        source: target
        for source, target in mapping.items()
        if source != target
    }


def edit_script(
    alignments: Iterable[MethodAlignment], mapping: Mapping[str, str]
) -> tuple[RepairEdit, ...]:
    """Ranked statement edits from the alignment, identifiers mapped."""
    rename = dict(mapping)
    edits: list[tuple[int, str, int, RepairEdit]] = []
    rank = {op: i for i, op in enumerate(EDIT_OPS)}
    for alignment in alignments:
        for left, right in alignment.pairs:
            after = rename_submission(right.content, rename)
            if left.content == after:
                continue
            edits.append(
                (
                    rank["rewrite"],
                    alignment.method,
                    left.node_id,
                    RepairEdit(
                        op="rewrite",
                        method=alignment.method,
                        node_type=right.type.value,
                        before=left.content,
                        after=after,
                    ),
                )
            )
        for right in alignment.unmatched_right:
            edits.append(
                (
                    rank["insert"],
                    alignment.method,
                    right.node_id,
                    RepairEdit(
                        op="insert",
                        method=alignment.method,
                        node_type=right.type.value,
                        after=rename_submission(right.content, rename),
                    ),
                )
            )
        for left in alignment.unmatched_left:
            edits.append(
                (
                    rank["delete"],
                    alignment.method,
                    left.node_id,
                    RepairEdit(
                        op="delete",
                        method=alignment.method,
                        node_type=left.type.value,
                        before=left.content,
                    ),
                )
            )
    edits.sort(key=lambda item: item[:3])
    return tuple(edit for *_, edit in edits)


def repaired_source(
    candidate_source: str, mapping: Mapping[str, str]
) -> str:
    """The edit script fully applied: the candidate in the student's names."""
    return rename_submission(candidate_source, dict(mapping))
