"""Nearest-neighbor candidate search over the repair corpus.

Exact EPDG alignment (:mod:`repro.repair.align`) is the expensive step,
so candidates are ranked first by a cheap structural **signature
distance** and only the closest few are aligned.  A method's signature
is a fixed-length integer vector — node count, edge counts per type,
node counts per :class:`~repro.pdg.graph.NodeType`, distinct-variable
count, and a capped degree-profile histogram — and the distance between
two submissions is the L1 distance summed over the union of their
method names (a method absent on one side compares against the zero
vector, so missing or extra methods cost their full weight).  The
signature is invariant under identifier renaming, matching the
alignment's own indifference to variable names.

Ranking is deterministic: ties break on the candidate's content key.
The caller polls :func:`repro.instrumentation.check_deadline` between
alignments, so search degrades to best-so-far under a deadline instead
of overshooting it.
"""

from __future__ import annotations

from typing import Mapping

from repro.pdg.graph import EdgeType, Epdg, NodeType

#: Node types with a signature slot (every type a builder can emit).
SIGNATURE_TYPES = (
    NodeType.ASSIGN,
    NodeType.BREAK,
    NodeType.CALL,
    NodeType.COND,
    NodeType.DECL,
    NodeType.RETURN,
)

#: Degree-profile histogram: 4 profile components × degree buckets 0-3+.
_HISTOGRAM_BUCKETS = 16

#: Total signature vector length (kept in sync with method_signature).
SIGNATURE_LENGTH = 3 + len(SIGNATURE_TYPES) + 1 + _HISTOGRAM_BUCKETS

_ZERO = (0,) * SIGNATURE_LENGTH


def method_signature(graph: Epdg) -> tuple[int, ...]:
    """Fixed-length structural vector of one method's EPDG."""
    ctrl = sum(1 for e in graph.edges if e.type is EdgeType.CTRL)
    data = len(graph.edges) - ctrl
    values = [len(graph.nodes), ctrl, data]
    values.extend(
        len(graph.nodes_of_type(node_type)) for node_type in SIGNATURE_TYPES
    )
    variables: set[str] = set()
    histogram = [0] * _HISTOGRAM_BUCKETS
    for node in graph.nodes:
        variables.update(node.variables)
        profile = graph.degree_profile(node.node_id)
        for component in range(4):
            histogram[component * 4 + min(profile[component], 3)] += 1
    values.append(len(variables))
    values.extend(histogram)
    return tuple(values)


def submission_signature(
    graphs: Mapping[str, Epdg],
) -> dict[str, tuple[int, ...]]:
    """Per-method signatures for a whole submission."""
    return {name: method_signature(graph) for name, graph in graphs.items()}


def signature_distance(
    left: Mapping[str, tuple[int, ...]],
    right: Mapping[str, tuple[int, ...]],
) -> int:
    """L1 distance over the union of method names."""
    total = 0
    for name in left.keys() | right.keys():
        a = left.get(name, _ZERO)
        b = right.get(name, _ZERO)
        total += sum(abs(x - y) for x, y in zip(a, b))
    return total


def rank_candidates(
    submission: Mapping[str, tuple[int, ...]],
    candidates: Mapping[str, Mapping[str, tuple[int, ...]]],
    top: int,
) -> list[tuple[int, str]]:
    """The ``top`` closest candidate keys, as ``(distance, key)`` pairs.

    Sorted ascending by distance, then key — so the ordering (and
    therefore which candidates get aligned under a tight budget) is
    stable across runs and backends.
    """
    ranked = sorted(
        (signature_distance(submission, signature), key)
        for key, signature in candidates.items()
    )
    return ranked[: max(top, 0)]
