"""The repair channel: corpus → search → align → verify → suggest.

:class:`RepairEngine` is what plugs into
:class:`~repro.core.engine.FeedbackEngine` (its ``repairer``
collaborator).  Given a failing submission's EPDGs it:

1. lazily obtains the corpus — loaded from the
   :class:`~repro.core.storage.ResultStore` when one is attached and a
   saved corpus exists, built (and saved back) otherwise;
2. ranks corpus candidates by signature distance
   (:mod:`repro.repair.search`) and exactly aligns only the closest
   :attr:`RepairConfig.prefilter_top`;
3. keeps the candidate with the fewest edits, substitutes the student's
   identifiers back (:mod:`repro.repair.edits`);
4. **machine-verifies** the repaired source against the assignment's
   functional tests and emits the suggestion only on a full pass — a
   wrong suggestion is structurally unable to reach a report.

The whole of steps 2-4 runs under its own
:func:`repro.instrumentation.deadline` budget
(:attr:`RepairConfig.budget_seconds`), nested inside whatever grading
deadline is already ambient; hitting the repair budget degrades to "no
suggestion" (``repair.deadline_stops``), while an expired *outer*
grading deadline propagates so the pipeline still produces its normal
timeout report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.core.assignment import Assignment
from repro.instrumentation import (
    DeadlineExceeded,
    active_deadline,
    check_deadline,
    count,
    deadline,
)
from repro.java import parse_submission
from repro.pdg.builder import extract_all_epdgs
from repro.pdg.graph import Epdg
from repro.repair.align import align_graphs
from repro.repair.corpus import DEFAULT_SYNTH_SAMPLES, RepairCorpus
from repro.repair.edits import edit_script, repaired_source, variable_mapping
from repro.repair.model import RepairSuggestion
from repro.repair.search import (
    rank_candidates,
    submission_signature,
)
from repro.testing import run_tests_on_source
from repro.testing.functional import DEFAULT_TEST_BUDGET

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.storage import ResultStore


@dataclass(frozen=True)
class RepairConfig:
    """Tunables of the repair channel."""

    #: Suggestions carried per report (best-first).
    max_suggestions: int = 1
    #: Candidates surviving the signature pre-filter into exact alignment.
    prefilter_top: int = 4
    #: Wall-clock budget for one ``suggest`` call (search + verify).
    budget_seconds: float = 1.0
    #: Synthetic candidates sampled when building a corpus.
    synth_samples: int = DEFAULT_SYNTH_SAMPLES
    #: Interpreter step budget per verification test.
    step_budget: int = DEFAULT_TEST_BUDGET


class RepairEngine:
    """Produces verified fix suggestions for one assignment.

    Thread-compatible the same way :class:`FeedbackEngine` is: the only
    mutable state is the lazily-initialized corpus and a per-entry
    candidate-EPDG cache, both written idempotently (rebuilding or
    re-parsing yields identical values), so sharing an instance across
    the batch pipeline's worker threads is safe.
    """

    def __init__(
        self,
        assignment: Assignment,
        corpus: RepairCorpus | None = None,
        store: "ResultStore | None" = None,
        config: RepairConfig | None = None,
    ):
        self.assignment = assignment
        self.config = config or RepairConfig()
        self.store = store
        self._corpus = corpus
        self._candidate_graphs: dict[str, dict[str, Epdg] | None] = {}
        self._candidate_signatures: dict[
            str, dict[str, tuple[int, ...]]
        ] = {}

    @classmethod
    def for_assignment(
        cls,
        assignment: Assignment,
        store: "ResultStore | None" = None,
        config: RepairConfig | None = None,
    ) -> "RepairEngine":
        """The standard construction used by the pipeline wiring."""
        return cls(assignment, store=store, config=config)

    # ------------------------------------------------------------------
    # corpus management

    def corpus(self) -> RepairCorpus:
        """The corpus, loading or building it on first use.

        Lazy so that pipeline parents which only fork workers (process
        mode) never pay for a build; built corpora are saved back to the
        attached store so the next engine over the same cache directory
        loads instead of rebuilding.
        """
        if self._corpus is None:
            loaded = (
                RepairCorpus.load(self.assignment, self.store)
                if self.store is not None
                else None
            )
            if loaded is not None:
                count("repair.corpus_loads")
                self._corpus = loaded
            else:
                count("repair.corpus_builds")
                self._corpus = RepairCorpus.build(
                    self.assignment,
                    synth_samples=self.config.synth_samples,
                    step_budget=self.config.step_budget,
                )
                if self.store is not None:
                    self._corpus.save(self.store)
        return self._corpus

    def _graphs_for(self, key: str, source: str) -> dict[str, Epdg] | None:
        """Candidate EPDGs, parsed once per corpus entry and cached."""
        if key not in self._candidate_graphs:
            try:
                graphs = extract_all_epdgs(
                    parse_submission(source),
                    self.assignment.synthesize_else_conditions,
                )
            except Exception:  # noqa: BLE001 - an unparseable entry is skipped
                graphs = None
            self._candidate_graphs[key] = graphs
            if graphs is not None:
                self._candidate_signatures[key] = submission_signature(graphs)
        return self._candidate_graphs[key]

    # ------------------------------------------------------------------
    # the channel

    def suggest(
        self, graphs: Mapping[str, Epdg]
    ) -> list[RepairSuggestion]:
        """Verified fix suggestions for one failing submission's EPDGs.

        Returns at most :attr:`RepairConfig.max_suggestions`, possibly
        none: an empty corpus, no candidate within reach, a failed
        verification, or an exhausted repair budget all degrade to an
        empty list — never to an unverified suggestion.
        """
        count("repair.requests")
        outer = active_deadline()
        try:
            with deadline(self.config.budget_seconds):
                suggestions = self._suggest_under_deadline(graphs)
        except DeadlineExceeded:
            if outer is not None and time.monotonic() > outer:
                raise  # the grading deadline itself expired: not ours
            count("repair.deadline_stops")
            suggestions = []
        if suggestions:
            count("repair.suggestions", len(suggestions))
        else:
            count("repair.no_suggestion")
        return suggestions

    def _suggest_under_deadline(
        self, graphs: Mapping[str, Epdg]
    ) -> list[RepairSuggestion]:
        corpus = self.corpus()
        entries = {entry.key: entry for entry in corpus.entries}
        if not entries:
            return []
        submission = submission_signature(graphs)
        signatures: dict[str, dict[str, tuple[int, ...]]] = {}
        for key, entry in entries.items():
            check_deadline(self.config.budget_seconds)
            if self._graphs_for(key, entry.source) is not None:
                signatures[key] = self._candidate_signatures[key]
        ranked = rank_candidates(
            submission, signatures, self.config.prefilter_top
        )
        scored: list[tuple[int, int, str, RepairSuggestion]] = []
        for distance, key in ranked:
            check_deadline(self.config.budget_seconds)
            entry = entries[key]
            candidate_graphs = self._candidate_graphs[key]
            assert candidate_graphs is not None  # filtered above
            alignments = align_graphs(graphs, candidate_graphs)
            mapping = variable_mapping(
                alignments, candidate_graphs, entry.source
            )
            edits = edit_script(alignments, mapping)
            if not edits:
                # Graph-identical to a verified correct solution: there
                # is nothing to fix, and suggesting edits toward some
                # *other* candidate would be pure noise.
                return []
            suggestion = RepairSuggestion(
                candidate_key=key,
                origin=entry.origin,
                distance=float(distance),
                edits=edits,
                repaired_source=repaired_source(entry.source, mapping),
                verified=True,
            )
            scored.append((len(edits), distance, key, suggestion))
        scored.sort(key=lambda item: item[:3])
        emitted: list[RepairSuggestion] = []
        for *_, suggestion in scored:
            if len(emitted) >= self.config.max_suggestions:
                break
            check_deadline(self.config.budget_seconds)
            if run_tests_on_source(
                suggestion.repaired_source,
                self.assignment.tests,
                step_budget=self.config.step_budget,
            ).passed:
                count("repair.verified")
                emitted.append(suggestion)
            else:
                count("repair.verify_failed")
        return emitted
