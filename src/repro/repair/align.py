"""Bipartite statement alignment between submission and candidate EPDGs.

Given the failing submission's graphs and one corpus candidate's, this
module decides which statements correspond.  Nodes are bucketed by
``(method, NodeType)`` — a Cond never aligns with a Return — and within
each bucket a maximum-weight injective assignment is solved, where the
weight of pairing submission node *u* with candidate node *v* rewards,
in decreasing order: identical content, identical **shape** (content
with the node's own variables wildcarded, so ``x = x + 1`` and
``n = n + 1`` count as the same statement), similar degree profiles,
and matching defines/uses arity.  Pairs below :data:`MIN_PAIR_WEIGHT`
are disallowed; nodes left unmatched on the submission side become
*delete* edits downstream, unmatched candidate nodes become *inserts*,
and matched pairs with differing content become *rewrites*
(:mod:`repro.repair.edits`).

Small buckets are solved exactly with the same subset-memo dynamic
program the matcher uses for its method-assignment sweep (smallest-id
tie-break, so results are deterministic); buckets past
:data:`EXACT_LIMIT` fall back to a deterministic greedy matching.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.pdg.graph import Epdg, GraphNode, NodeType

#: Minimum pairing weight: below this, leaving both nodes unmatched is
#: considered more honest than claiming they correspond.
MIN_PAIR_WEIGHT = 0.75

#: Largest per-side bucket size solved with the exact subset-memo DP
#: (state count is ``left × 2^right``; 12 keeps it under ~50k states).
EXACT_LIMIT = 12

#: Weight components.
_W_CONTENT = 4.0
_W_SHAPE = 2.0
_W_ARITY = 0.5


def node_shape(node: GraphNode) -> str:
    """Node content with its own variables wildcarded to ``_``.

    Only identifiers the EPDG builder recognized as variables of this
    node are replaced, so keywords, called method names, and literals
    keep contributing to the shape.
    """
    text = node.content
    for variable in sorted(node.variables, key=len, reverse=True):
        text = re.sub(rf"\b{re.escape(variable)}\b", "_", text)
    return text


def pair_weight(
    left: GraphNode,
    right: GraphNode,
    left_profile: tuple[int, int, int, int],
    right_profile: tuple[int, int, int, int],
) -> float:
    """Affinity of pairing submission node ``left`` with candidate ``right``."""
    weight = 0.0
    if left.content == right.content:
        weight += _W_CONTENT
    elif node_shape(left) == node_shape(right):
        weight += _W_SHAPE
    degree_gap = sum(
        abs(a - b) for a, b in zip(left_profile, right_profile)
    )
    weight += 1.0 / (1.0 + degree_gap)
    if (len(left.defines), len(left.uses)) == (
        len(right.defines),
        len(right.uses),
    ):
        weight += _W_ARITY
    return weight


@dataclass
class MethodAlignment:
    """Alignment result for one method name."""

    method: str
    #: Matched ``(submission_node, candidate_node)`` pairs.
    pairs: list[tuple[GraphNode, GraphNode]] = field(default_factory=list)
    #: Submission-only nodes (downstream: delete edits).
    unmatched_left: list[GraphNode] = field(default_factory=list)
    #: Candidate-only nodes (downstream: insert edits).
    unmatched_right: list[GraphNode] = field(default_factory=list)


def align_graphs(
    submission: Mapping[str, Epdg], candidate: Mapping[str, Epdg]
) -> list[MethodAlignment]:
    """Align every method of the submission against the candidate.

    Methods are matched by name (the corpus and the submission grade
    against the same published headers); a method present on only one
    side contributes all its nodes as unmatched.  Results are ordered
    by method name for determinism.
    """
    alignments: list[MethodAlignment] = []
    for method in sorted(submission.keys() | candidate.keys()):
        left_graph = submission.get(method)
        right_graph = candidate.get(method)
        alignment = MethodAlignment(method=method)
        if left_graph is None:
            assert right_graph is not None
            alignment.unmatched_right.extend(right_graph.nodes)
        elif right_graph is None:
            alignment.unmatched_left.extend(left_graph.nodes)
        else:
            _align_method(left_graph, right_graph, alignment)
        alignments.append(alignment)
    return alignments


def _align_method(
    left_graph: Epdg, right_graph: Epdg, alignment: MethodAlignment
) -> None:
    types = sorted(
        {node.type for node in left_graph.nodes}
        | {node.type for node in right_graph.nodes},
        key=lambda t: t.value,
    )
    for node_type in types:
        _align_bucket(left_graph, right_graph, node_type, alignment)


def _align_bucket(
    left_graph: Epdg,
    right_graph: Epdg,
    node_type: NodeType,
    alignment: MethodAlignment,
) -> None:
    lefts = left_graph.nodes_of_type(node_type)
    rights = right_graph.nodes_of_type(node_type)
    if not lefts or not rights:
        alignment.unmatched_left.extend(lefts)
        alignment.unmatched_right.extend(rights)
        return
    weights = [
        [
            pair_weight(
                u,
                v,
                left_graph.degree_profile(u.node_id),
                right_graph.degree_profile(v.node_id),
            )
            for v in rights
        ]
        for u in lefts
    ]
    if max(len(lefts), len(rights)) <= EXACT_LIMIT:
        matching = _solve_exact(weights)
    else:
        matching = _solve_greedy(weights)
    used_rights: set[int] = set()
    for i, u in enumerate(lefts):
        j = matching[i]
        if j is None:
            alignment.unmatched_left.append(u)
        else:
            used_rights.add(j)
            alignment.pairs.append((u, rights[j]))
    alignment.unmatched_right.extend(
        v for j, v in enumerate(rights) if j not in used_rights
    )


def _solve_exact(weights: list[list[float]]) -> list[int | None]:
    """Maximum-weight injective matching allowing unmatched nodes.

    Subset-memo DP in the style of the matcher's assignment solver
    (:func:`repro.matching.submission._solve_assignment`), extended with
    a *skip* option per left node and a weight floor
    (:data:`MIN_PAIR_WEIGHT`).  Reconstruction prefers the
    smallest-index pairing, then skipping, so ties resolve the same way
    on every run.
    """
    n_left = len(weights)
    n_right = len(weights[0])
    memo: dict[tuple[int, int], float] = {}

    def best(index: int, used: int) -> float:
        if index == n_left:
            return 0.0
        key = (index, used)
        found = memo.get(key)
        if found is None:
            row = weights[index]
            found = best(index + 1, used)  # leave this node unmatched
            for j in range(n_right):
                if used & (1 << j) or row[j] < MIN_PAIR_WEIGHT:
                    continue
                value = row[j] + best(index + 1, used | (1 << j))
                if value > found:
                    found = value
            memo[key] = found
        return found

    matching: list[int | None] = []
    used = 0
    for index in range(n_left):
        target = best(index, used)
        row = weights[index]
        chosen: int | None = None
        for j in range(n_right):
            if used & (1 << j) or row[j] < MIN_PAIR_WEIGHT:
                continue
            if row[j] + best(index + 1, used | (1 << j)) == target:
                chosen = j
                used |= 1 << j
                break
        matching.append(chosen)
    return matching


def _solve_greedy(weights: list[list[float]]) -> list[int | None]:
    """Deterministic greedy fallback for oversized buckets.

    Candidate pairs sorted by descending weight (ties: smaller ids
    first) and taken injectively — not optimal, but stable, linear in
    the number of admissible pairs, and good enough that the verify
    step downstream still gates every emitted suggestion.
    """
    edges = sorted(
        (-row[j], i, j)
        for i, row in enumerate(weights)
        for j in range(len(row))
        if row[j] >= MIN_PAIR_WEIGHT
    )
    matching: list[int | None] = [None] * len(weights)
    used_rights: set[int] = set()
    for _, i, j in edges:
        if matching[i] is None and j not in used_rights:
            matching[i] = j
            used_rights.add(j)
    return matching
