"""Per-assignment corpus of functionally-verified correct solutions.

The repair channel suggests fixes by aligning a failing submission
against *known-correct* solutions, so the quality bar for corpus
admission is functional, not structural: every candidate — the KB's
reference solutions and synthetic variants sampled from the
assignment's :class:`~repro.synth.spaces.SubmissionSpace` — must pass
the assignment's full test suite through :mod:`repro.testing` before it
is admitted.  Synthetic candidates are drawn from
``SubmissionSpace.correct_indices`` (reference-option-first DFS order),
which front-loads near-reference variants and gives the corpus cheap
structural diversity.

Persistence rides the :mod:`repro.core.storage` backends as record kind
``"repair"``: one record per entry keyed by the solution's content key,
plus an index record under :data:`INDEX_KEY` listing the entry keys.
The store envelope already scopes records by KB fingerprint, so a
knowledge-base edit orphans the corpus together with the reports graded
against it.  Loading is corruption-tolerant in the store's usual sense
— an unreadable, truncated, or key-mismatched entry record is silently
dropped (degrading toward "no suggestion"), and a missing or unreadable
index reads as "no corpus"; a wrong suggestion can additionally never
escape because the engine re-verifies every repaired source before
emitting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.assignment import Assignment
from repro.core.pipeline import source_key
from repro.core.storage import ResultStore
from repro.instrumentation import count
from repro.testing import run_tests_on_source
from repro.testing.functional import DEFAULT_TEST_BUDGET

#: Store key of the corpus index record (lists the entry keys).
INDEX_KEY = "corpus"

#: Default number of synthetic candidates sampled per build.
DEFAULT_SYNTH_SAMPLES = 16

#: Recognized entry origins.
ORIGINS = ("reference", "synth")


@dataclass(frozen=True)
class CorpusEntry:
    """One verified correct solution: content key, source, provenance."""

    key: str
    source: str
    origin: str

    def to_record(self) -> dict[str, Any]:
        return {"source": self.source, "origin": self.origin}

    @classmethod
    def from_record(
        cls, key: str, record: Mapping[str, Any] | None
    ) -> "CorpusEntry | None":
        """Decode a stored record, or ``None`` when it cannot be trusted.

        Beyond shape checks, the content key is recomputed from the
        stored source: a record whose bytes were swapped or truncated
        past the JSON layer no longer hashes to its key and is dropped
        rather than ever aligned against.
        """
        if not isinstance(record, Mapping):
            return None
        source = record.get("source")
        origin = record.get("origin")
        if not isinstance(source, str) or not source:
            return None
        if not isinstance(origin, str):
            return None
        if source_key(source) != key:
            return None
        return cls(key=key, source=source, origin=origin)


class RepairCorpus:
    """The verified solutions of one assignment, in admission order."""

    def __init__(self, assignment: Assignment, entries: list[CorpusEntry]):
        self.assignment = assignment
        self.entries = entries

    def __len__(self) -> int:
        return len(self.entries)

    def origin_counts(self) -> dict[str, int]:
        counts = {origin: 0 for origin in ORIGINS}
        for entry in self.entries:
            counts[entry.origin] = counts.get(entry.origin, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(
        cls,
        assignment: Assignment,
        synth_samples: int = DEFAULT_SYNTH_SAMPLES,
        step_budget: int = DEFAULT_TEST_BUDGET,
    ) -> "RepairCorpus":
        """Assemble and functionally verify the corpus for ``assignment``.

        Every candidate runs the assignment's test suite; only passing
        sources are admitted (``repair.corpus_rejected`` counts the
        rest).  Duplicates — a reference solution that the space also
        generates, say — are collapsed by content key, first origin
        wins.
        """
        candidates: list[tuple[str, str]] = [
            (source, "reference") for source in assignment.reference_solutions
        ]
        if synth_samples > 0 and assignment.space_factory is not None:
            space = assignment.space()
            for index in space.correct_indices(limit=synth_samples):
                candidates.append((space.submission(index).source, "synth"))
        entries: list[CorpusEntry] = []
        seen: set[str] = set()
        for source, origin in candidates:
            count("repair.corpus_candidates")
            key = source_key(source)
            if key in seen:
                continue
            seen.add(key)
            if not run_tests_on_source(
                source, assignment.tests, step_budget=step_budget
            ).passed:
                count("repair.corpus_rejected")
                continue
            count("repair.corpus_admitted")
            entries.append(CorpusEntry(key=key, source=source, origin=origin))
        return cls(assignment, entries)

    # ------------------------------------------------------------------
    # persistence

    def save(self, store: ResultStore) -> int:
        """Persist every entry plus the index record; returns entry count.

        Entry records go first so a writer killed mid-save leaves either
        no index (no corpus: the next consumer rebuilds) or an index
        whose entries are all already durable — never an index pointing
        at nothing but air.  Individual write failures are best-effort
        like every store write; the loader drops what it cannot read.
        """
        for entry in self.entries:
            store.put_repair(entry.key, entry.to_record())
        store.put_repair(
            INDEX_KEY,
            {
                "entries": [entry.key for entry in self.entries],
                "count": len(self.entries),
            },
        )
        return len(self.entries)

    @classmethod
    def load(
        cls, assignment: Assignment, store: ResultStore
    ) -> "RepairCorpus | None":
        """Read the corpus back, dropping anything unreadable.

        Returns ``None`` when no index record exists (nothing was ever
        built for this assignment+KB scope); otherwise a corpus holding
        every entry that survived envelope validation and the content
        re-hash — possibly empty, which the engine treats as "no
        suggestion available".
        """
        index = store.get_repair(INDEX_KEY)
        if index is None:
            return None
        keys = index.get("entries")
        if not isinstance(keys, list):
            return None
        entries: list[CorpusEntry] = []
        for key in keys:
            if not isinstance(key, str):
                count("repair.corpus_dropped")
                continue
            entry = CorpusEntry.from_record(key, store.get_repair(key))
            if entry is None:
                count("repair.corpus_dropped")
                continue
            entries.append(entry)
        return cls(assignment, entries)
