"""Exception hierarchy shared across the whole library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers embedding the grading engine can catch a single exception type at
the API boundary while still discriminating parse errors (malformed student
code) from runtime errors (the student's program crashed under test).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class JavaSyntaxError(ReproError):
    """Raised when a student submission cannot be parsed.

    Carries the source position so graders can report *where* the
    submission stopped being valid Java.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.message = message
        self.line = line
        self.column = column


class JavaRuntimeError(ReproError):
    """Raised when the interpreter hits an error executing a submission.

    This models the exceptions a JVM would raise while running student
    code (division by zero, out-of-bounds array access, ...).
    """


class BudgetExceededError(JavaRuntimeError):
    """Raised when a program exceeds its execution step budget.

    Used to detect non-terminating submissions, which the paper highlights
    as a failure mode of dynamic-analysis graders.
    """


class PatternDefinitionError(ReproError):
    """Raised when a pattern, constraint, or assignment spec is malformed."""


class KnowledgeBaseError(ReproError):
    """Raised when the knowledge base registry is queried for unknown items."""
