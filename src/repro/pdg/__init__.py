"""Extended program dependence graphs (paper Section III-A).

An EPDG combines control flow (``Ctrl`` edges from each ``Cond`` node to
the statements it directly governs) and data flow (``Data`` edges from
definitions to uses) with typed nodes carrying the canonical Java
expression they perform.  :func:`extract_epdg` builds one graph per
method, following the paper's construction choices:

* transitive ``Ctrl`` edges are omitted (each node is linked only from its
  *nearest* enclosing condition);
* ``Data`` edges assume every condition holds and every loop body executes
  exactly once (Bhattacharjee & Jamil), so there are no loop back-edges
  and no "condition was false" edges.
"""

from repro.pdg.graph import EdgeType, Epdg, GraphEdge, GraphNode, NodeType
from repro.pdg.builder import extract_epdg, extract_all_epdgs
from repro.pdg.dot import to_dot

__all__ = [
    "EdgeType",
    "Epdg",
    "GraphEdge",
    "GraphNode",
    "NodeType",
    "extract_epdg",
    "extract_all_epdgs",
    "to_dot",
]
