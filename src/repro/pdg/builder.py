"""EPDG construction from a method AST (paper Section III-A).

The builder walks statements in source order while maintaining

* the *control parent*: the nearest enclosing ``Cond`` node, which is the
  only node a new node receives a ``Ctrl`` edge from (this yields exactly
  the non-transitive control edges the paper keeps after pruning);
* a *reaching-definitions* environment mapping each variable to the set of
  nodes that may have produced its current value, evaluated under the
  paper's static execution model — every condition is assumed true and
  every loop body runs exactly once (Bhattacharjee & Jamil), so loop
  back-edges and "condition may fail" edges are never generated.

``if``/``else`` and ``switch`` merge branch environments (a definition
from either branch survives), the one place where the linear model needs
a join.
"""

from __future__ import annotations

from sys import intern as _intern

from repro.errors import ReproError
from repro.java import ast
from repro.java.printer import print_expression
from repro.pdg.expressions import defined_variables, used_variables
from repro.pdg.negation import negate_condition
from repro.pdg.graph import EdgeType, Epdg, GraphNode, NodeType

_ReachingDefs = dict[str, frozenset[int]]

#: Hash-cons table for defines/uses sets.  MOOC cohorts are duplicate-heavy:
#: the same statements (and hence the same small variable sets) recur across
#: thousands of submissions, so sharing one frozenset per distinct value
#: keeps node construction cheap and lets set equality short-circuit on
#: identity in the matcher.  Variable-name sets are tiny and few, so the
#: table stays small even in a long-lived serve process.
_SET_TABLE: dict[frozenset[str], frozenset[str]] = {}


def _intern_set(value: frozenset[str]) -> frozenset[str]:
    interned = _SET_TABLE.get(value)
    if interned is None:
        _SET_TABLE[value] = value
        return value
    return interned


class _Builder:
    def __init__(self, method: ast.MethodDecl,
                 synthesize_else_conditions: bool = False):
        self._method = method
        self._graph = Epdg(method.name)
        self._synthesize_else = synthesize_else_conditions

    def build(self) -> Epdg:
        defs: _ReachingDefs = {}
        for parameter in self._method.parameters:
            node = self._new_node(
                NodeType.DECL,
                parameter.name,
                defines=frozenset({parameter.name}),
                uses=frozenset(),
                parent=None,
                defs=defs,
            )
            defs[parameter.name] = frozenset({node.node_id})
        self._statements(self._method.body.statements, None, defs)
        return self._graph

    # ------------------------------------------------------------------
    # node creation

    def _new_node(
        self,
        node_type: NodeType,
        content: str,
        defines: frozenset[str],
        uses: frozenset[str],
        parent: int | None,
        defs: _ReachingDefs,
    ) -> GraphNode:
        node = GraphNode(
            node_id=len(self._graph),
            type=node_type,
            # Hash-cons the label and variable sets: identical statements
            # across (and within) submissions share one string and one
            # frozenset instead of re-allocating per node.
            content=_intern(content),
            defines=_intern_set(defines),
            uses=_intern_set(uses),
        )
        graph = self._graph
        graph.add_node(node)
        node_id = node.node_id
        if parent is not None:
            graph.add_edge(parent, node_id, EdgeType.CTRL)
        # Single pass over the uses: edge order is irrelevant (the graph
        # stores edges in sets and sorts on read), so no sorting here.
        get_defs = defs.get
        for variable in uses:
            definitions = get_defs(variable)
            if definitions:
                for definition in definitions:
                    graph.add_edge(definition, node_id, EdgeType.DATA)
        if defines:
            reaching = frozenset((node_id,))
            for variable in defines:
                defs[variable] = reaching
        return node

    def _expression_node(
        self,
        expression: ast.Expression,
        parent: int | None,
        defs: _ReachingDefs,
        node_type: NodeType | None = None,
    ) -> GraphNode:
        """Create the node for a statement-level expression."""
        if node_type is None:
            if isinstance(expression, ast.Assignment) or (
                isinstance(expression, ast.Unary)
                and expression.operator in ("++", "--")
            ):
                node_type = NodeType.ASSIGN
            else:
                node_type = NodeType.CALL
        return self._new_node(
            node_type,
            print_expression(expression),
            defines=defined_variables(expression),
            uses=used_variables(expression),
            parent=parent,
            defs=defs,
        )

    # ------------------------------------------------------------------
    # statement walking

    def _statements(
        self,
        statements: list[ast.Statement],
        parent: int | None,
        defs: _ReachingDefs,
    ) -> None:
        for statement in statements:
            self._statement(statement, parent, defs)

    def _statement(
        self,
        node: ast.Statement,
        parent: int | None,
        defs: _ReachingDefs,
    ) -> None:
        if isinstance(node, ast.Block):
            self._statements(node.statements, parent, defs)
        elif isinstance(node, ast.LocalVarDecl):
            for declarator in node.declarators:
                if declarator.initializer is None:
                    # a bare `int x;` performs no operation; the defining
                    # node will be the first assignment to x
                    continue
                content = (
                    f"{declarator.name} = "
                    f"{print_expression(declarator.initializer)}"
                )
                self._new_node(
                    NodeType.ASSIGN,
                    content,
                    defines=frozenset({declarator.name}),
                    uses=used_variables(declarator.initializer),
                    parent=parent,
                    defs=defs,
                )
        elif isinstance(node, ast.ExpressionStatement):
            self._expression_node(node.expression, parent, defs)
        elif isinstance(node, ast.If):
            cond = self._cond_node(node.condition, parent, defs)
            then_defs = dict(defs)
            self._statement(node.then_branch, cond.node_id, then_defs)
            if node.else_branch is None:
                defs.clear()
                defs.update(then_defs)
            else:
                else_defs = dict(defs)
                else_parent = cond.node_id
                if self._synthesize_else:
                    # Section VII future work: the else branch hangs off
                    # its own Cond node carrying the negated condition,
                    # so patterns written for the positive form match
                    # either arm
                    negated = self._cond_node(
                        negate_condition(node.condition), parent, else_defs
                    )
                    else_parent = negated.node_id
                self._statement(node.else_branch, else_parent, else_defs)
                defs.clear()
                defs.update(_merge(then_defs, else_defs))
        elif isinstance(node, ast.While):
            cond = self._cond_node(node.condition, parent, defs)
            self._statement(node.body, cond.node_id, defs)
        elif isinstance(node, ast.DoWhile):
            # the body of a do-while always runs, so it is not
            # control-dependent on the condition; the condition node comes
            # after the body in the static execution order
            self._statement(node.body, parent, defs)
            self._cond_node(node.condition, parent, defs)
        elif isinstance(node, ast.For):
            self._statements(node.init, parent, defs)
            condition = node.condition
            if condition is None:
                condition_content = "true"
                cond = self._new_node(
                    NodeType.COND, condition_content,
                    defines=frozenset(), uses=frozenset(),
                    parent=parent, defs=defs,
                )
            else:
                cond = self._cond_node(condition, parent, defs)
            self._statement(node.body, cond.node_id, defs)
            for update in node.update:
                self._expression_node(update, cond.node_id, defs)
        elif isinstance(node, ast.ForEach):
            content = f"{node.name} : {print_expression(node.iterable)}"
            cond = self._new_node(
                NodeType.COND,
                content,
                defines=frozenset({node.name}),
                uses=used_variables(node.iterable),
                parent=parent,
                defs=defs,
            )
            self._statement(node.body, cond.node_id, defs)
        elif isinstance(node, ast.Break):
            self._new_node(
                NodeType.BREAK, "break",
                defines=frozenset(), uses=frozenset(),
                parent=parent, defs=defs,
            )
        elif isinstance(node, ast.Continue):
            # Definition 1 has no Continue type; we model `continue` as a
            # Break-typed node whose content disambiguates it
            self._new_node(
                NodeType.BREAK, "continue",
                defines=frozenset(), uses=frozenset(),
                parent=parent, defs=defs,
            )
        elif isinstance(node, ast.Return):
            content = (
                "return" if node.value is None
                else f"return {print_expression(node.value)}"
            )
            self._new_node(
                NodeType.RETURN,
                content,
                defines=frozenset(),
                uses=used_variables(node.value),
                parent=parent,
                defs=defs,
            )
        elif isinstance(node, ast.Switch):
            cond = self._cond_node(node.selector, parent, defs)
            branch_envs: list[_ReachingDefs] = []
            for case in node.cases:
                case_defs = dict(defs)
                self._statements(case.statements, cond.node_id, case_defs)
                branch_envs.append(case_defs)
            merged = dict(defs)
            for branch in branch_envs:
                merged = _merge(merged, branch)
            defs.clear()
            defs.update(merged)
        elif isinstance(node, ast.EmptyStatement):
            pass
        else:
            raise ReproError(
                f"cannot build EPDG for statement {type(node).__name__}"
            )

    def _cond_node(
        self,
        condition: ast.Expression,
        parent: int | None,
        defs: _ReachingDefs,
    ) -> GraphNode:
        return self._new_node(
            NodeType.COND,
            print_expression(condition),
            defines=defined_variables(condition),
            uses=used_variables(condition),
            parent=parent,
            defs=defs,
        )


def _merge(left: _ReachingDefs, right: _ReachingDefs) -> _ReachingDefs:
    merged: _ReachingDefs = dict(left)
    for variable, definitions in right.items():
        existing = merged.get(variable)
        if existing is None or existing is definitions:
            merged[variable] = definitions
        elif existing != definitions:
            merged[variable] = existing | definitions
    return merged


def extract_epdg(
    method: ast.MethodDecl, synthesize_else_conditions: bool = False
) -> Epdg:
    """Build the extended program dependence graph of one method.

    ``synthesize_else_conditions`` enables the Section VII extension:
    every else branch receives a synthetic ``Cond`` node carrying the
    negated condition (``if (i % 2 == 0) ... else ...`` also exposes
    ``i % 2 != 0``), letting positive-form patterns match either arm.
    """
    return _Builder(method, synthesize_else_conditions).build()


def extract_all_epdgs(
    unit: ast.CompilationUnit, synthesize_else_conditions: bool = False
) -> dict[str, Epdg]:
    """Build one EPDG per method in the submission (paper's ExtractEPDG).

    When a submission declares two methods with the same name (an
    overload), the later one wins — intro assignments in the corpus never
    overload, and Algorithm 2 matches methods by name.
    """
    return {
        m.name: extract_epdg(m, synthesize_else_conditions)
        for m in unit.methods()
    }
