"""Variable analysis of Java expressions for EPDG construction.

Distinguishes *variables* from method names, field names, and well-known
static classes so that graph nodes expose exactly the identifier sets the
matcher's variable mapping γ ranges over (``a.length`` mentions variable
``a``, not ``length``; ``Math.pow(x, i)`` mentions ``x`` and ``i``).
"""

from __future__ import annotations

from repro.java import ast

#: Identifiers treated as static class references, never as variables.
STATIC_CLASSES = frozenset(
    {"System", "Math", "Integer", "String", "Character", "Double",
     "Boolean", "Long", "Arrays", "this"}
)


_EMPTY: frozenset[str] = frozenset()


def used_variables(node: ast.Expression | None) -> frozenset[str]:
    """Variables *read* by an expression (memoized per AST node)."""
    if node is None:
        return _EMPTY
    try:
        return node._used_vars  # type: ignore[attr-defined]
    except AttributeError:
        result: set[str] = set()
        _collect_uses(node, result)
        frozen = frozenset(result) if result else _EMPTY
        node._used_vars = frozen  # type: ignore[attr-defined]
        return frozen


def _collect_uses(node: ast.Expression, result: set[str]) -> None:
    if isinstance(node, ast.Name):
        if node.identifier not in STATIC_CLASSES:
            result.add(node.identifier)
        return
    if isinstance(node, ast.FieldAccess):
        _collect_uses(node.target, result)
        return
    if isinstance(node, ast.MethodCall):
        if node.target is not None:
            _collect_uses(node.target, result)
        for argument in node.arguments:
            _collect_uses(argument, result)
        return
    if isinstance(node, ast.Assignment):
        # compound assignment reads the target as well
        if node.operator != "=":
            _collect_uses(node.target, result)
        elif isinstance(node.target, ast.ArrayAccess):
            # a[i] = v reads i (and the array reference a)
            _collect_uses(node.target, result)
        _collect_uses(node.value, result)
        return
    if isinstance(node, ast.Unary):
        _collect_uses(node.operand, result)
        return
    for child in node.children():
        if isinstance(child, ast.Expression):
            _collect_uses(child, result)


def defined_variables(node: ast.Expression) -> frozenset[str]:
    """Variables *written* by an expression.

    An assignment to ``a[i]`` defines ``a`` (the array variable holds a new
    state), matching how the paper's examples treat ``d[i - 1] = ...``.
    Memoized per AST node, like :func:`used_variables`.
    """
    try:
        return node._defined_vars  # type: ignore[attr-defined]
    except AttributeError:
        result: set[str] = set()
        _collect_defs(node, result)
        frozen = frozenset(result) if result else _EMPTY
        node._defined_vars = frozen  # type: ignore[attr-defined]
        return frozen


def _collect_defs(node: ast.Expression, result: set[str]) -> None:
    if isinstance(node, ast.Assignment):
        _collect_target(node.target, result)
        _collect_defs(node.value, result)
        return
    if isinstance(node, ast.Unary) and node.operator in ("++", "--"):
        _collect_target(node.operand, result)
        return
    for child in node.children():
        if isinstance(child, ast.Expression):
            _collect_defs(child, result)


def _collect_target(node: ast.Expression, result: set[str]) -> None:
    if isinstance(node, ast.Name):
        if node.identifier not in STATIC_CLASSES:
            result.add(node.identifier)
    elif isinstance(node, ast.ArrayAccess):
        _collect_target(node.array, result)
