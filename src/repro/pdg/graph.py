"""Graph model for extended program dependence graphs (Defs. 1-3).

The :class:`Epdg` maintains incremental indexes alongside the raw node
and edge stores so the matcher's hot queries never scan the whole graph:

* a **type bucket** per :class:`NodeType` (the search space Φ of
  Algorithm 1 is exactly a type bucket);
* a **content index** mapping canonical content strings to nodes
  (:meth:`Epdg.find_by_content` used to scan every node);
* **degree profiles** counting in/out edges per :class:`EdgeType` for
  every node, which the compiled search plans use to prune candidates
  that cannot possibly carry a pattern node's edges.

``nodes``/``edges`` return *cached immutable views* — the backtracking
matcher reads them inside its inner loop, and the previous
copy-per-access behaviour dominated small-pattern match time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property


class NodeType(enum.Enum):
    """Graph node types from Definition 1 (plus ``Untyped`` for patterns)."""

    ASSIGN = "Assign"
    BREAK = "Break"
    CALL = "Call"
    COND = "Cond"
    DECL = "Decl"
    RETURN = "Return"
    UNTYPED = "Untyped"

    def __str__(self) -> str:
        return self.value


class EdgeType(enum.Enum):
    """Graph edge types from Definition 2."""

    CTRL = "Ctrl"
    DATA = "Data"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class GraphNode:
    """A node ``v = (t_v, c)``: a typed Java expression in the submission.

    ``defines``/``uses`` cache the variable sets of the expression so the
    matcher and constraint checker never re-parse node content.
    """

    node_id: int
    type: NodeType
    content: str
    defines: frozenset[str] = frozenset()
    uses: frozenset[str] = frozenset()

    @cached_property
    def variables(self) -> frozenset[str]:
        """All variables mentioned by the node (definitions and uses).

        Cached: the matcher reads this inside its candidate-filter and
        γ-extension hot loops, and rebuilding the union froze a new set on
        every access.  ``cached_property`` stores the result in the
        instance ``__dict__``, which works on a frozen dataclass because it
        bypasses the frozen ``__setattr__``.
        """
        if not self.uses:
            return self.defines
        if not self.defines:
            return self.uses
        return self.defines | self.uses

    @property
    def name(self) -> str:
        """Display name, matching the paper's ``v0, v1, ...`` convention."""
        return f"v{self.node_id}"

    def __str__(self) -> str:
        return f"{self.name}[{self.type}] {self.content}"


@dataclass(frozen=True)
class GraphEdge:
    """An edge ``e = (v_s, v_t, t_e)`` between two graph nodes."""

    source: int
    target: int
    type: EdgeType

    def __str__(self) -> str:
        arrow = "->" if self.type is EdgeType.DATA else "=>"
        return f"v{self.source} {arrow} v{self.target} [{self.type}]"


#: Index positions inside a degree profile tuple.
_OUT_CTRL, _OUT_DATA, _IN_CTRL, _IN_DATA = range(4)


class Epdg:
    """An extended program dependence graph ``g = (V, E)`` for one method."""

    def __init__(self, method_name: str):
        self.method_name = method_name
        self._nodes: list[GraphNode] = []
        self._edges: set[GraphEdge] = set()
        self._out: dict[int, set[GraphEdge]] = {}
        self._in: dict[int, set[GraphEdge]] = {}
        # incremental indexes (see module docstring)
        self._by_type: dict[NodeType, list[GraphNode]] = {}
        self._by_content: dict[str, list[GraphNode]] = {}
        self._degrees: list[list[int]] = []  # [out_ctrl, out_data, in_ctrl, in_data]
        # cached immutable views, invalidated by mutation
        self._nodes_view: tuple[GraphNode, ...] | None = None
        self._edges_view: frozenset[GraphEdge] | None = None

    # ------------------------------------------------------------------
    # construction

    def add_node(self, node: GraphNode) -> GraphNode:
        if node.node_id != len(self._nodes):
            raise ValueError(
                f"node ids must be dense: expected {len(self._nodes)}, "
                f"got {node.node_id}"
            )
        self._nodes.append(node)
        self._out.setdefault(node.node_id, set())
        self._in.setdefault(node.node_id, set())
        self._by_type.setdefault(node.type, []).append(node)
        self._by_content.setdefault(node.content, []).append(node)
        self._degrees.append([0, 0, 0, 0])
        self._nodes_view = None
        return node

    def add_edge(self, source: int, target: int, edge_type: EdgeType) -> None:
        edge = GraphEdge(source, target, edge_type)
        if edge in self._edges:
            return
        if source >= len(self._nodes) or target >= len(self._nodes):
            raise ValueError(f"edge endpoints out of range: {edge}")
        self._edges.add(edge)
        self._out[source].add(edge)
        self._in[target].add(edge)
        out_slot = _OUT_CTRL if edge_type is EdgeType.CTRL else _OUT_DATA
        in_slot = _IN_CTRL if edge_type is EdgeType.CTRL else _IN_DATA
        self._degrees[source][out_slot] += 1
        self._degrees[target][in_slot] += 1
        self._edges_view = None

    # ------------------------------------------------------------------
    # queries

    @property
    def nodes(self) -> tuple[GraphNode, ...]:
        """All nodes in id order, as a cached immutable view."""
        if self._nodes_view is None:
            self._nodes_view = tuple(self._nodes)
        return self._nodes_view

    @property
    def edges(self) -> frozenset[GraphEdge]:
        """All edges, as a cached immutable view."""
        if self._edges_view is None:
            self._edges_view = frozenset(self._edges)
        return self._edges_view

    def node(self, node_id: int) -> GraphNode:
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def has_edge(self, source: int, target: int, edge_type: EdgeType) -> bool:
        return GraphEdge(source, target, edge_type) in self._edges

    def out_edges(self, node_id: int) -> set[GraphEdge]:
        return set(self._out.get(node_id, ()))

    def in_edges(self, node_id: int) -> set[GraphEdge]:
        return set(self._in.get(node_id, ()))

    def successors(self, node_id: int, edge_type: EdgeType | None = None) -> list[int]:
        return sorted(
            e.target
            for e in self._out.get(node_id, ())
            if edge_type is None or e.type is edge_type
        )

    def predecessors(self, node_id: int, edge_type: EdgeType | None = None) -> list[int]:
        return sorted(
            e.source
            for e in self._in.get(node_id, ())
            if edge_type is None or e.type is edge_type
        )

    def nodes_of_type(self, node_type: NodeType) -> list[GraphNode]:
        """All nodes of ``node_type``, in id order (indexed lookup)."""
        return list(self._by_type.get(node_type, ()))

    def find_by_content(self, content: str) -> list[GraphNode]:
        """All nodes whose canonical content equals ``content`` exactly."""
        return list(self._by_content.get(content, ()))

    def degree_profile(self, node_id: int) -> tuple[int, int, int, int]:
        """``(out_ctrl, out_data, in_ctrl, in_data)`` edge counts of a node.

        The compiled search plans compare these against a pattern node's
        edge requirements: a graph node with fewer edges of some
        direction/type than the pattern node demands can never complete
        an (injective) embedding, so Φ drops it up front.
        """
        return tuple(self._degrees[node_id])

    def out_degree(self, node_id: int, edge_type: EdgeType | None = None) -> int:
        profile = self._degrees[node_id]
        if edge_type is None:
            return profile[_OUT_CTRL] + profile[_OUT_DATA]
        return profile[_OUT_CTRL if edge_type is EdgeType.CTRL else _OUT_DATA]

    def in_degree(self, node_id: int, edge_type: EdgeType | None = None) -> int:
        profile = self._degrees[node_id]
        if edge_type is None:
            return profile[_IN_CTRL] + profile[_IN_DATA]
        return profile[_IN_CTRL if edge_type is EdgeType.CTRL else _IN_DATA]

    def __str__(self) -> str:
        lines = [f"EPDG of {self.method_name}: {len(self._nodes)} nodes, "
                 f"{len(self._edges)} edges"]
        for node in self._nodes:
            lines.append(f"  {node}")
        for edge in sorted(self._edges, key=lambda e: (e.source, e.target, e.type.value)):
            lines.append(f"  {edge}")
        return "\n".join(lines)
