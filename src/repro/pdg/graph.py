"""Graph model for extended program dependence graphs (Defs. 1-3)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NodeType(enum.Enum):
    """Graph node types from Definition 1 (plus ``Untyped`` for patterns)."""

    ASSIGN = "Assign"
    BREAK = "Break"
    CALL = "Call"
    COND = "Cond"
    DECL = "Decl"
    RETURN = "Return"
    UNTYPED = "Untyped"

    def __str__(self) -> str:
        return self.value


class EdgeType(enum.Enum):
    """Graph edge types from Definition 2."""

    CTRL = "Ctrl"
    DATA = "Data"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class GraphNode:
    """A node ``v = (t_v, c)``: a typed Java expression in the submission.

    ``defines``/``uses`` cache the variable sets of the expression so the
    matcher and constraint checker never re-parse node content.
    """

    node_id: int
    type: NodeType
    content: str
    defines: frozenset[str] = frozenset()
    uses: frozenset[str] = frozenset()

    @property
    def variables(self) -> frozenset[str]:
        """All variables mentioned by the node (definitions and uses)."""
        return self.defines | self.uses

    @property
    def name(self) -> str:
        """Display name, matching the paper's ``v0, v1, ...`` convention."""
        return f"v{self.node_id}"

    def __str__(self) -> str:
        return f"{self.name}[{self.type}] {self.content}"


@dataclass(frozen=True)
class GraphEdge:
    """An edge ``e = (v_s, v_t, t_e)`` between two graph nodes."""

    source: int
    target: int
    type: EdgeType

    def __str__(self) -> str:
        arrow = "->" if self.type is EdgeType.DATA else "=>"
        return f"v{self.source} {arrow} v{self.target} [{self.type}]"


class Epdg:
    """An extended program dependence graph ``g = (V, E)`` for one method."""

    def __init__(self, method_name: str):
        self.method_name = method_name
        self._nodes: list[GraphNode] = []
        self._edges: set[GraphEdge] = set()
        self._out: dict[int, set[GraphEdge]] = {}
        self._in: dict[int, set[GraphEdge]] = {}

    # ------------------------------------------------------------------
    # construction

    def add_node(self, node: GraphNode) -> GraphNode:
        if node.node_id != len(self._nodes):
            raise ValueError(
                f"node ids must be dense: expected {len(self._nodes)}, "
                f"got {node.node_id}"
            )
        self._nodes.append(node)
        self._out.setdefault(node.node_id, set())
        self._in.setdefault(node.node_id, set())
        return node

    def add_edge(self, source: int, target: int, edge_type: EdgeType) -> None:
        edge = GraphEdge(source, target, edge_type)
        if edge in self._edges:
            return
        if source >= len(self._nodes) or target >= len(self._nodes):
            raise ValueError(f"edge endpoints out of range: {edge}")
        self._edges.add(edge)
        self._out[source].add(edge)
        self._in[target].add(edge)

    # ------------------------------------------------------------------
    # queries

    @property
    def nodes(self) -> list[GraphNode]:
        return list(self._nodes)

    @property
    def edges(self) -> set[GraphEdge]:
        return set(self._edges)

    def node(self, node_id: int) -> GraphNode:
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def has_edge(self, source: int, target: int, edge_type: EdgeType) -> bool:
        return GraphEdge(source, target, edge_type) in self._edges

    def out_edges(self, node_id: int) -> set[GraphEdge]:
        return set(self._out.get(node_id, ()))

    def in_edges(self, node_id: int) -> set[GraphEdge]:
        return set(self._in.get(node_id, ()))

    def successors(self, node_id: int, edge_type: EdgeType | None = None) -> list[int]:
        return sorted(
            e.target
            for e in self._out.get(node_id, ())
            if edge_type is None or e.type is edge_type
        )

    def predecessors(self, node_id: int, edge_type: EdgeType | None = None) -> list[int]:
        return sorted(
            e.source
            for e in self._in.get(node_id, ())
            if edge_type is None or e.type is edge_type
        )

    def nodes_of_type(self, node_type: NodeType) -> list[GraphNode]:
        return [n for n in self._nodes if n.type is node_type]

    def find_by_content(self, content: str) -> list[GraphNode]:
        """All nodes whose canonical content equals ``content`` exactly."""
        return [n for n in self._nodes if n.content == content]

    def __str__(self) -> str:
        lines = [f"EPDG of {self.method_name}: {len(self._nodes)} nodes, "
                 f"{len(self._edges)} edges"]
        for node in self._nodes:
            lines.append(f"  {node}")
        for edge in sorted(self._edges, key=lambda e: (e.source, e.target, e.type.value)):
            lines.append(f"  {edge}")
        return "\n".join(lines)
