"""Condition negation — the paper's else-expression future work.

Section VII: "Our patterns will support else expressions, e.g., a
pattern to ensure accessing odd positions in a submission using
``if (i % 2 == 0) {...} else {...}`` will only work by computing the
functional equivalence, i.e., transforming else into
``if (i % 2 == 1)``."

:func:`negate_condition` computes the (simplified) negation of a
condition expression: comparison operators flip (``==`` ↔ ``!=``,
``<`` ↔ ``>=``...), double negations cancel, De Morgan distributes over
``&&``/``||``, and anything else is wrapped in ``!``.  The EPDG builder
uses it (when ``synthesize_else_conditions`` is on) to give each else
branch its own ``Cond`` node carrying the negated condition, so
patterns written for the positive form match either arm.
"""

from __future__ import annotations

import copy

from repro.java import ast

_FLIPPED = {
    "==": "!=", "!=": "==",
    "<": ">=", ">=": "<",
    ">": "<=", "<=": ">",
}


def negate_condition(condition: ast.Expression) -> ast.Expression:
    """The logical negation of ``condition``, simplified."""
    if isinstance(condition, ast.Unary) and condition.operator == "!":
        # !!c => c
        return copy.deepcopy(condition.operand)
    if isinstance(condition, ast.Literal) and condition.kind == "boolean":
        return ast.Literal(not condition.value, "boolean")
    if isinstance(condition, ast.Binary):
        if condition.operator in _FLIPPED:
            return ast.Binary(
                _FLIPPED[condition.operator],
                copy.deepcopy(condition.left),
                copy.deepcopy(condition.right),
            )
        if condition.operator == "&&":
            return ast.Binary(
                "||",
                negate_condition(condition.left),
                negate_condition(condition.right),
            )
        if condition.operator == "||":
            return ast.Binary(
                "&&",
                negate_condition(condition.left),
                negate_condition(condition.right),
            )
    return ast.Unary("!", copy.deepcopy(condition), prefix=True)
