"""Graphviz DOT export of EPDGs.

Solid arrows are ``Data`` edges and dashed arrows are ``Ctrl`` edges,
matching the paper's Figure 3 rendering.
"""

from __future__ import annotations

from repro.pdg.graph import EdgeType, Epdg


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def pattern_to_dot(pattern) -> str:
    """Render a pattern (Figures 4-6 style) as a Graphviz digraph.

    Nodes show the type plus the exact expression ``r``; an approximate
    expression ``r̂`` is appended on its own line when present.
    """
    lines = [f'digraph "{_escape(pattern.name)}" {{']
    lines.append("  node [shape=box, fontname=monospace];")
    for node in pattern.nodes:
        label = f"{node.name} [{node.type}]\\n{_escape(node.expr.source)}"
        if node.approx is not None:
            label += f"\\n~ {_escape(node.approx.source)}"
        lines.append(f'  {node.name} [label="{label}"];')
    for edge in pattern.edges:
        style = "dashed" if edge.type is EdgeType.CTRL else "solid"
        lines.append(
            f"  u{edge.source} -> u{edge.target} "
            f'[style={style}, label="{edge.type}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_dot(graph: Epdg) -> str:
    """Render ``graph`` as a Graphviz digraph string."""
    lines = [f'digraph "{_escape(graph.method_name)}" {{']
    lines.append("  node [shape=box, fontname=monospace];")
    for node in graph.nodes:
        label = f"{node.name} [{node.type}]\\n{_escape(node.content)}"
        lines.append(f'  {node.name} [label="{label}"];')
    for edge in sorted(
        graph.edges, key=lambda e: (e.source, e.target, e.type.value)
    ):
        style = "dashed" if edge.type is EdgeType.CTRL else "solid"
        lines.append(
            f"  v{edge.source} -> v{edge.target} "
            f'[style={style}, label="{edge.type}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
