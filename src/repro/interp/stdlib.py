"""Shims for the slice of the Java standard library that submissions use.

The interpreter resolves qualified calls (``System.out.println``,
``Math.pow``, ``Integer.parseInt``) and instance calls on runtime objects
(:class:`ScannerObject`, strings) through this module.  ``Scanner`` reads
from a :class:`VirtualFileSystem` so assignments such as the paper's
``rit-all-g-medals`` (which scans ``summer_olympics.txt``) run hermetically.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import JavaRuntimeError
from repro.interp.values import JavaArray, JavaChar, java_str, wrap_int


class VirtualFileSystem:
    """In-memory mapping of file names to text content.

    The substitute for the real files the paper's RIT assignments read.
    """

    def __init__(self, files: dict[str, str] | None = None) -> None:
        self._files = dict(files or {})

    def add(self, name: str, content: str) -> None:
        self._files[name] = content

    def read(self, name: str) -> str:
        if name not in self._files:
            raise JavaRuntimeError(f"FileNotFoundException: {name}")
        return self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files


class FileObject:
    """Runtime value of ``new File(name)``."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class ScannerObject:
    """Runtime value of ``new Scanner(...)``.

    Implements the token-oriented subset: ``next``, ``nextInt``,
    ``nextDouble``, ``nextLine``, ``hasNext*`` and ``close``.  Tokens are
    whitespace-separated, exactly like ``java.util.Scanner`` defaults.
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self.closed = False

    # -- token scanning -------------------------------------------------

    def _skip_ws(self) -> int:
        pos = self._pos
        while pos < len(self._text) and self._text[pos].isspace():
            pos += 1
        return pos

    def _peek_token(self) -> str | None:
        pos = self._skip_ws()
        if pos >= len(self._text):
            return None
        end = pos
        while end < len(self._text) and not self._text[end].isspace():
            end += 1
        return self._text[pos:end]

    def _take_token(self) -> str:
        pos = self._skip_ws()
        if pos >= len(self._text):
            raise JavaRuntimeError("NoSuchElementException")
        end = pos
        while end < len(self._text) and not self._text[end].isspace():
            end += 1
        self._pos = end
        return self._text[pos:end]

    # -- Scanner API ----------------------------------------------------

    def has_next(self) -> bool:
        return self._peek_token() is not None

    def has_next_int(self) -> bool:
        token = self._peek_token()
        if token is None:
            return False
        try:
            int(token)
            return True
        except ValueError:
            return False

    def has_next_line(self) -> bool:
        return self._pos < len(self._text)

    def next(self) -> str:
        return self._take_token()

    def next_int(self) -> int:
        token = self._take_token()
        try:
            return wrap_int(int(token))
        except ValueError:
            raise JavaRuntimeError(f"InputMismatchException: {token!r}") from None

    def next_double(self) -> float:
        token = self._take_token()
        try:
            return float(token)
        except ValueError:
            raise JavaRuntimeError(f"InputMismatchException: {token!r}") from None

    def next_line(self) -> str:
        if self._pos >= len(self._text):
            raise JavaRuntimeError("NoSuchElementException: No line found")
        end = self._text.find("\n", self._pos)
        if end == -1:
            line = self._text[self._pos:]
            self._pos = len(self._text)
        else:
            line = self._text[self._pos:end]
            self._pos = end + 1
        return line

    def close(self) -> None:
        self.closed = True


class StringBuilderObject:
    """Runtime value of ``new StringBuilder(...)``.

    Supports the fluent subset intro courses use: ``append`` (returns
    itself), ``reverse``, ``toString``, ``length``, ``charAt``,
    ``deleteCharAt``, ``insert``.
    """

    def __init__(self, initial: str = "") -> None:
        self._chars = list(initial)

    def call(self, name: str, args: list[Any]) -> Any:
        if name == "append":
            self._chars.extend(java_str(args[0]))
            return self
        if name == "reverse":
            self._chars.reverse()
            return self
        if name == "toString":
            return "".join(self._chars)
        if name == "length":
            return len(self._chars)
        if name == "charAt":
            index = args[0]
            if not 0 <= index < len(self._chars):
                raise JavaRuntimeError(
                    f"StringIndexOutOfBoundsException: index {index}, "
                    f"length {len(self._chars)}"
                )
            return JavaChar(self._chars[index])
        if name == "deleteCharAt":
            index = args[0]
            if not 0 <= index < len(self._chars):
                raise JavaRuntimeError(
                    f"StringIndexOutOfBoundsException: index {index}"
                )
            del self._chars[index]
            return self
        if name == "insert":
            index, value = args[0], java_str(args[1])
            if not 0 <= index <= len(self._chars):
                raise JavaRuntimeError(
                    f"StringIndexOutOfBoundsException: index {index}"
                )
            self._chars[index:index] = value
            return self
        if name == "setLength":
            length = args[0]
            current = "".join(self._chars)
            self._chars = list(current[:length].ljust(length, "\0"))
            return None
        raise JavaRuntimeError(f"StringBuilder has no method {name}")


_SCANNER_METHODS: dict[str, Callable[[ScannerObject], Any]] = {
    "hasNext": lambda s: s.has_next(),
    "hasNextInt": lambda s: s.has_next_int(),
    "hasNextDouble": lambda s: s.has_next_int() or s._peek_token() is not None,
    "hasNextLine": lambda s: s.has_next_line(),
    "next": lambda s: s.next(),
    "nextInt": lambda s: s.next_int(),
    "nextDouble": lambda s: s.next_double(),
    "nextLine": lambda s: s.next_line(),
    "close": lambda s: s.close(),
}


def call_scanner(scanner: ScannerObject, name: str, args: list[Any]) -> Any:
    """Dispatch an instance call on a Scanner object."""
    if name not in _SCANNER_METHODS:
        raise JavaRuntimeError(f"Scanner has no method {name}")
    if args:
        raise JavaRuntimeError(f"Scanner.{name} takes no arguments")
    return _SCANNER_METHODS[name](scanner)


def call_string(value: str, name: str, args: list[Any]) -> Any:
    """Dispatch an instance call on a Java String."""
    if name == "length":
        return len(value)
    if name == "charAt":
        index = args[0]
        if index < 0 or index >= len(value):
            raise JavaRuntimeError(
                f"StringIndexOutOfBoundsException: index {index}, length {len(value)}"
            )
        return JavaChar(value[index])
    if name == "equals":
        other = args[0]
        return isinstance(other, str) and value == other
    if name == "equalsIgnoreCase":
        other = args[0]
        return isinstance(other, str) and value.lower() == other.lower()
    if name == "substring":
        start = args[0]
        end = args[1] if len(args) > 1 else len(value)
        if start < 0 or end > len(value) or start > end:
            raise JavaRuntimeError(
                f"StringIndexOutOfBoundsException: begin {start}, end {end}, "
                f"length {len(value)}"
            )
        return value[start:end]
    if name == "indexOf":
        needle = args[0]
        if isinstance(needle, JavaChar):
            needle = needle.char
        return value.find(needle)
    if name == "contains":
        return args[0] in value
    if name == "isEmpty":
        return len(value) == 0
    if name == "toLowerCase":
        return value.lower()
    if name == "toUpperCase":
        return value.upper()
    if name == "trim":
        return value.strip()
    if name == "compareTo":
        other = args[0]
        return (value > other) - (value < other)
    if name == "concat":
        return value + args[0]
    if name == "startsWith":
        return value.startswith(args[0])
    if name == "endsWith":
        return value.endswith(args[0])
    if name == "split":
        parts = value.split(args[0])
        return JavaArray("String", parts)
    if name == "toCharArray":
        return JavaArray("char", [JavaChar(ch) for ch in value])
    if name == "hashCode":
        result = 0
        for ch in value:
            result = wrap_int(31 * result + ord(ch))
        return result
    raise JavaRuntimeError(f"String has no method {name}")


def _as_number(value: Any) -> int | float:
    if isinstance(value, JavaChar):
        return value.code
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    raise JavaRuntimeError(f"expected a number, got {value!r}")


def call_math(name: str, args: list[Any]) -> Any:
    """Dispatch a ``Math.*`` static call."""
    numbers = [_as_number(a) for a in args]
    if name == "pow":
        return float(numbers[0]) ** float(numbers[1])
    if name == "abs":
        value = numbers[0]
        if isinstance(value, int):
            return wrap_int(abs(value))
        return abs(value)
    if name == "sqrt":
        if numbers[0] < 0:
            return float("nan")
        return math.sqrt(numbers[0])
    if name == "max":
        result = max(numbers[0], numbers[1])
        return result
    if name == "min":
        return min(numbers[0], numbers[1])
    if name == "floor":
        return float(math.floor(numbers[0]))
    if name == "ceil":
        return float(math.ceil(numbers[0]))
    if name == "round":
        return int(math.floor(numbers[0] + 0.5))
    if name == "log10":
        if numbers[0] <= 0:
            raise JavaRuntimeError("Math.log10 of non-positive value")
        return math.log10(numbers[0])
    if name == "log":
        if numbers[0] <= 0:
            raise JavaRuntimeError("Math.log of non-positive value")
        return math.log(numbers[0])
    if name == "exp":
        return math.exp(numbers[0])
    if name == "random":
        # Deterministic by design: student assignments here never rely on
        # randomness, and determinism keeps functional tests reproducible.
        return 0.5
    raise JavaRuntimeError(f"Math has no method {name}")


def call_integer(name: str, args: list[Any]) -> Any:
    """Dispatch an ``Integer.*`` static call."""
    if name == "parseInt":
        try:
            return wrap_int(int(args[0]))
        except (TypeError, ValueError):
            raise JavaRuntimeError(
                f"NumberFormatException: {args[0]!r}"
            ) from None
    if name == "toString":
        return java_str(args[0])
    if name == "valueOf":
        return wrap_int(int(args[0]))
    if name == "MAX_VALUE":  # pragma: no cover - accessed as field normally
        return 2 ** 31 - 1
    raise JavaRuntimeError(f"Integer has no method {name}")


def call_string_static(name: str, args: list[Any]) -> str:
    """Dispatch a ``String.*`` static call."""
    if name == "valueOf":
        return java_str(args[0])
    raise JavaRuntimeError(f"String has no static method {name}")


def call_character(name: str, args: list[Any]) -> Any:
    """Dispatch a ``Character.*`` static call."""
    char = args[0]
    if isinstance(char, JavaChar):
        glyph = char.char
    else:
        glyph = chr(_as_number(char))
    if name == "isDigit":
        return glyph.isdigit()
    if name == "isLetter":
        return glyph.isalpha()
    if name == "getNumericValue":
        return int(glyph) if glyph.isdigit() else -1
    if name == "toUpperCase":
        return JavaChar(glyph.upper())
    if name == "toLowerCase":
        return JavaChar(glyph.lower())
    raise JavaRuntimeError(f"Character has no method {name}")
