"""Execution tracing: per-variable value histories and cost counters.

The CLARA baseline (Gulwani et al.) compares *variable traces* between
submissions; this module records them while the interpreter runs.  Stdout
is modelled as a pseudo-variable named ``out`` — exactly the trick the
paper credits CLARA with ("CLARA considers the standard output as another
variable in the variable traces").

:class:`CostCounters` is the second observation channel: the compiled
runtime (:mod:`repro.interp.compiler`) tallies steps, per-loop iteration
counts, method calls, and allocations as a near-free byproduct of
execution, so performance-problem diagnostics (Gulwani, Radiček &
Zuleger) can fit cost shapes across a functional-test input ladder
without a separate profiled run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class TraceEvent:
    """One recorded state change: variable ``name`` took ``value``."""

    name: str
    value: object
    method: str


@dataclass(frozen=True)
class CostCounters:
    """Execution cost of one run, recorded by the compiled runtime.

    ``steps``
        Interpreter steps consumed (statements + loop iterations), the
        same count the step budget is charged against.
    ``loop_iterations``
        Iterations per loop, keyed by a stable compile-time loop id of
        the form ``method:kind@ordinal`` (e.g. ``f:for@0``).  Every loop
        in the program appears, including ones that never ran.
    ``calls``
        Java-level method invocations, including the entry call.
    ``allocations``
        Arrays and objects created by ``new`` expressions and array
        initializers.
    """

    steps: int
    calls: int
    allocations: int
    loop_iterations: dict[str, int]

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-friendly view."""
        return {
            "steps": self.steps,
            "calls": self.calls,
            "allocations": self.allocations,
            "loop_iterations": dict(self.loop_iterations),
        }


def _snapshot(value: Any) -> Any:
    """Deep-copy mutable runtime values so later mutation can't alias."""
    # local import keeps this module import-light for the values layer
    from repro.interp.values import JavaArray, JavaChar

    if isinstance(value, JavaArray):
        return tuple(_snapshot(v) for v in value.elements)
    if isinstance(value, JavaChar):
        return value.char
    return value


class Tracer:
    """Collects :class:`TraceEvent` records during one execution."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def on_assign(self, method: str, name: str, value: Any) -> None:
        self.events.append(TraceEvent(name, _snapshot(value), method))

    def on_output(self, method: str, text: str) -> None:
        self.events.append(TraceEvent("out", text, method))

    def variable_trace(self, name: str) -> list[Any]:
        """The ordered sequence of values ``name`` took."""
        return [e.value for e in self.events if e.name == name]

    def variables(self) -> list[str]:
        """All traced variable names in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.name, None)
        return list(seen)

    def as_mapping(self) -> dict[str, list[Any]]:
        """Full trace as ``{variable: [values...]}``."""
        return {name: self.variable_trace(name) for name in self.variables()}
