"""Execution tracing: per-variable value histories.

The CLARA baseline (Gulwani et al.) compares *variable traces* between
submissions; this module records them while the interpreter runs.  Stdout
is modelled as a pseudo-variable named ``out`` — exactly the trick the
paper credits CLARA with ("CLARA considers the standard output as another
variable in the variable traces").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interp.values import JavaArray, JavaChar


@dataclass(frozen=True)
class TraceEvent:
    """One recorded state change: variable ``name`` took ``value``."""

    name: str
    value: object
    method: str


def _snapshot(value):
    """Deep-copy mutable runtime values so later mutation can't alias."""
    if isinstance(value, JavaArray):
        return tuple(_snapshot(v) for v in value.elements)
    if isinstance(value, JavaChar):
        return value.char
    return value


class Tracer:
    """Collects :class:`TraceEvent` records during one execution."""

    def __init__(self):
        self.events: list[TraceEvent] = []

    def on_assign(self, method: str, name: str, value) -> None:
        self.events.append(TraceEvent(name, _snapshot(value), method))

    def on_output(self, method: str, text: str) -> None:
        self.events.append(TraceEvent("out", text, method))

    def variable_trace(self, name: str) -> list:
        """The ordered sequence of values ``name`` took."""
        return [e.value for e in self.events if e.name == name]

    def variables(self) -> list[str]:
        """All traced variable names in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.name, None)
        return list(seen)

    def as_mapping(self) -> dict[str, list]:
        """Full trace as ``{variable: [values...]}``."""
        return {name: self.variable_trace(name) for name in self.variables()}
