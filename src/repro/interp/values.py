"""Java value semantics: wrapping ints, arrays, and value formatting.

Python integers are unbounded, so every arithmetic result that Java would
store in an ``int`` is passed through :func:`wrap_int` to reproduce 32-bit
two's-complement wraparound.  Division and remainder use Java semantics
(truncation toward zero; remainder takes the dividend's sign), which differ
from Python's floor-division for negative operands — and several of the
paper's assignments (digit reversal, palindromes) exercise exactly those
cases.
"""

from __future__ import annotations

from typing import Any

from repro.errors import JavaRuntimeError

INT_MIN = -(2 ** 31)
INT_MAX = 2 ** 31 - 1
LONG_MIN = -(2 ** 63)
LONG_MAX = 2 ** 63 - 1

#: Default values per element type, as the JVM zero-initializes arrays.
DEFAULT_VALUES: dict[str, Any] = {
    "int": 0, "long": 0, "short": 0, "byte": 0,
    "double": 0.0, "float": 0.0,
    "boolean": False, "char": "\0",
    "String": None,
}


def wrap_int(value: int) -> int:
    """Wrap ``value`` into Java's 32-bit signed integer range."""
    return (value - INT_MIN) % (2 ** 32) + INT_MIN


def wrap_long(value: int) -> int:
    """Wrap ``value`` into Java's 64-bit signed integer range."""
    return (value - LONG_MIN) % (2 ** 64) + LONG_MIN


def java_div(left: int, right: int) -> int:
    """Integer division truncating toward zero (Java ``/``)."""
    if right == 0:
        raise JavaRuntimeError("ArithmeticException: / by zero")
    quotient = abs(left) // abs(right)
    if (left < 0) != (right < 0):
        quotient = -quotient
    return wrap_int(quotient)


def java_rem(left: int, right: int) -> int:
    """Integer remainder with the dividend's sign (Java ``%``)."""
    if right == 0:
        raise JavaRuntimeError("ArithmeticException: % by zero")
    remainder = abs(left) % abs(right)
    if left < 0:
        remainder = -remainder
    return wrap_int(remainder)


class JavaArray:
    """A fixed-length, type-tagged Java array with bounds checking."""

    __slots__ = ("element_type", "elements")

    def __init__(self, element_type: str, elements: list[Any]) -> None:
        self.element_type = element_type
        self.elements = elements

    @classmethod
    def of_length(cls, element_type: str, length: int) -> "JavaArray":
        if length < 0:
            raise JavaRuntimeError(
                f"NegativeArraySizeException: {length}"
            )
        if element_type == "char":
            return cls(element_type, [JavaChar("\0") for _ in range(length)])
        default = DEFAULT_VALUES.get(element_type)
        return cls(element_type, [default] * length)

    @property
    def length(self) -> int:
        return len(self.elements)

    def get(self, index: int) -> Any:
        self._check(index)
        return self.elements[index]

    def set(self, index: int, value: Any) -> None:
        self._check(index)
        self.elements[index] = value

    def _check(self, index: int) -> None:
        if not isinstance(index, int) or isinstance(index, bool):
            raise JavaRuntimeError(f"array index must be int, got {index!r}")
        if index < 0 or index >= len(self.elements):
            raise JavaRuntimeError(
                "ArrayIndexOutOfBoundsException: "
                f"Index {index} out of bounds for length {len(self.elements)}"
            )

    def __eq__(self, other: object) -> bool:
        return self is other  # Java reference equality

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JavaArray({self.element_type}, {self.elements!r})"


class JavaChar:
    """A Java ``char`` value.

    Kept distinct from Python ``str`` (which models ``String``) so that
    arithmetic promotes chars to their code points — ``s.charAt(i) - '0'``
    must evaluate to an int — while string concatenation keeps the glyph.
    """

    __slots__ = ("char",)

    def __init__(self, char: str) -> None:
        self.char = char

    @property
    def code(self) -> int:
        return ord(self.char)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, JavaChar):
            return self.char == other.char
        if isinstance(other, int) and not isinstance(other, bool):
            return self.code == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.char)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JavaChar({self.char!r})"


def java_str(value: Any) -> str:
    """Format a value the way Java's string conversion would.

    Used for ``System.out`` printing and ``String`` concatenation:
    booleans print as ``true``/``false``, doubles always carry a decimal
    point (``1.0``), and arrays print as an identity-ish placeholder.
    """
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "Infinity" if value > 0 else "-Infinity"
        if value == int(value) and abs(value) < 1e16:
            return f"{value:.1f}"
        return repr(value)
    if isinstance(value, JavaArray):
        return f"[{value.element_type}@{id(value) & 0xFFFFFF:x}"
    if isinstance(value, JavaChar):
        return value.char
    return str(value)


def numeric_value(value: Any) -> int | float | None:
    """The numeric view of a value, or ``None`` if it has none.

    Chars promote to their code points; booleans and strings are not
    numeric in Java arithmetic.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, JavaChar):
        return value.code
    return None
