"""Execution facade over the closure-compiled runtime.

Historically this module *was* the interpreter — a tree-walker that
re-dispatched on AST node types for every step.  The execution engine now
lives in :mod:`repro.interp.compiler`, which lowers each parsed method
once into nested Python closures (slot-indexed frames, sentinel-return
control flow, fused statement chains, specialized expression closures)
and caches the compiled program per unique source.  This module keeps
the stable public surface — :class:`Interpreter`, :class:`ExecutionResult`,
:func:`run_method` — unchanged for callers, plus two additions: a
``cache_key`` to share compiled programs across separate parses of the
same source, and :class:`~repro.interp.tracing.CostCounters` on every
result.

The original tree-walker survives verbatim as
``benchmarks/_interp_reference.py``; the differential tests run both
engines and require byte-identical outcomes, stdout, traces, error
text, and step counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import BudgetExceededError
from repro.interp import stdlib
from repro.interp.compiler import CompiledProgram, Runtime, compile_unit, cost_of
from repro.interp.tracing import CostCounters, Tracer
from repro.java import ast

DEFAULT_STEP_BUDGET = 1_000_000


@dataclass
class ExecutionResult:
    """Outcome of running one method: stdout, return value, step count."""

    stdout: str
    return_value: object
    steps: int
    tracer: Tracer | None = None
    #: Execution-cost profile of the run (steps, per-loop iterations,
    #: calls, allocations) — a free byproduct of compiled execution.
    cost: CostCounters | None = None


class Interpreter:
    """Executes methods of a parsed submission (compiled on construction).

    Parameters
    ----------
    unit:
        The parsed submission whose methods may call each other.
    files:
        Virtual filesystem served to ``new Scanner(new File(name))``.
    stdin:
        Text served to ``new Scanner(System.in)``.
    step_budget:
        Maximum statements/iterations before the run is declared
        non-terminating.
    tracer:
        Optional :class:`Tracer` receiving assignment/output events.
        When ``None``, the compiled runtime skips trace recording (and
        its deep-copy snapshots) entirely.
    cache_key:
        Optional content key — conventionally the submission's source
        text — for the module-level compiled-program cache, so repeated
        construction over duplicate sources compiles once.
    """

    def __init__(
        self,
        unit: ast.CompilationUnit,
        files: stdlib.VirtualFileSystem | dict[str, str] | None = None,
        stdin: str = "",
        step_budget: int = DEFAULT_STEP_BUDGET,
        tracer: Tracer | None = None,
        cache_key: str | None = None,
    ) -> None:
        self._program: CompiledProgram = compile_unit(unit, cache_key)
        if isinstance(files, dict):
            files = stdlib.VirtualFileSystem(files)
        self._files = files or stdlib.VirtualFileSystem()
        self._stdin = stdin
        self._budget = step_budget
        self._tracer = tracer
        self._last_runtime: Runtime | None = None

    # ------------------------------------------------------------------
    # public API

    def run(self, method_name: str, arguments: list[Any]) -> ExecutionResult:
        """Run ``method_name`` with ``arguments`` and collect the result."""
        runtime = Runtime(
            budget=self._budget,
            files=self._files,
            stdin=self._stdin,
            tracer=self._tracer,
            loop_count=len(self._program.loop_ids),
        )
        self._last_runtime = runtime
        try:
            value = self._program.invoke(
                method_name, list(arguments), runtime
            )
        except RecursionError:
            # belt-and-braces: the Java-level depth cap should fire first
            raise BudgetExceededError(
                "StackOverflowError: interpreter recursion limit"
            ) from None
        return ExecutionResult(
            stdout="".join(runtime.out),
            return_value=value,
            steps=runtime.steps,
            tracer=self._tracer,
            cost=cost_of(self._program, runtime),
        )

    @property
    def stdout(self) -> str:
        """Output of the latest run so far (partial if it raised)."""
        if self._last_runtime is None:
            return ""
        return "".join(self._last_runtime.out)


def run_method(
    unit: ast.CompilationUnit,
    method_name: str,
    arguments: list[Any],
    files: dict[str, str] | None = None,
    stdin: str = "",
    step_budget: int = DEFAULT_STEP_BUDGET,
    trace: bool = False,
    cache_key: str | None = None,
) -> ExecutionResult:
    """Convenience wrapper: build an interpreter and run one method."""
    tracer = Tracer() if trace else None
    interpreter = Interpreter(
        unit, files=files, stdin=stdin, step_budget=step_budget,
        tracer=tracer, cache_key=cache_key,
    )
    return interpreter.run(method_name, arguments)
