"""Closure-compiled interpreter for the Java subset.

This is the substitute for running student submissions on a JVM: the
functional-testing harness (paper Table I, column ``T``) executes
submissions here, and the CLARA baseline collects its variable traces from
the interpreter's tracing hooks.

Each parsed method is lowered once by :mod:`repro.interp.compiler` into
nested Python closures (slot-indexed frames, sentinel-return control
flow, fused statement chains) and cached per unique source, so
campaign-scale re-execution pays compilation once per distinct program.
Execution cost (steps, per-loop iterations, calls, allocations) is
recorded as :class:`CostCounters` on every result.

Key behaviours mirrored from Java:

* 32-bit wrapping ``int`` arithmetic, truncating division, Java ``%`` sign;
* ``String`` concatenation with Java-style value formatting;
* ``System.out.print``/``println`` captured into an output buffer;
* ``Scanner`` over ``System.in`` or a simulated file (virtual filesystem);
* runtime errors (division by zero, array bounds) surface as
  :class:`~repro.errors.JavaRuntimeError`;
* a step budget turns non-termination into
  :class:`~repro.errors.BudgetExceededError`.
"""

from repro.interp.compiler import (
    clear_program_cache,
    compile_unit,
    program_cache_stats,
)
from repro.interp.interpreter import ExecutionResult, Interpreter, run_method
from repro.interp.tracing import CostCounters, TraceEvent, Tracer
from repro.interp.values import JavaArray, java_str

__all__ = [
    "ExecutionResult",
    "Interpreter",
    "run_method",
    "CostCounters",
    "TraceEvent",
    "Tracer",
    "JavaArray",
    "java_str",
    "compile_unit",
    "program_cache_stats",
    "clear_program_cache",
]
