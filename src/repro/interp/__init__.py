"""Tree-walking interpreter for the Java subset.

This is the substitute for running student submissions on a JVM: the
functional-testing harness (paper Table I, column ``T``) executes
submissions here, and the CLARA baseline collects its variable traces from
the interpreter's tracing hooks.

Key behaviours mirrored from Java:

* 32-bit wrapping ``int`` arithmetic, truncating division, Java ``%`` sign;
* ``String`` concatenation with Java-style value formatting;
* ``System.out.print``/``println`` captured into an output buffer;
* ``Scanner`` over ``System.in`` or a simulated file (virtual filesystem);
* runtime errors (division by zero, array bounds) surface as
  :class:`~repro.errors.JavaRuntimeError`;
* a step budget turns non-termination into
  :class:`~repro.errors.BudgetExceededError`.
"""

from repro.interp.interpreter import ExecutionResult, Interpreter, run_method
from repro.interp.tracing import TraceEvent, Tracer
from repro.interp.values import JavaArray, java_str

__all__ = [
    "ExecutionResult",
    "Interpreter",
    "run_method",
    "TraceEvent",
    "Tracer",
    "JavaArray",
    "java_str",
]
