"""Closure compiler: the Java-subset AST lowered to Python closures.

One-time compilation replaces the per-step ``isinstance`` dispatch of the
original tree-walker: every statement becomes a closure ``(frame, runtime)
-> signal`` and every expression a closure ``(frame, runtime) -> value``,
built once per parsed submission and reused across every test, trace, and
re-verification run.  The lowering applies, in order of payoff:

* **slot frames** — lexical scoping is resolved at compile time into flat
  list indices, so a variable read is ``frame[3]`` instead of a runtime
  scope-chain walk;
* **sentinel control flow** — ``break``/``continue``/``return`` return
  sentinel objects up the statement chain instead of raising and
  catching Python exceptions;
* **fused statement chains** — runs of simple statements bulk-charge
  their step cost at the chain head (with an exact per-statement slow
  path when the budget is nearly exhausted), removing the per-statement
  budget check from hot loop bodies;
* **specialized expressions** — per-operator closures with ``int``/
  ``str`` fast paths, constant folding for literal operands, and direct
  bindings for ``System.out`` and the static stdlib classes.

Behavioral fidelity is the contract: outcomes, stdout, traces, error
text, and step counts must be byte-identical to the vendored
tree-walking reference (``benchmarks/_interp_reference.py``), which the
differential tests enforce.  Every fast path falls back to the shared
slow helpers (:func:`_binary_value` and friends) that replicate the
tree-walker line for line, so a fast path can only ever shortcut a case
whose result is already fixed.

Compiled programs are cached two ways: a memo attribute on the
:class:`~repro.java.ast.CompilationUnit` itself (same parse ⇒ same
program) and a source-keyed bounded cache mirroring the PR-4 frontend
cache, so duplicate-heavy cohorts and repair re-verification compile
each unique source once.  Cache traffic surfaces as
``interp.compile_hits`` / ``interp.compile_misses`` via
:func:`repro.instrumentation.count`.

Execution cost (steps, per-loop iteration counts, calls, allocations) is
tallied on the :class:`Runtime` as a near-free byproduct and exposed as
:class:`~repro.interp.tracing.CostCounters`.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable

from repro.errors import BudgetExceededError, JavaRuntimeError
from repro.instrumentation import count
from repro.interp import stdlib
from repro.interp.tracing import CostCounters, Tracer
from repro.interp.values import (
    JavaArray,
    JavaChar,
    java_div,
    java_rem,
    java_str,
    numeric_value,
    wrap_int,
)
from repro.java import ast

#: A method frame: one flat list indexed by compile-time slot numbers.
Frame = list[Any]
StmtFn = Callable[["Frame", "Runtime"], Any]
ExprFn = Callable[["Frame", "Runtime"], Any]

_INT_MIN = -(2 ** 31)
_INT_MAX = 2 ** 31 - 1

# Java-level frames, counted by the compiled runtime itself (satellite:
# no reliance on CPython frame-depth headroom for the *accounting*; the
# RecursionError belt-and-braces in Interpreter.run stays as a backstop).
_MAX_CALL_DEPTH = 100


class _Sentinel:
    """Interned control-flow / undefined-slot marker."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.label}>"


#: Slot value before its declaration has executed on this code path.
_UNDEF = _Sentinel("undef")
#: Statement-closure return signals (replacing the tree-walker's
#: ``_BreakSignal``/``_ContinueSignal``/``_ReturnSignal`` exceptions).
_BREAK = _Sentinel("break")
_CONTINUE = _Sentinel("continue")
_RETURN = _Sentinel("return")


class _BreakSignal(Exception):
    """A ``break`` escaping the enclosing method (tree-walker fidelity)."""


class _ContinueSignal(Exception):
    """A ``continue`` escaping the enclosing method."""


class _ClassRef:
    """Sentinel for a static class reference (``Math``, ``Integer``...)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class _SystemOut:
    """Sentinel for the ``System.out`` stream object."""


_SYSTEM_OUT = _SystemOut()
_STATIC_CLASSES = frozenset({"Math", "Integer", "String", "Character", "System"})

#: Static field table, consulted for ``Name.field`` targets *before* any
#: local lookup — exactly like the tree-walker's ``_eval_field``.
_STATIC_FIELDS: dict[tuple[str, str], Any] = {
    ("System", "out"): _SYSTEM_OUT,
    ("System", "in"): "<stdin>",
    ("Integer", "MAX_VALUE"): 2 ** 31 - 1,
    ("Integer", "MIN_VALUE"): -(2 ** 31),
    ("Math", "PI"): math.pi,
    ("Math", "E"): math.e,
}


class Runtime:
    """Mutable per-run state shared by every closure of one execution."""

    __slots__ = (
        "budget", "steps", "out", "tracer", "files", "stdin",
        "depth", "method", "retval", "calls", "allocations", "loop_iters",
    )

    def __init__(
        self,
        budget: int,
        files: stdlib.VirtualFileSystem,
        stdin: str,
        tracer: Tracer | None,
        loop_count: int,
    ) -> None:
        self.budget = budget
        self.steps = 0
        self.out: list[str] = []
        self.tracer = tracer
        self.files = files
        self.stdin = stdin
        self.depth = 0
        self.method = ""
        self.retval: Any = None
        self.calls = 0
        self.allocations = 0
        self.loop_iters = [0] * loop_count


def _raise_budget(budget: int) -> Any:
    raise BudgetExceededError(
        f"step budget of {budget} exceeded (non-terminating?)"
    )


def _raise_condition(value: Any) -> Any:
    raise JavaRuntimeError(
        f"condition must be boolean, got {java_str(value)}"
    )


def _java_equals(left: Any, right: Any) -> bool:
    left_number = numeric_value(left)
    right_number = numeric_value(right)
    if left_number is not None and right_number is not None:
        return left_number == right_number
    # Strings compare by value: models the common student assumption
    # (and constant-pool interning) without a full reference model.
    return bool(left == right)


def _int_index(value: Any) -> int:
    number = numeric_value(value)
    if not isinstance(number, int):
        raise JavaRuntimeError(f"array index must be int, got {java_str(value)}")
    return number


def _two_ints(operator: str, left: Any, right: Any) -> tuple[int, int]:
    left_number = numeric_value(left)
    right_number = numeric_value(right)
    if not isinstance(left_number, int) or not isinstance(right_number, int):
        raise JavaRuntimeError(f"{operator} requires integers")
    return left_number, right_number


def _binary_value(operator: str, left: Any, right: Any) -> Any:
    """Full binary-operator semantics, line for line the tree-walker's."""
    if operator == "+" and (isinstance(left, str) or isinstance(right, str)):
        return java_str(left) + java_str(right)
    if operator == "==":
        return _java_equals(left, right)
    if operator == "!=":
        return not _java_equals(left, right)
    if operator in ("&", "|", "^"):
        if isinstance(left, bool) and isinstance(right, bool):
            if operator == "&":
                return left and right
            if operator == "|":
                return left or right
            return left != right
        left_number, right_number = _two_ints(operator, left, right)
        if operator == "&":
            return wrap_int(left_number & right_number)
        if operator == "|":
            return wrap_int(left_number | right_number)
        return wrap_int(left_number ^ right_number)
    if operator in ("<<", ">>", ">>>"):
        left_number, right_number = _two_ints(operator, left, right)
        shift = right_number & 31
        if operator == "<<":
            return wrap_int(left_number << shift)
        if operator == ">>":
            return wrap_int(left_number >> shift)
        return wrap_int((left_number & 0xFFFFFFFF) >> shift)
    left_num = numeric_value(left)
    right_num = numeric_value(right)
    if left_num is None or right_num is None:
        raise JavaRuntimeError(
            f"cannot apply {operator} to "
            f"{java_str(left)} and {java_str(right)}"
        )
    if operator == "<":
        return left_num < right_num
    if operator == "<=":
        return left_num <= right_num
    if operator == ">":
        return left_num > right_num
    if operator == ">=":
        return left_num >= right_num
    both_int = isinstance(left_num, int) and isinstance(right_num, int)
    if operator == "+":
        result = left_num + right_num
    elif operator == "-":
        result = left_num - right_num
    elif operator == "*":
        result = left_num * right_num
    elif operator == "/":
        if both_int:
            return java_div(left_num, right_num)
        if right_num == 0:
            if left_num == 0:
                return float("nan")
            return math.copysign(float("inf"), left_num)
        return left_num / right_num
    elif operator == "%":
        if both_int:
            return java_rem(left_num, right_num)
        if right_num == 0:
            return float("nan")
        return math.fmod(left_num, right_num)
    else:
        raise JavaRuntimeError(f"unknown operator {operator}")
    return wrap_int(result) if both_int else float(result)


def _seq_closure(units: list[StmtFn]) -> StmtFn:
    """A statement sequence, unrolled for the short common cases."""
    if not units:
        def empty(F: Frame, R: Runtime) -> Any:
            return None

        return empty
    if len(units) == 1:
        return units[0]
    if len(units) == 2:
        u1, u2 = units

        def seq2(F: Frame, R: Runtime) -> Any:
            signal = u1(F, R)
            if signal is not None:
                return signal
            return u2(F, R)

        return seq2
    if len(units) == 3:
        v1, v2, v3 = units

        def seq3(F: Frame, R: Runtime) -> Any:
            signal = v1(F, R)
            if signal is not None:
                return signal
            signal = v2(F, R)
            if signal is not None:
                return signal
            return v3(F, R)

        return seq3
    sequence = tuple(units)

    def seq(F: Frame, R: Runtime) -> Any:
        for unit in sequence:
            signal = unit(F, R)
            if signal is not None:
                return signal
        return None

    return seq


def _default_value(type_name: str) -> Any:
    if type_name in ("int", "long", "short", "byte"):
        return 0
    if type_name in ("double", "float"):
        return 0.0
    if type_name == "boolean":
        return False
    if type_name == "char":
        return JavaChar("\0")
    return None


def _make_array(element: str, lengths: list[int], dims: int) -> Any:
    if not lengths:
        return None
    if len(lengths) == 1:
        if dims > 1:
            return JavaArray("array", [None] * lengths[0])
        return JavaArray.of_length(element, lengths[0])
    return JavaArray(
        "array",
        [_make_array(element, lengths[1:], dims - 1) for _ in range(lengths[0])],
    )


def _emit(R: Runtime, method: str, text: str) -> None:
    R.out.append(text)
    tracer = R.tracer
    if tracer is not None:
        tracer.on_output(method, text)


def _print_call(
    R: Runtime, method: str, name: str, arguments: list[Any]
) -> Any:
    """Dynamic ``System.out`` dispatch (aliased stream objects)."""
    if name == "println":
        text = java_str(arguments[0]) if arguments else ""
        _emit(R, method, text + "\n")
        return None
    if name == "print":
        _emit(R, method, java_str(arguments[0]))
        return None
    if name == "printf":
        template = arguments[0]
        values = [
            v.char if isinstance(v, JavaChar) else v for v in arguments[1:]
        ]
        try:
            _emit(R, method, template % tuple(values))
        except (TypeError, ValueError) as error:
            raise JavaRuntimeError(f"IllegalFormatException: {error}")
        return None
    raise JavaRuntimeError(f"System.out has no method {name}")


def _call_class_ref(
    R: Runtime, method: str, ref: _ClassRef, name: str, arguments: list[Any]
) -> Any:
    if ref.name == "Math":
        return stdlib.call_math(name, arguments)
    if ref.name == "Integer":
        return stdlib.call_integer(name, arguments)
    if ref.name == "String":
        return stdlib.call_string_static(name, arguments)
    if ref.name == "Character":
        return stdlib.call_character(name, arguments)
    raise JavaRuntimeError(f"cannot call {name} on {java_str(ref)}")


def _dispatch_call(
    R: Runtime, method: str, target: Any, name: str, arguments: list[Any]
) -> Any:
    """Instance-call dispatch for dynamically-typed targets."""
    if isinstance(target, str):
        return stdlib.call_string(target, name, arguments)
    if isinstance(target, stdlib.ScannerObject):
        return stdlib.call_scanner(target, name, arguments)
    if isinstance(target, stdlib.StringBuilderObject):
        return target.call(name, arguments)
    if isinstance(target, _SystemOut):
        return _print_call(R, method, name, arguments)
    if isinstance(target, _ClassRef):
        return _call_class_ref(R, method, target, name, arguments)
    raise JavaRuntimeError(f"cannot call {name} on {java_str(target)}")


# ----------------------------------------------------------------------
# compiled program objects


class CompiledMethod:
    """One method lowered to a closure tree plus its frame layout."""

    __slots__ = ("name", "param_names", "nslots", "body")

    def __init__(self, name: str, param_names: tuple[str, ...]) -> None:
        self.name = name
        self.param_names = param_names
        self.nslots = 0
        # placeholder body; _MethodCompiler fills it in (two-phase so
        # call sites can bind the CompiledMethod before bodies exist)
        self.body: StmtFn = lambda F, R: None

    def invoke(self, arguments: list[Any], R: Runtime) -> Any:
        depth = R.depth
        if depth >= _MAX_CALL_DEPTH:
            raise BudgetExceededError(
                f"StackOverflowError: call depth exceeded invoking {self.name}"
            )
        R.depth = depth + 1
        R.calls += 1
        frame = [_UNDEF] * self.nslots
        frame[: len(arguments)] = arguments
        tracer = R.tracer
        if tracer is not None:
            # parameter traces are attributed to the *caller's* method,
            # exactly like the tree-walker (it traces before switching
            # _current_method)
            caller = R.method
            for pname, argument in zip(self.param_names, arguments):
                tracer.on_assign(caller, pname, argument)
        previous = R.method
        R.method = self.name
        try:
            signal = self.body(frame, R)
        finally:
            R.depth = depth
            R.method = previous
        if signal is None:
            return None
        if signal is _RETURN:
            value = R.retval
            R.retval = None
            return value
        # a stray break/continue escaping the method surfaces as the
        # same exception the tree-walker would leak
        if signal is _BREAK:
            raise _BreakSignal()
        raise _ContinueSignal()


class CompiledProgram:
    """All methods of one submission, compiled; shared and immutable."""

    __slots__ = ("methods", "loop_ids")

    def __init__(self) -> None:
        self.methods: dict[tuple[str, int], CompiledMethod] = {}
        self.loop_ids: list[str] = []

    def invoke(self, name: str, arguments: list[Any], R: Runtime) -> Any:
        compiled = self.methods.get((name, len(arguments)))
        if compiled is None:
            raise JavaRuntimeError(
                f"no method {name}/{len(arguments)} in submission"
            )
        return compiled.invoke(arguments, R)


# ----------------------------------------------------------------------
# compilation


#: Statement types eligible for step-fused chains: single-tick statements
#: whose execution cannot itself consume steps (no nested statements; an
#: unqualified call would tick inside the callee, but calls are excluded
#: by `_contains_user_call`).
_SIMPLE_STMTS = (
    ast.LocalVarDecl,
    ast.ExpressionStatement,
    ast.Return,
    ast.Break,
    ast.Continue,
    ast.EmptyStatement,
)
_EXIT_STMTS = (ast.Return, ast.Break, ast.Continue)


def _contains_user_call(node: ast.Node) -> bool:
    return any(
        isinstance(child, ast.MethodCall) and child.target is None
        for child in ast.walk(node)
    )


class _Scope:
    """One compile-time lexical scope: name -> frame slot."""

    __slots__ = ("names",)

    def __init__(self) -> None:
        self.names: dict[str, int] = {}


class _MethodCompiler:
    """Compiles one method body into a closure tree."""

    def __init__(self, program: CompiledProgram, compiled: CompiledMethod,
                 method: ast.MethodDecl) -> None:
        self.program = program
        self.compiled = compiled
        self.method_name = method.name
        self.scopes: list[_Scope] = [_Scope()]
        self.nslots = 0
        #: slots that may be read/written before their declaration ran
        #: (declared inside switch cases, which the tree-walker executes
        #: without a scope push, so case-jumping can skip the decl)
        self.checked: set[int] = set()
        self.switch_depth = 0
        #: per-method loop ordinal for stable loop ids
        self.loop_ordinal = 0
        #: strong refs to constant closures (id-keyed folding table)
        self._consts: dict[int, tuple[Any, ExprFn]] = {}

        for parameter in method.parameters:
            self._declare(parameter.name)
        self.compiled.body = self._compile_stmt_unticked(method.body)
        self.compiled.nslots = self.nslots

    # -- scope handling ------------------------------------------------

    def _declare(self, name: str) -> int:
        slot = self.nslots
        self.nslots += 1
        self.scopes[-1].names[name] = slot
        if self.switch_depth > 0:
            self.checked.add(slot)
        return slot

    def _resolve(self, name: str) -> int | None:
        for scope in reversed(self.scopes):
            slot = scope.names.get(name)
            if slot is not None:
                return slot
        return None

    def _push_scope(self) -> None:
        self.scopes.append(_Scope())

    def _pop_scope(self) -> list[int]:
        """Pop; returns checked slots declared here (need re-entry reset).

        The tree-walker's scope dict dies on pop, so a checked slot
        declared in a re-entered block must read as undeclared again.
        Unchecked slots are always re-declared before any use on every
        path (that is what makes them unchecked), so they need no reset.
        """
        scope = self.scopes.pop()
        return [s for s in scope.names.values() if s in self.checked]

    def _next_loop_id(self, kind: str) -> int:
        index = len(self.program.loop_ids)
        self.program.loop_ids.append(
            f"{self.method_name}:{kind}@{self.loop_ordinal}"
        )
        self.loop_ordinal += 1
        return index

    # -- constant folding ----------------------------------------------

    def _const(self, value: Any) -> ExprFn:
        def run(F: Frame, R: Runtime) -> Any:
            return value

        self._consts[id(run)] = (value, run)
        return run

    def _const_of(self, closure: ExprFn) -> tuple[Any] | None:
        entry = self._consts.get(id(closure))
        if entry is not None and entry[1] is closure:
            return (entry[0],)
        return None

    # -- statement sequencing ------------------------------------------

    def _ticked(self, unticked: StmtFn) -> StmtFn:
        def run(F: Frame, R: Runtime) -> Any:
            steps = R.steps + 1
            R.steps = steps
            if steps > R.budget:
                _raise_budget(R.budget)
            return unticked(F, R)

        return run

    def _compile_stmt(self, node: ast.Statement) -> StmtFn:
        """One statement including its own step tick."""
        return self._ticked(self._compile_stmt_unticked(node))

    def _sequence(self, statements: list[ast.Statement]) -> StmtFn:
        """A statement list with step-fused chains of simple statements."""
        units: list[StmtFn] = []
        i = 0
        n = len(statements)
        while i < n:
            statement = statements[i]
            if isinstance(statement, _SIMPLE_STMTS) and not \
                    _contains_user_call(statement):
                chunk = [statement]
                i += 1
                if not isinstance(statement, _EXIT_STMTS):
                    while i < n:
                        nxt = statements[i]
                        if not isinstance(nxt, _SIMPLE_STMTS) or \
                                _contains_user_call(nxt):
                            break
                        chunk.append(nxt)
                        i += 1
                        if isinstance(nxt, _EXIT_STMTS):
                            break
                if len(chunk) == 1:
                    units.append(self._ticked(
                        self._compile_stmt_unticked(chunk[0])
                    ))
                else:
                    units.append(self._fused_chunk(chunk))
            else:
                units.append(self._compile_stmt(statement))
                i += 1
        return _seq_closure(units)

    def _fused_chunk(self, chunk: list[ast.Statement]) -> StmtFn:
        """A run of simple statements charged K steps at the head.

        If the bulk charge could cross the budget, fall back to a
        per-statement ticked replay that reproduces the tree-walker's
        raise/no-raise decision and final step count exactly.  (On the
        fast path, a mid-chunk runtime error leaves steps over-charged,
        but a failed run never reports steps, so that is unobservable.)
        """
        unticked = [self._compile_stmt_unticked(s) for s in chunk]
        ticked = [self._ticked(u) for u in unticked]
        k = len(unticked)

        def slow(F: Frame, R: Runtime) -> Any:
            signal = None
            for unit in ticked:
                signal = unit(F, R)
                if signal is not None:
                    return signal
            return signal

        if k == 2:
            u1, u2 = unticked

            def fused2(F: Frame, R: Runtime) -> Any:
                steps = R.steps + 2
                if steps > R.budget:
                    return slow(F, R)
                R.steps = steps
                u1(F, R)
                return u2(F, R)

            return fused2
        if k == 3:
            v1, v2, v3 = unticked

            def fused3(F: Frame, R: Runtime) -> Any:
                steps = R.steps + 3
                if steps > R.budget:
                    return slow(F, R)
                R.steps = steps
                v1(F, R)
                v2(F, R)
                return v3(F, R)

            return fused3
        head = tuple(unticked[:-1])
        last = unticked[-1]

        def fused(F: Frame, R: Runtime) -> Any:
            steps = R.steps + k
            if steps > R.budget:
                return slow(F, R)
            R.steps = steps
            for unit in head:
                unit(F, R)
            return last(F, R)

        return fused

    # -- statements ----------------------------------------------------

    def _compile_stmt_unticked(self, node: ast.Statement) -> StmtFn:
        if isinstance(node, ast.Block):
            return self._compile_block(node)
        if isinstance(node, ast.LocalVarDecl):
            return self._compile_decl(node)
        if isinstance(node, ast.ExpressionStatement):
            expression = self._compile_expr(node.expression)

            def expr_stmt(F: Frame, R: Runtime) -> Any:
                expression(F, R)
                return None

            return expr_stmt
        if isinstance(node, ast.If):
            return self._compile_if(node)
        if isinstance(node, ast.While):
            return self._compile_while(node)
        if isinstance(node, ast.DoWhile):
            return self._compile_dowhile(node)
        if isinstance(node, ast.For):
            return self._compile_for(node)
        if isinstance(node, ast.ForEach):
            return self._compile_foreach(node)
        if isinstance(node, ast.Break):
            def brk(F: Frame, R: Runtime) -> Any:
                return _BREAK

            return brk
        if isinstance(node, ast.Continue):
            def cont(F: Frame, R: Runtime) -> Any:
                return _CONTINUE

            return cont
        if isinstance(node, ast.Return):
            if node.value is None:
                def ret_void(F: Frame, R: Runtime) -> Any:
                    R.retval = None
                    return _RETURN

                return ret_void
            value = self._compile_expr(node.value)

            def ret(F: Frame, R: Runtime) -> Any:
                R.retval = value(F, R)
                return _RETURN

            return ret
        if isinstance(node, ast.Switch):
            return self._compile_switch(node)
        if isinstance(node, ast.EmptyStatement):
            def empty(F: Frame, R: Runtime) -> Any:
                return None

            return empty
        kind = type(node).__name__

        def unknown(F: Frame, R: Runtime) -> Any:
            raise JavaRuntimeError(f"cannot execute statement {kind}")

        return unknown

    def _compile_block(self, node: ast.Block) -> StmtFn:
        self._push_scope()
        body = self._sequence(node.statements)
        resets = self._pop_scope()
        if not resets:
            return body
        reset_slots = tuple(resets)

        def block(F: Frame, R: Runtime) -> Any:
            for slot in reset_slots:
                F[slot] = _UNDEF
            return body(F, R)

        return block

    def _compile_if(self, node: ast.If) -> StmtFn:
        condition = self._compile_expr(node.condition)
        then_branch = self._compile_stmt(node.then_branch)
        box = self._const_of(condition)
        if box is not None and box[0] is True:
            return then_branch
        else_branch = (
            self._compile_stmt(node.else_branch)
            if node.else_branch is not None else None
        )
        if box is not None and box[0] is False:
            if else_branch is None:
                def nothing(F: Frame, R: Runtime) -> Any:
                    return None

                return nothing
            return else_branch
        if else_branch is None:
            def if_only(F: Frame, R: Runtime) -> Any:
                value = condition(F, R)
                if value is True:
                    return then_branch(F, R)
                if value is False:
                    return None
                return _raise_condition(value)

            return if_only
        orelse = else_branch

        def if_else(F: Frame, R: Runtime) -> Any:
            value = condition(F, R)
            if value is True:
                return then_branch(F, R)
            if value is False:
                return orelse(F, R)
            return _raise_condition(value)

        return if_else

    def _compile_while(self, node: ast.While) -> StmtFn:
        condition = self._compile_expr(node.condition)
        loop_index = self._next_loop_id("while")
        body = self._compile_stmt(node.body)
        box = self._const_of(condition)
        if box is not None and box[0] is True:
            # `while (true)`: the condition can neither fail nor
            # side-effect, so skip its evaluation entirely
            def while_true(F: Frame, R: Runtime) -> Any:
                iters = R.loop_iters
                budget = R.budget
                while True:
                    steps = R.steps + 1
                    R.steps = steps
                    if steps > budget:
                        _raise_budget(budget)
                    iters[loop_index] += 1
                    signal = body(F, R)
                    if signal is not None:
                        if signal is _BREAK:
                            return None
                        if signal is not _CONTINUE:
                            return signal

            return while_true

        def while_loop(F: Frame, R: Runtime) -> Any:
            iters = R.loop_iters
            budget = R.budget
            while True:
                value = condition(F, R)
                if value is not True:
                    if value is False:
                        return None
                    return _raise_condition(value)
                steps = R.steps + 1
                R.steps = steps
                if steps > budget:
                    _raise_budget(budget)
                iters[loop_index] += 1
                signal = body(F, R)
                if signal is not None:
                    if signal is _BREAK:
                        return None
                    if signal is not _CONTINUE:
                        return signal

        return while_loop

    def _compile_dowhile(self, node: ast.DoWhile) -> StmtFn:
        loop_index = self._next_loop_id("dowhile")
        body = self._compile_stmt(node.body)
        condition = self._compile_expr(node.condition)

        def dowhile_loop(F: Frame, R: Runtime) -> Any:
            iters = R.loop_iters
            budget = R.budget
            while True:
                steps = R.steps + 1
                R.steps = steps
                if steps > budget:
                    _raise_budget(budget)
                iters[loop_index] += 1
                signal = body(F, R)
                if signal is not None:
                    if signal is _BREAK:
                        return None
                    if signal is not _CONTINUE:
                        return signal
                value = condition(F, R)
                if value is not True:
                    if value is False:
                        return None
                    return _raise_condition(value)

        return dowhile_loop

    def _compile_for(self, node: ast.For) -> StmtFn:
        self._push_scope()
        init_units = [self._compile_stmt(init) for init in node.init]
        condition = (
            self._compile_expr(node.condition)
            if node.condition is not None else None
        )
        loop_index = self._next_loop_id("for")
        body = self._compile_stmt(node.body)
        updates = [self._compile_expr(update) for update in node.update]
        resets = tuple(self._pop_scope())
        if condition is not None:
            box = self._const_of(condition)
            if box is not None and box[0] is True:
                condition = None
        update1 = updates[0] if len(updates) == 1 else None

        if condition is None:
            def for_forever(F: Frame, R: Runtime) -> Any:
                for slot in resets:
                    F[slot] = _UNDEF
                for init in init_units:
                    signal = init(F, R)
                    if signal is not None:
                        return signal
                iters = R.loop_iters
                budget = R.budget
                while True:
                    steps = R.steps + 1
                    R.steps = steps
                    if steps > budget:
                        _raise_budget(budget)
                    iters[loop_index] += 1
                    signal = body(F, R)
                    if signal is not None:
                        if signal is _BREAK:
                            return None
                        if signal is not _RETURN:
                            pass  # continue: fall through to updates
                        else:
                            return signal
                    if update1 is not None:
                        update1(F, R)
                    else:
                        for update in updates:
                            update(F, R)

            return for_forever

        cond = condition

        def for_loop(F: Frame, R: Runtime) -> Any:
            for slot in resets:
                F[slot] = _UNDEF
            for init in init_units:
                signal = init(F, R)
                if signal is not None:
                    return signal
            iters = R.loop_iters
            budget = R.budget
            while True:
                value = cond(F, R)
                if value is not True:
                    if value is False:
                        return None
                    return _raise_condition(value)
                steps = R.steps + 1
                R.steps = steps
                if steps > budget:
                    _raise_budget(budget)
                iters[loop_index] += 1
                signal = body(F, R)
                if signal is not None:
                    if signal is _BREAK:
                        return None
                    if signal is _RETURN:
                        return signal
                    # _CONTINUE falls through to the updates,
                    # like the tree-walker's `except _ContinueSignal: pass`
                if update1 is not None:
                    update1(F, R)
                else:
                    for update in updates:
                        update(F, R)

        return for_loop

    def _compile_foreach(self, node: ast.ForEach) -> StmtFn:
        iterable = self._compile_expr(node.iterable)
        self._push_scope()
        slot = self._declare(node.name)
        loop_index = self._next_loop_id("foreach")
        body = self._compile_stmt(node.body)
        resets = tuple(self._pop_scope())
        name = node.name
        method = self.method_name

        def foreach_loop(F: Frame, R: Runtime) -> Any:
            value = iterable(F, R)
            if isinstance(value, JavaArray):
                elements = list(value.elements)
            elif isinstance(value, str):
                elements = [JavaChar(ch) for ch in value]
            else:
                raise JavaRuntimeError(
                    f"cannot iterate over {java_str(value)}"
                )
            for reset in resets:
                F[reset] = _UNDEF
            F[slot] = None
            iters = R.loop_iters
            budget = R.budget
            tracer = R.tracer
            for element in elements:
                steps = R.steps + 1
                R.steps = steps
                if steps > budget:
                    _raise_budget(budget)
                iters[loop_index] += 1
                F[slot] = element
                if tracer is not None:
                    tracer.on_assign(method, name, element)
                signal = body(F, R)
                if signal is not None:
                    if signal is _BREAK:
                        return None
                    if signal is not _CONTINUE:
                        return signal
            return None

        return foreach_loop

    def _compile_decl(self, node: ast.LocalVarDecl) -> StmtFn:
        units: list[StmtFn] = []
        type_name = node.type.name
        base_dims = node.type.dimensions
        method = self.method_name
        for declarator in node.declarators:
            name = declarator.name
            if declarator.initializer is None:
                dimensions = base_dims + declarator.extra_dimensions
                default = None if dimensions else _default_value(type_name)
                slot = self._declare(name)

                def decl_default(
                    F: Frame, R: Runtime,
                    _slot: int = slot, _name: str = name, _value: Any = default,
                ) -> Any:
                    F[_slot] = _value
                    tracer = R.tracer
                    if tracer is not None:
                        tracer.on_assign(method, _name, _value)
                    return None

                units.append(decl_default)
                continue
            if isinstance(declarator.initializer, ast.ArrayInitializer):
                value_fn = self._compile_array_initializer(
                    declarator.initializer, type_name
                )
            else:
                value_fn = self._compile_expr(declarator.initializer)
                dims = base_dims + declarator.extra_dimensions
                if dims == 0 and type_name in ("double", "float"):
                    value_fn = _float_coerced(value_fn)
                elif dims == 0 and type_name in ("int", "short", "byte"):
                    value_fn = _char_coerced(value_fn)
            slot = self._declare(name)

            def decl_init(
                F: Frame, R: Runtime,
                _slot: int = slot, _name: str = name, _fn: ExprFn = value_fn,
            ) -> Any:
                value = _fn(F, R)
                F[_slot] = value
                tracer = R.tracer
                if tracer is not None:
                    tracer.on_assign(method, _name, value)
                return None

            units.append(decl_init)
        if len(units) == 1:
            return units[0]

        def decl_all(F: Frame, R: Runtime) -> Any:
            for unit in units:
                unit(F, R)
            return None

        return decl_all

    def _compile_switch(self, node: ast.Switch) -> StmtFn:
        selector = self._compile_expr(node.selector)
        cases: list[tuple[tuple[ExprFn | None, ...], tuple[StmtFn, ...]]] = []
        self.switch_depth += 1
        try:
            for case in node.cases:
                labels = tuple(
                    None if label is None else self._compile_expr(label)
                    for label in case.labels
                )
                statements = tuple(
                    self._compile_stmt(statement)
                    for statement in case.statements
                )
                cases.append((labels, statements))
        finally:
            self.switch_depth -= 1
        case_list = tuple(cases)

        def switch(F: Frame, R: Runtime) -> Any:
            value = selector(F, R)
            matched = False
            for labels, statements in case_list:
                if not matched:
                    for label in labels:
                        if label is None:
                            matched = True
                            break
                        if _java_equals(value, label(F, R)):
                            matched = True
                            break
                if matched:
                    for statement in statements:
                        signal = statement(F, R)
                        if signal is not None:
                            if signal is _BREAK:
                                return None
                            return signal
            return None

        return switch

    # -- expressions ---------------------------------------------------

    def _compile_expr(self, node: ast.Expression) -> ExprFn:
        if isinstance(node, ast.Literal):
            if node.kind == "char":
                return self._const(JavaChar(str(node.value)))
            return self._const(node.value)
        if isinstance(node, ast.Name):
            return self._compile_name(node.identifier)
        if isinstance(node, ast.FieldAccess):
            return self._compile_field(node)
        if isinstance(node, ast.ArrayAccess):
            return self._compile_array_access(node)
        if isinstance(node, ast.MethodCall):
            return self._compile_call(node)
        if isinstance(node, ast.ObjectCreation):
            return self._compile_creation(node)
        if isinstance(node, ast.ArrayCreation):
            return self._compile_array_creation(node)
        if isinstance(node, ast.ArrayInitializer):
            return self._compile_array_initializer(node, "int")
        if isinstance(node, ast.Unary):
            return self._compile_unary(node)
        if isinstance(node, ast.Binary):
            return self._compile_binary(node)
        if isinstance(node, ast.Ternary):
            return self._compile_ternary(node)
        if isinstance(node, ast.Assignment):
            return self._compile_assignment(node)
        if isinstance(node, ast.Cast):
            return self._compile_cast(node)
        kind = type(node).__name__

        def unknown(F: Frame, R: Runtime) -> Any:
            raise JavaRuntimeError(f"cannot evaluate {kind}")

        return unknown

    def _compile_name(self, name: str) -> ExprFn:
        slot = self._resolve(name)
        if slot is None:
            if name in _STATIC_CLASSES:
                def class_ref(F: Frame, R: Runtime) -> Any:
                    # fresh per evaluation, like the tree-walker
                    return _ClassRef(name)

                return class_ref

            def undefined(F: Frame, R: Runtime) -> Any:
                raise JavaRuntimeError(f"undefined variable {name}")

            return undefined
        index: int = slot
        if index in self.checked:
            if name in _STATIC_CLASSES:
                def load_checked_static(F: Frame, R: Runtime) -> Any:
                    value = F[index]
                    if value is _UNDEF:
                        return _ClassRef(name)
                    return value

                return load_checked_static

            def load_checked(F: Frame, R: Runtime) -> Any:
                value = F[index]
                if value is _UNDEF:
                    raise JavaRuntimeError(f"undefined variable {name}")
                return value

            return load_checked

        def load(F: Frame, R: Runtime) -> Any:
            return F[index]

        return load

    def _compile_field(self, node: ast.FieldAccess) -> ExprFn:
        name = node.name
        if isinstance(node.target, ast.Name):
            key = (node.target.identifier, name)
            if key in _STATIC_FIELDS:
                # static table wins over locals, like the tree-walker's
                # _eval_field (checked before any env lookup)
                return self._const(_STATIC_FIELDS[key])
        target = self._compile_expr(node.target)
        if name == "length":
            def length(F: Frame, R: Runtime) -> Any:
                value = target(F, R)
                if type(value) is JavaArray:
                    return len(value.elements)
                if isinstance(value, str):
                    raise JavaRuntimeError(
                        "String has no field length (use length())"
                    )
                raise JavaRuntimeError(
                    f"unknown field length on {java_str(value)}"
                )

            return length

        def unknown_field(F: Frame, R: Runtime) -> Any:
            value = target(F, R)
            raise JavaRuntimeError(
                f"unknown field {name} on {java_str(value)}"
            )

        return unknown_field

    def _compile_array_access(self, node: ast.ArrayAccess) -> ExprFn:
        array = self._compile_expr(node.array)
        index = self._compile_expr(node.index)

        def access(F: Frame, R: Runtime) -> Any:
            array_value = array(F, R)
            index_value = index(F, R)
            if type(array_value) is JavaArray and type(index_value) is int:
                elements = array_value.elements
                if 0 <= index_value < len(elements):
                    return elements[index_value]
                raise JavaRuntimeError(
                    "ArrayIndexOutOfBoundsException: "
                    f"Index {index_value} out of bounds for length "
                    f"{len(elements)}"
                )
            index_int = _int_index(index_value)
            if not isinstance(array_value, JavaArray):
                raise JavaRuntimeError("NullPointerException: not an array")
            return array_value.get(index_int)

        return access

    def _compile_call(self, node: ast.MethodCall) -> ExprFn:
        arguments = [self._compile_expr(a) for a in node.arguments]
        name = node.name
        method = self.method_name
        if node.target is None:
            compiled = self.program.methods.get((name, len(arguments)))
            if compiled is None:
                arity = len(arguments)

                def missing(F: Frame, R: Runtime) -> Any:
                    for argument in arguments:
                        argument(F, R)
                    raise JavaRuntimeError(
                        f"no method {name}/{arity} in submission"
                    )

                return missing
            callee = compiled
            if len(arguments) == 0:
                def call0(F: Frame, R: Runtime) -> Any:
                    return callee.invoke([], R)

                return call0
            if len(arguments) == 1:
                arg1 = arguments[0]

                def call1(F: Frame, R: Runtime) -> Any:
                    return callee.invoke([arg1(F, R)], R)

                return call1
            if len(arguments) == 2:
                first, second = arguments

                def call2(F: Frame, R: Runtime) -> Any:
                    return callee.invoke([first(F, R), second(F, R)], R)

                return call2

            def calln(F: Frame, R: Runtime) -> Any:
                return callee.invoke([a(F, R) for a in arguments], R)

            return calln
        # System.out.<name>(...) binds statically: the tree-walker's
        # _eval_field resolves `System.out` from the static table before
        # any local lookup, so local shadowing cannot rebind it
        if (
            isinstance(node.target, ast.FieldAccess)
            and isinstance(node.target.target, ast.Name)
            and node.target.target.identifier == "System"
            and node.target.name == "out"
        ):
            return self._compile_print(name, arguments)
        if isinstance(node.target, ast.Name):
            target_name = node.target.identifier
            slot = self._resolve(target_name)
            if slot is None and target_name in _STATIC_CLASSES:
                return self._compile_static_call(target_name, name, arguments)
        target = self._compile_expr(node.target)

        def call_dynamic(F: Frame, R: Runtime) -> Any:
            argument_values = [a(F, R) for a in arguments]
            return _dispatch_call(
                R, method, target(F, R), name, argument_values
            )

        return call_dynamic

    def _compile_print(self, name: str, arguments: list[ExprFn]) -> ExprFn:
        method = self.method_name
        if name == "println":
            if len(arguments) == 1:
                argument = arguments[0]

                def println1(F: Frame, R: Runtime) -> Any:
                    text = java_str(argument(F, R)) + "\n"
                    R.out.append(text)
                    tracer = R.tracer
                    if tracer is not None:
                        tracer.on_output(method, text)
                    return None

                return println1

            def println(F: Frame, R: Runtime) -> Any:
                values = [a(F, R) for a in arguments]
                text = (java_str(values[0]) if values else "") + "\n"
                R.out.append(text)
                tracer = R.tracer
                if tracer is not None:
                    tracer.on_output(method, text)
                return None

            return println
        if name == "print":
            def print_(F: Frame, R: Runtime) -> Any:
                values = [a(F, R) for a in arguments]
                text = java_str(values[0])
                R.out.append(text)
                tracer = R.tracer
                if tracer is not None:
                    tracer.on_output(method, text)
                return None

            return print_
        if name == "printf":
            def printf(F: Frame, R: Runtime) -> Any:
                values = [a(F, R) for a in arguments]
                template = values[0]
                rest = [
                    v.char if isinstance(v, JavaChar) else v for v in values[1:]
                ]
                try:
                    _emit(R, method, template % tuple(rest))
                except (TypeError, ValueError) as error:
                    raise JavaRuntimeError(f"IllegalFormatException: {error}")
                return None

            return printf

        def unsupported(F: Frame, R: Runtime) -> Any:
            for argument in arguments:
                argument(F, R)
            raise JavaRuntimeError(f"System.out has no method {name}")

        return unsupported

    def _compile_static_call(
        self, class_name: str, name: str, arguments: list[ExprFn]
    ) -> ExprFn:
        if class_name == "Math":
            helper = stdlib.call_math
        elif class_name == "Integer":
            helper = stdlib.call_integer
        elif class_name == "String":
            helper = stdlib.call_string_static
        elif class_name == "Character":
            helper = stdlib.call_character
        else:
            # `System.foo(...)`: falls through the tree-walker's class
            # dispatch into the generic "cannot call" error
            def system_call(F: Frame, R: Runtime) -> Any:
                values = [a(F, R) for a in arguments]
                return _call_class_ref(
                    R, self.method_name, _ClassRef(class_name), name, values
                )

            return system_call
        if len(arguments) == 1:
            argument = arguments[0]

            def static1(F: Frame, R: Runtime) -> Any:
                return helper(name, [argument(F, R)])

            return static1

        def static_call(F: Frame, R: Runtime) -> Any:
            return helper(name, [a(F, R) for a in arguments])

        return static_call

    def _compile_creation(self, node: ast.ObjectCreation) -> ExprFn:
        arguments = [self._compile_expr(a) for a in node.arguments]
        name = node.type.name
        if name in ("Scanner", "java.util.Scanner"):
            def new_scanner(F: Frame, R: Runtime) -> Any:
                values = [a(F, R) for a in arguments]
                R.allocations += 1
                source = values[0] if values else "<stdin>"
                if isinstance(source, stdlib.FileObject):
                    return stdlib.ScannerObject(R.files.read(source.name))
                if source == "<stdin>":
                    return stdlib.ScannerObject(R.stdin)
                if isinstance(source, str):
                    return stdlib.ScannerObject(source)
                raise JavaRuntimeError("unsupported Scanner source")

            return new_scanner
        if name in ("File", "java.io.File"):
            def new_file(F: Frame, R: Runtime) -> Any:
                values = [a(F, R) for a in arguments]
                R.allocations += 1
                return stdlib.FileObject(str(values[0]))

            return new_file
        if name == "String":
            def new_string(F: Frame, R: Runtime) -> Any:
                values = [a(F, R) for a in arguments]
                R.allocations += 1
                return str(values[0]) if values else ""

            return new_string
        if name in ("StringBuilder", "StringBuffer"):
            def new_builder(F: Frame, R: Runtime) -> Any:
                values = [a(F, R) for a in arguments]
                R.allocations += 1
                initial = ""
                if values and isinstance(values[0], str):
                    initial = values[0]
                return stdlib.StringBuilderObject(initial)

            return new_builder

        def cannot(F: Frame, R: Runtime) -> Any:
            for argument in arguments:
                argument(F, R)
            raise JavaRuntimeError(f"cannot instantiate {name}")

        return cannot

    def _compile_array_creation(self, node: ast.ArrayCreation) -> ExprFn:
        if node.initializer is not None:
            return self._compile_array_initializer(
                node.initializer, node.type.name
            )
        element = node.type.name
        dims = node.type.dimensions
        if not node.dimensions:
            def no_dims(F: Frame, R: Runtime) -> Any:
                raise JavaRuntimeError("array creation without dimensions")

            return no_dims
        lengths = [self._compile_expr(d) for d in node.dimensions]
        if len(lengths) == 1 and dims <= 1:
            length1 = lengths[0]

            def new_array1(F: Frame, R: Runtime) -> Any:
                value = length1(F, R)
                R.allocations += 1
                return JavaArray.of_length(
                    element,
                    value if type(value) is int else _int_index(value),
                )

            return new_array1

        def new_array(F: Frame, R: Runtime) -> Any:
            sizes = [_int_index(length(F, R)) for length in lengths]
            R.allocations += 1
            return _make_array(element, sizes, dims)

        return new_array

    def _compile_array_initializer(
        self, node: ast.ArrayInitializer, element: str
    ) -> ExprFn:
        items: list[ExprFn] = []
        coerce = element in ("double", "float")
        for item in node.elements:
            if isinstance(item, ast.ArrayInitializer):
                items.append(self._compile_array_initializer(item, element))
            else:
                fn = self._compile_expr(item)
                items.append(_float_coerced(fn) if coerce else fn)

        def initializer(F: Frame, R: Runtime) -> Any:
            R.allocations += 1
            return JavaArray(element, [item(F, R) for item in items])

        return initializer

    def _compile_unary(self, node: ast.Unary) -> ExprFn:
        operator = node.operator
        if operator in ("++", "--"):
            return self._compile_incdec(node)
        operand = self._compile_expr(node.operand)
        box = self._const_of(operand)
        if box is not None:
            try:
                return self._const(_unary_value(operator, box[0]))
            except JavaRuntimeError:
                pass
        if operator == "!":
            def not_(F: Frame, R: Runtime) -> Any:
                value = operand(F, R)
                if value is True:
                    return False
                if value is False:
                    return True
                return _raise_condition(value)

            return not_
        if operator == "-":
            def neg(F: Frame, R: Runtime) -> Any:
                value = operand(F, R)
                if type(value) is int:
                    result = -value
                    return result if result <= _INT_MAX else wrap_int(result)
                return _unary_value("-", value)

            return neg

        def unary(F: Frame, R: Runtime) -> Any:
            return _unary_value(operator, operand(F, R))

        return unary

    def _compile_incdec(self, node: ast.Unary) -> ExprFn:
        operator = node.operator
        delta = 1 if operator == "++" else -1
        prefix = node.prefix
        operand = node.operand
        if isinstance(operand, ast.Name):
            slot = self._resolve(operand.identifier)
            if slot is not None:
                index: int = slot
                name = operand.identifier
                checked = index in self.checked
                static_class = name in _STATIC_CLASSES
                method = self.method_name

                def incdec_slot(F: Frame, R: Runtime) -> Any:
                    old = F[index]
                    if type(old) is int:
                        new = old + delta
                        if not _INT_MIN <= new <= _INT_MAX:
                            new = wrap_int(new)
                    else:
                        if old is _UNDEF and checked:
                            # the declaration was jumped over: the load
                            # the tree-walker would do raises first,
                            # unless the name is a static class (then it
                            # loads a _ClassRef and ++ rejects it)
                            if static_class:
                                raise JavaRuntimeError(
                                    f"cannot {operator} "
                                    f"{java_str(_ClassRef(name))}"
                                )
                            raise JavaRuntimeError(
                                f"undefined variable {name}"
                            )
                        number = numeric_value(old)
                        if number is None:
                            raise JavaRuntimeError(
                                f"cannot {operator} {java_str(old)}"
                            )
                        new = number + delta
                        if isinstance(number, int):
                            new = wrap_int(new)
                    # Name-store float promotion cannot apply: an int
                    # `new` implies `old` was int/char, never float
                    F[index] = new
                    tracer = R.tracer
                    if tracer is not None:
                        tracer.on_assign(method, name, new)
                    return new if prefix else old

                return incdec_slot
        load = self._compile_expr(operand)
        store = self._compile_store(operand)

        def incdec(F: Frame, R: Runtime) -> Any:
            old = load(F, R)
            number = numeric_value(old)
            if number is None:
                raise JavaRuntimeError(f"cannot {operator} {java_str(old)}")
            new = number + delta
            if isinstance(number, int):
                new = wrap_int(new)
            store(F, R, new)
            return new if prefix else old

        return incdec

    def _compile_binary(self, node: ast.Binary) -> ExprFn:
        operator = node.operator
        if operator in ("&&", "||"):
            return self._compile_logical(node)
        left = self._compile_expr(node.left)
        right = self._compile_expr(node.right)
        left_box = self._const_of(left)
        right_box = self._const_of(right)
        if left_box is not None and right_box is not None:
            try:
                return self._const(
                    _binary_value(operator, left_box[0], right_box[0])
                )
            except JavaRuntimeError:
                pass
        rconst = (
            right_box[0]
            if right_box is not None and type(right_box[0]) is int else None
        )
        return _binop_closure(operator, left, right, rconst,
                              left_box, right_box)

    def _compile_logical(self, node: ast.Binary) -> ExprFn:
        is_and = node.operator == "&&"
        left = self._compile_expr(node.left)
        right = self._compile_expr(node.right)
        left_box = self._const_of(left)
        if left_box is not None and isinstance(left_box[0], bool):
            if left_box[0] is (False if is_and else True):
                # short-circuit is compile-time decidable
                return self._const(not is_and)

            def truth_right(F: Frame, R: Runtime) -> Any:
                value = right(F, R)
                if value is True:
                    return True
                if value is False:
                    return False
                return _raise_condition(value)

            return truth_right
        if is_and:
            def and_(F: Frame, R: Runtime) -> Any:
                value = left(F, R)
                if value is False:
                    return False
                if value is not True:
                    return _raise_condition(value)
                value = right(F, R)
                if value is True:
                    return True
                if value is False:
                    return False
                return _raise_condition(value)

            return and_

        def or_(F: Frame, R: Runtime) -> Any:
            value = left(F, R)
            if value is True:
                return True
            if value is not False:
                return _raise_condition(value)
            value = right(F, R)
            if value is True:
                return True
            if value is False:
                return False
            return _raise_condition(value)

        return or_

    def _compile_ternary(self, node: ast.Ternary) -> ExprFn:
        condition = self._compile_expr(node.condition)
        if_true = self._compile_expr(node.if_true)
        if_false = self._compile_expr(node.if_false)
        box = self._const_of(condition)
        if box is not None:
            if box[0] is True:
                return if_true
            if box[0] is False:
                return if_false

        def ternary(F: Frame, R: Runtime) -> Any:
            value = condition(F, R)
            if value is True:
                return if_true(F, R)
            if value is False:
                return if_false(F, R)
            return _raise_condition(value)

        return ternary

    def _compile_assignment(self, node: ast.Assignment) -> ExprFn:
        target = node.target
        if node.operator == "=":
            value_fn = self._compile_expr(node.value)
            if isinstance(target, ast.Name):
                slot = self._resolve(target.identifier)
                if slot is not None and slot not in self.checked:
                    index: int = slot
                    name = target.identifier
                    method = self.method_name

                    def assign_slot(F: Frame, R: Runtime) -> Any:
                        value = value_fn(F, R)
                        if type(F[index]) is float and type(value) is int:
                            value = float(value)
                        F[index] = value
                        tracer = R.tracer
                        if tracer is not None:
                            tracer.on_assign(method, name, value)
                        return value

                    return assign_slot
            store = self._compile_store(target)

            def assign(F: Frame, R: Runtime) -> Any:
                value = value_fn(F, R)
                store(F, R, value)
                return value

            return assign
        operator = node.operator[:-1]
        load = self._compile_expr(target)
        value_fn = self._compile_expr(node.value)
        store = self._compile_store(target)
        if isinstance(target, ast.Name) and operator in ("+", "-", "*"):
            slot = self._resolve(target.identifier)
            if slot is not None and slot not in self.checked:
                cslot: int = slot
                name = target.identifier
                method = self.method_name

                def compound_slot(F: Frame, R: Runtime) -> Any:
                    current = F[cslot]
                    rhs = value_fn(F, R)
                    if type(current) is int and type(rhs) is int:
                        if operator == "+":
                            value = current + rhs
                        elif operator == "-":
                            value = current - rhs
                        else:
                            value = current * rhs
                        if not _INT_MIN <= value <= _INT_MAX:
                            value = wrap_int(value)
                        # int current: no float promotion, no narrowing
                        F[cslot] = value
                        tracer = R.tracer
                        if tracer is not None:
                            tracer.on_assign(method, name, value)
                        return value
                    value = _binary_value(operator, current, rhs)
                    if isinstance(current, int) and not \
                            isinstance(current, bool) and \
                            isinstance(value, float):
                        value = wrap_int(int(value))
                    if type(current) is float and type(value) is int:
                        value = float(value)
                    F[cslot] = value
                    tracer = R.tracer
                    if tracer is not None:
                        tracer.on_assign(method, name, value)
                    return value

                return compound_slot

        def compound(F: Frame, R: Runtime) -> Any:
            current = load(F, R)
            value = _binary_value(operator, current, value_fn(F, R))
            # compound assignment to an int variable narrows the result,
            # e.g. `int x; x += 1.5` keeps x an int in Java
            if isinstance(current, int) and not isinstance(current, bool) \
                    and isinstance(value, float):
                value = wrap_int(int(value))
            store(F, R, value)
            return value

        return compound

    def _compile_store(
        self, target: ast.Expression
    ) -> Callable[["Frame", Runtime, Any], None]:
        if isinstance(target, ast.Name):
            name = target.identifier
            slot = self._resolve(name)
            method = self.method_name
            if slot is None:
                def store_undefined(F: Frame, R: Runtime, value: Any) -> None:
                    raise JavaRuntimeError(f"undefined variable {name}")

                return store_undefined
            sindex: int = slot
            if slot in self.checked:
                def store_checked(F: Frame, R: Runtime, value: Any) -> None:
                    current = F[sindex]
                    if current is _UNDEF:
                        # tree-walker: env.lookup fails before assign
                        raise JavaRuntimeError(f"undefined variable {name}")
                    if type(current) is float and type(value) is int:
                        value = float(value)
                    F[sindex] = value
                    tracer = R.tracer
                    if tracer is not None:
                        tracer.on_assign(method, name, value)

                return store_checked

            def store_slot(F: Frame, R: Runtime, value: Any) -> None:
                if type(F[sindex]) is float and type(value) is int:
                    value = float(value)
                F[sindex] = value
                tracer = R.tracer
                if tracer is not None:
                    tracer.on_assign(method, name, value)

            return store_slot
        if isinstance(target, ast.ArrayAccess):
            array = self._compile_expr(target.array)
            index = self._compile_expr(target.index)
            array_name = (
                target.array.identifier
                if isinstance(target.array, ast.Name) else None
            )
            method = self.method_name

            def store_element(F: Frame, R: Runtime, value: Any) -> None:
                array_value = array(F, R)
                index_value = index(F, R)
                if type(index_value) is not int:
                    index_value = _int_index(index_value)
                if not isinstance(array_value, JavaArray):
                    raise JavaRuntimeError("NullPointerException: not an array")
                if array_value.element_type in ("double", "float") and \
                        type(value) is int:
                    value = float(value)
                elements = array_value.elements
                if 0 <= index_value < len(elements):
                    elements[index_value] = value
                else:
                    array_value.set(index_value, value)
                if array_name is not None:
                    tracer = R.tracer
                    if tracer is not None:
                        tracer.on_assign(method, array_name, array_value)

            return store_element
        kind = type(target).__name__

        def store_invalid(F: Frame, R: Runtime, value: Any) -> None:
            raise JavaRuntimeError(f"cannot assign to {kind}")

        return store_invalid

    def _compile_cast(self, node: ast.Cast) -> ExprFn:
        expression = self._compile_expr(node.expression)
        name = node.type.name
        if name in ("int", "short", "byte", "long"):
            def cast_int(F: Frame, R: Runtime) -> Any:
                value = expression(F, R)
                if type(value) is int:
                    return value if _INT_MIN <= value <= _INT_MAX \
                        else wrap_int(value)
                number = numeric_value(value)
                if number is None:
                    raise JavaRuntimeError(
                        f"cannot cast {java_str(value)} to {name}"
                    )
                return wrap_int(int(number))

            return cast_int
        if name in ("double", "float"):
            def cast_float(F: Frame, R: Runtime) -> Any:
                value = expression(F, R)
                number = numeric_value(value)
                if number is None:
                    raise JavaRuntimeError(
                        f"cannot cast {java_str(value)} to {name}"
                    )
                return float(number)

            return cast_float
        if name == "char":
            def cast_char(F: Frame, R: Runtime) -> Any:
                value = expression(F, R)
                number = numeric_value(value)
                if number is None:
                    raise JavaRuntimeError("cannot cast to char")
                return JavaChar(chr(int(number) & 0xFFFF))

            return cast_char
        return expression


def _unary_value(operator: str, value: Any) -> Any:
    """Non-lvalue unary semantics, matching the tree-walker exactly."""
    if operator == "!":
        if value is True:
            return False
        if value is False:
            return True
        return _raise_condition(value)
    number = numeric_value(value)
    if number is None:
        raise JavaRuntimeError(
            f"cannot apply {operator} to {java_str(value)}"
        )
    if operator == "-":
        return wrap_int(-number) if isinstance(number, int) else -number
    if operator == "+":
        return number
    if operator == "~":
        if not isinstance(number, int):
            raise JavaRuntimeError("~ requires an integer")
        return wrap_int(~number)
    raise JavaRuntimeError(f"unknown unary operator {operator}")


def _float_coerced(fn: ExprFn) -> ExprFn:
    """Declared double/float: int initializers widen (bools excluded)."""

    def coerced(F: Frame, R: Runtime) -> Any:
        value = fn(F, R)
        if type(value) is int:
            return float(value)
        return value

    return coerced


def _char_coerced(fn: ExprFn) -> ExprFn:
    """Declared int/short/byte: char initializers narrow to code points."""

    def coerced(F: Frame, R: Runtime) -> Any:
        value = fn(F, R)
        if type(value) is JavaChar:
            return value.code
        return value

    return coerced


def _binop_closure(
    operator: str,
    left: ExprFn,
    right: ExprFn,
    rconst: int | None,
    left_box: tuple[Any] | None,
    right_box: tuple[Any] | None,
) -> ExprFn:
    """A binary-operator closure with ``int`` fast paths.

    Every fast path computes exactly what :func:`_binary_value` would;
    anything else falls through to it, so semantics cannot drift.
    """
    if operator == "+":
        if rconst is not None:
            def add_const(F: Frame, R: Runtime) -> Any:
                value = left(F, R)
                if type(value) is int:
                    result = value + rconst
                    if _INT_MIN <= result <= _INT_MAX:
                        return result
                    return wrap_int(result)
                return _binary_value("+", value, rconst)

            return add_const
        if left_box is not None and type(left_box[0]) is str:
            prefix_text = left_box[0]

            def concat_left(F: Frame, R: Runtime) -> Any:
                return prefix_text + java_str(right(F, R))

            return concat_left
        if right_box is not None and type(right_box[0]) is str:
            suffix_text = right_box[0]

            def concat_right(F: Frame, R: Runtime) -> Any:
                return java_str(left(F, R)) + suffix_text

            return concat_right

        def add(F: Frame, R: Runtime) -> Any:
            lhs = left(F, R)
            rhs = right(F, R)
            if type(lhs) is int and type(rhs) is int:
                result = lhs + rhs
                if _INT_MIN <= result <= _INT_MAX:
                    return result
                return wrap_int(result)
            if type(lhs) is str and type(rhs) is str:
                return lhs + rhs
            return _binary_value("+", lhs, rhs)

        return add
    if operator == "-":
        if rconst is not None:
            def sub_const(F: Frame, R: Runtime) -> Any:
                value = left(F, R)
                if type(value) is int:
                    result = value - rconst
                    if _INT_MIN <= result <= _INT_MAX:
                        return result
                    return wrap_int(result)
                return _binary_value("-", value, rconst)

            return sub_const

        def sub(F: Frame, R: Runtime) -> Any:
            lhs = left(F, R)
            rhs = right(F, R)
            if type(lhs) is int and type(rhs) is int:
                result = lhs - rhs
                if _INT_MIN <= result <= _INT_MAX:
                    return result
                return wrap_int(result)
            return _binary_value("-", lhs, rhs)

        return sub
    if operator == "*":
        if rconst is not None:
            def mul_const(F: Frame, R: Runtime) -> Any:
                value = left(F, R)
                if type(value) is int:
                    result = value * rconst
                    if _INT_MIN <= result <= _INT_MAX:
                        return result
                    return wrap_int(result)
                return _binary_value("*", value, rconst)

            return mul_const

        def mul(F: Frame, R: Runtime) -> Any:
            lhs = left(F, R)
            rhs = right(F, R)
            if type(lhs) is int and type(rhs) is int:
                result = lhs * rhs
                if _INT_MIN <= result <= _INT_MAX:
                    return result
                return wrap_int(result)
            return _binary_value("*", lhs, rhs)

        return mul
    if operator == "/":
        if rconst is not None:
            def div_const(F: Frame, R: Runtime) -> Any:
                value = left(F, R)
                if type(value) is int:
                    return java_div(value, rconst)
                return _binary_value("/", value, rconst)

            return div_const

        def div(F: Frame, R: Runtime) -> Any:
            lhs = left(F, R)
            rhs = right(F, R)
            if type(lhs) is int and type(rhs) is int:
                return java_div(lhs, rhs)
            return _binary_value("/", lhs, rhs)

        return div
    if operator == "%":
        if rconst is not None:
            def rem_const(F: Frame, R: Runtime) -> Any:
                value = left(F, R)
                if type(value) is int:
                    return java_rem(value, rconst)
                return _binary_value("%", value, rconst)

            return rem_const

        def rem(F: Frame, R: Runtime) -> Any:
            lhs = left(F, R)
            rhs = right(F, R)
            if type(lhs) is int and type(rhs) is int:
                return java_rem(lhs, rhs)
            return _binary_value("%", lhs, rhs)

        return rem
    if operator in ("<", "<=", ">", ">="):
        if rconst is not None:
            if operator == "<":
                def lt_const(F: Frame, R: Runtime) -> Any:
                    value = left(F, R)
                    if type(value) is int:
                        return value < rconst
                    return _binary_value("<", value, rconst)

                return lt_const
            if operator == "<=":
                def le_const(F: Frame, R: Runtime) -> Any:
                    value = left(F, R)
                    if type(value) is int:
                        return value <= rconst
                    return _binary_value("<=", value, rconst)

                return le_const
            if operator == ">":
                def gt_const(F: Frame, R: Runtime) -> Any:
                    value = left(F, R)
                    if type(value) is int:
                        return value > rconst
                    return _binary_value(">", value, rconst)

                return gt_const

            def ge_const(F: Frame, R: Runtime) -> Any:
                value = left(F, R)
                if type(value) is int:
                    return value >= rconst
                return _binary_value(">=", value, rconst)

            return ge_const
        if operator == "<":
            def lt(F: Frame, R: Runtime) -> Any:
                lhs = left(F, R)
                rhs = right(F, R)
                if type(lhs) is int and type(rhs) is int:
                    return lhs < rhs
                return _binary_value("<", lhs, rhs)

            return lt
        if operator == "<=":
            def le(F: Frame, R: Runtime) -> Any:
                lhs = left(F, R)
                rhs = right(F, R)
                if type(lhs) is int and type(rhs) is int:
                    return lhs <= rhs
                return _binary_value("<=", lhs, rhs)

            return le
        if operator == ">":
            def gt(F: Frame, R: Runtime) -> Any:
                lhs = left(F, R)
                rhs = right(F, R)
                if type(lhs) is int and type(rhs) is int:
                    return lhs > rhs
                return _binary_value(">", lhs, rhs)

            return gt

        def ge(F: Frame, R: Runtime) -> Any:
            lhs = left(F, R)
            rhs = right(F, R)
            if type(lhs) is int and type(rhs) is int:
                return lhs >= rhs
            return _binary_value(">=", lhs, rhs)

        return ge
    if operator == "==":
        if rconst is not None:
            def eq_const(F: Frame, R: Runtime) -> Any:
                value = left(F, R)
                if type(value) is int:
                    return value == rconst
                return _java_equals(value, rconst)

            return eq_const

        def eq(F: Frame, R: Runtime) -> Any:
            lhs = left(F, R)
            rhs = right(F, R)
            if type(lhs) is int and type(rhs) is int:
                return lhs == rhs
            return _java_equals(lhs, rhs)

        return eq
    if operator == "!=":
        if rconst is not None:
            def ne_const(F: Frame, R: Runtime) -> Any:
                value = left(F, R)
                if type(value) is int:
                    return value != rconst
                return not _java_equals(value, rconst)

            return ne_const

        def ne(F: Frame, R: Runtime) -> Any:
            lhs = left(F, R)
            rhs = right(F, R)
            if type(lhs) is int and type(rhs) is int:
                return lhs != rhs
            return not _java_equals(lhs, rhs)

        return ne

    def generic(F: Frame, R: Runtime) -> Any:
        return _binary_value(operator, left(F, R), right(F, R))

    return generic


# ----------------------------------------------------------------------
# program compilation + cache


def _compile_program(unit: ast.CompilationUnit) -> CompiledProgram:
    program = CompiledProgram()
    # two-phase: register every method first (duplicate (name, arity)
    # pairs overwrite, last wins — the tree-walker's dict behavior), then
    # compile bodies so call sites can bind callees directly
    declarations: dict[tuple[str, int], ast.MethodDecl] = {}
    for method in unit.methods():
        declarations[(method.name, method.arity)] = method
    for key, method in declarations.items():
        program.methods[key] = CompiledMethod(
            method.name,
            tuple(parameter.name for parameter in method.parameters),
        )
    for key, method in declarations.items():
        _MethodCompiler(program, program.methods[key], method)
    return program


class _ProgramCache:
    """Source-keyed bounded cache of compiled programs (FIFO eviction)."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._programs: dict[str, CompiledProgram] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> CompiledProgram | None:
        with self._lock:
            return self._programs.get(key)

    def put(self, key: str, program: CompiledProgram) -> None:
        with self._lock:
            if key in self._programs:
                return
            if len(self._programs) >= self.capacity:
                del self._programs[next(iter(self._programs))]
            self._programs[key] = program

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._programs),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }


_PROGRAM_CACHE = _ProgramCache()

#: Memo attribute stashed on the CompilationUnit itself: the same parse
#: always maps to the same program, no key needed.
_MEMO_ATTR = "_compiled_program"


def compile_unit(
    unit: ast.CompilationUnit, cache_key: str | None = None
) -> CompiledProgram:
    """Compile ``unit`` once; reuse via unit memo and source-keyed cache.

    ``cache_key`` should be the submission's source text (the same key
    the frontend cache uses): duplicate-heavy cohorts and repeated
    re-verification of the same source then share one compiled program
    across separate parses.  Cache traffic is reported through the
    ambient collector as ``interp.compile_hits`` / ``interp.compile_misses``.
    """
    program = getattr(unit, _MEMO_ATTR, None)
    if program is not None:
        _PROGRAM_CACHE.hits += 1
        count("interp.compile_hits")
        return program  # type: ignore[no-any-return]
    if cache_key is not None:
        cached = _PROGRAM_CACHE.get(cache_key)
        if cached is not None:
            _PROGRAM_CACHE.hits += 1
            count("interp.compile_hits")
            try:
                setattr(unit, _MEMO_ATTR, cached)
            except AttributeError:  # pragma: no cover - slots guard
                pass
            return cached
    _PROGRAM_CACHE.misses += 1
    count("interp.compile_misses")
    program = _compile_program(unit)
    try:
        setattr(unit, _MEMO_ATTR, program)
    except AttributeError:  # pragma: no cover - slots guard
        pass
    if cache_key is not None:
        _PROGRAM_CACHE.put(cache_key, program)
    return program


def program_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the module-level program cache."""
    return _PROGRAM_CACHE.stats()


def clear_program_cache() -> None:
    """Drop all cached programs and reset counters (test isolation)."""
    _PROGRAM_CACHE.clear()


def cost_of(program: CompiledProgram, runtime: Runtime) -> CostCounters:
    """Snapshot a finished runtime's counters as :class:`CostCounters`."""
    return CostCounters(
        steps=runtime.steps,
        calls=runtime.calls,
        allocations=runtime.allocations,
        loop_iterations=dict(zip(program.loop_ids, runtime.loop_iters)),
    )
