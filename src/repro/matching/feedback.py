"""Feedback comments and the ProvideFeedback step of Algorithm 2.

A :class:`FeedbackComment` is one unit of personalized feedback delivered
to the student: it carries a status (``Correct``, ``Incorrect`` or
``NotExpected``), the pattern- or constraint-level message, and node-level
details instantiated with the variable names the student actually used.
The Λ cost function (Equation 3) scores a comment set so Algorithm 2 can
pick the best method assignment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.matching.embeddings import Embedding
from repro.patterns.model import Pattern
from repro.patterns.template import render_feedback


class FeedbackStatus(enum.Enum):
    """Outcome categories used by Algorithm 2 and the Λ cost function."""

    CORRECT = "Correct"
    INCORRECT = "Incorrect"
    NOT_EXPECTED = "NotExpected"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FeedbackComment:
    """One delivered feedback item.

    ``source`` names the pattern or constraint that produced the comment;
    ``details`` holds node-level messages (already instantiated with the
    student's variable names via γ).
    """

    source: str
    kind: str  # "pattern" | "constraint" | "structure"
    status: FeedbackStatus
    message: str
    details: tuple[str, ...] = ()

    def render(self) -> str:
        lines = [f"[{self.status}] {self.message}" if self.message
                 else f"[{self.status}] {self.source}"]
        for detail in self.details:
            lines.append(f"  - {detail}")
        return "\n".join(lines)


def cost(comments: list[FeedbackComment]) -> float:
    """Λ(B) from Equation 3: Correct=1, Incorrect=0.5, NotExpected=0."""
    total = 0.0
    for comment in comments:
        if comment.status is FeedbackStatus.CORRECT:
            total += 1.0
        elif comment.status is FeedbackStatus.INCORRECT:
            total += 0.5
    return total


def provide_feedback(
    embeddings: list[Embedding],
    pattern: Pattern,
    expected_count: int | None = 1,
) -> FeedbackComment:
    """Turn a pattern's embeddings into one feedback comment.

    ``expected_count`` is the paper's ``t̄(q, p)``: the number of
    occurrences the instructor expects.  ``0`` encodes a *bad pattern*
    (the student should avoid it); ``None`` relaxes the count to
    "at least one" for patterns whose embedding multiplicity is not
    meaningful.
    """
    # occurrences are counted structurally: distinct *sets* of matched
    # graph nodes.  Several ι/γ variants over the same nodes (e.g. the
    # two symmetric bindings of the Fibonacci seeds) are one occurrence.
    # Patterns with ``count_nodes`` instead count distinct (anchor
    # nodes, γ) pairs, so several data-flow paths into the same anchor
    # collapse.  A *bad* pattern (t̄ = 0) only counts exact matches:
    # flagging a student for approximately resembling a forbidden idiom
    # would be noise, not feedback.
    if expected_count == 0:
        counted = [e for e in embeddings if e.is_fully_correct]
    else:
        counted = embeddings
    if pattern.count_nodes is None:
        count = len({frozenset(v for _, v in e.iota) for e in counted})
    else:
        anchors = set(pattern.count_nodes)
        count = len({
            (
                frozenset(v for u, v in e.iota if u in anchors),
                e.gamma,
            )
            for e in counted
        })
    if expected_count is None:
        count_matches = count >= 1
    else:
        count_matches = count == expected_count
    if not count_matches:
        if expected_count == 0:
            # bad pattern detected: feedback_missing carries the warning
            message = pattern.feedback_missing or (
                f"Your code uses '{pattern.description}', which this "
                "assignment asks you to avoid."
            )
            message = render_feedback(message, embeddings[0].gamma_map)
        elif count == 0:
            message = pattern.feedback_missing or (
                f"Could not find '{pattern.description}' in your code."
            )
        else:
            expected_text = (
                "at least one" if expected_count is None else str(expected_count)
            )
            message = (
                f"Found {count} occurrences of '{pattern.description}' "
                f"but expected {expected_text}."
            )
        return FeedbackComment(
            source=pattern.name,
            kind="pattern",
            status=FeedbackStatus.NOT_EXPECTED,
            message=message,
        )

    if expected_count == 0:
        # the bad pattern is absent, as it should be; the pattern's own
        # feedback strings describe the found/missing cases, so a
        # dedicated message is used here
        return FeedbackComment(
            source=pattern.name,
            kind="pattern",
            status=FeedbackStatus.CORRECT,
            message=f"Good: your code avoids '{pattern.description}'.",
        )

    # an occurrence (set of matched graph nodes) is correct when at least
    # one of its ι/γ variants matched every node exactly; the pattern is
    # Correct when every occurrence is
    occurrences: dict[frozenset[int], bool] = {}
    for e in embeddings:
        key = frozenset(v for _, v in e.iota)
        occurrences[key] = occurrences.get(key, False) or e.is_fully_correct
    all_correct = all(occurrences.values())
    status = FeedbackStatus.CORRECT if all_correct else FeedbackStatus.INCORRECT
    # choose the most-correct embedding to instantiate messages: for a
    # Correct outcome any fully-correct embedding works; for Incorrect we
    # explain the closest match (fewest approximate nodes)
    best = min(embeddings, key=lambda e: len(e.incorrect_nodes))
    gamma = best.gamma_map
    details = _node_details(pattern, best)
    if all_correct:
        message = render_feedback(pattern.feedback_present, gamma)
    else:
        message = (
            f"We recognized '{pattern.description}' in your code, "
            "but part of it is incorrect:"
        )
    return FeedbackComment(
        source=pattern.name,
        kind="pattern",
        status=status,
        message=message,
        details=tuple(details),
    )


def _node_details(pattern: Pattern, embedding: Embedding) -> list[str]:
    details: list[str] = []
    gamma = embedding.gamma_map
    for node_id, correct in embedding.marks:
        node = pattern.node(node_id)
        template = node.feedback_correct if correct else node.feedback_incorrect
        if template:
            details.append(render_feedback(template, gamma))
    return details
