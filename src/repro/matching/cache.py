"""Engine-level ``match_pattern`` result cache.

Algorithm 2 asks for the same (pattern, graph) match many times: every
candidate method assignment re-examines the same expected method against
the same submission method, a pattern shared by two expected methods
(e.g. ``factorial-loop`` appearing both as a required pattern of
``fact`` and a *bad* pattern of ``lab3p1``) is matched once per use, and
every variant of a pattern group is re-matched per assignment.  Since
patterns and EPDGs are immutable once built, the embeddings are a pure
function of ``(pattern, graph, order)`` and can be computed exactly
once per submission.

The cache is *ambient* (a :class:`contextvars.ContextVar`), mirroring
:mod:`repro.instrumentation`: threading a cache object through
``match_group`` → ``match_pattern`` would churn every signature in the
matching layer, and the ambient form is safe under the batch pipeline's
thread pool because each worker task runs in its own context.

Keys are object identities — patterns are not hashable (mutable
dataclasses) and deep-hashing graphs would cost more than matching.
The cache holds strong references to its keys, so an id can never be
recycled while its entry is alive; a cache is scoped to one submission
(installed by ``match_graphs``), keeping it small and making
invalidation structural, exactly like the batch pipeline's result
cache.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.instrumentation import count

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.matching.embeddings import Embedding
    from repro.patterns.model import Pattern
    from repro.pdg.graph import Epdg

_cache: contextvars.ContextVar["MatchCache | None"] = contextvars.ContextVar(
    "repro_match_cache", default=None
)


class MatchCache:
    """Memo of ``match_pattern`` results keyed by ``(pattern, graph, order)``."""

    __slots__ = ("_entries", "_pins", "hits", "misses")

    def __init__(self) -> None:
        self._entries: dict[tuple[int, int, str], list] = {}
        # strong references keeping keyed objects (and thus ids) alive
        self._pins: list[object] = []
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, pattern: "Pattern", graph: "Epdg", order: str):
        found = self._entries.get((id(pattern), id(graph), order))
        if found is None:
            self.misses += 1
            count("match.cache_misses")
        else:
            self.hits += 1
            count("match.cache_hits")
        return found

    def put(
        self,
        pattern: "Pattern",
        graph: "Epdg",
        order: str,
        embeddings: "list[Embedding]",
    ) -> None:
        self._entries[(id(pattern), id(graph), order)] = embeddings
        self._pins.append(pattern)
        self._pins.append(graph)


def active_match_cache() -> MatchCache | None:
    """The cache currently installed in this context, if any."""
    return _cache.get()


@contextmanager
def match_caching(cache: MatchCache | None = None) -> Iterator[MatchCache]:
    """Install ``cache`` (or a fresh one) as the ambient match cache.

    Nesting is cooperative: if a cache is already active and none is
    passed explicitly, the existing cache is reused so an outer scope
    (e.g. a benchmark timing several submissions) can share one cache
    across inner ``match_graphs`` calls.
    """
    if cache is None:
        existing = _cache.get()
        if existing is not None:
            yield existing
            return
        cache = MatchCache()
    token = _cache.set(cache)
    try:
        yield cache
    finally:
        _cache.reset(token)
