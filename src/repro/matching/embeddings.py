"""Embeddings of patterns in EPDGs (Definition 7, extended).

An embedding records the node mapping ι, the variable mapping γ, and —
our extension from Algorithm 1 — a per-node *correctness mark*: a pattern
node matched through its exact expression ``r`` is correct, one matched
only through its approximate expression ``r̂`` is incorrect.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Embedding:
    """One solution of a pattern over an EPDG.

    Attributes
    ----------
    iota:
        Maps pattern node ids to graph node ids (ι: U → V).
    gamma:
        Maps pattern variable names to submission variable names (γ).
    marks:
        Maps pattern node ids to ``True`` (matched exactly, correct) or
        ``False`` (matched approximately, incorrect).
    """

    iota: tuple[tuple[int, int], ...]
    gamma: tuple[tuple[str, str], ...]
    marks: tuple[tuple[int, bool], ...]

    @classmethod
    def build(
        cls,
        iota: dict[int, int],
        gamma: dict[str, str],
        marks: dict[int, bool],
    ) -> "Embedding":
        return cls(
            iota=tuple(sorted(iota.items())),
            gamma=tuple(sorted(gamma.items())),
            marks=tuple(sorted(marks.items())),
        )

    @property
    def iota_map(self) -> dict[int, int]:
        return dict(self.iota)

    @property
    def gamma_map(self) -> dict[str, str]:
        return dict(self.gamma)

    @property
    def marks_map(self) -> dict[int, bool]:
        return dict(self.marks)

    @property
    def is_fully_correct(self) -> bool:
        """True when every pattern node matched its exact expression."""
        return all(correct for _, correct in self.marks)

    @property
    def incorrect_nodes(self) -> tuple[int, ...]:
        """Pattern node ids that only matched approximately."""
        return tuple(uid for uid, correct in self.marks if not correct)

    def graph_node(self, pattern_node_id: int) -> int:
        """The graph node id a pattern node is mapped to."""
        return self.iota_map[pattern_node_id]

    def __str__(self) -> str:
        iota = ", ".join(f"u{u}=v{v}" for u, v in self.iota)
        gamma = ", ".join(f"{x}->{y}" for x, y in self.gamma)
        return f"Embedding({{{iota}}}, {{{gamma}}})"
