"""Algorithm 2: best-effort submission matching with multiple methods.

Given a submission and the instructor's specification — per expected
method: patterns (with occurrence counts ``t̄``) and constraints — this
module extracts one EPDG per submission method, tries every injective
assignment of expected methods to submission methods, grades each
assignment, and keeps the combination maximizing the Λ cost function.

When the assignment enforces method headers (the common MOOC practice the
paper recommends), methods are bound by name directly and submissions
missing a required header receive a structural ``NotExpected`` comment,
mirroring "we will not provide feedback to those submissions that do not
adhere to the specification".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import permutations

from repro.instrumentation import phase
from repro.java import ast
from repro.matching.constraints import check_constraint
from repro.matching.embeddings import Embedding
from repro.matching.groups import match_group
from repro.matching.feedback import (
    FeedbackComment,
    FeedbackStatus,
    cost,
    provide_feedback,
)
from repro.matching.pattern_matching import match_pattern
from repro.patterns.groups import PatternGroup
from repro.patterns.model import Constraint, Pattern
from repro.pdg.builder import extract_all_epdgs
from repro.pdg.graph import Epdg

#: Cap on expected-to-existing method assignments explored (the paper
#: notes header enforcement keeps this number tiny in practice).
_MAX_ASSIGNMENTS = 5040  # 7!


@dataclass
class ExpectedMethod:
    """The instructor's expectation for one method of the assignment.

    ``patterns`` entries pair a :class:`~repro.patterns.model.Pattern`
    *or* a :class:`~repro.patterns.groups.PatternGroup` (several
    variants with the same semantics) with the expected occurrence
    count ``t̄``.
    """

    name: str
    patterns: list[tuple[Pattern | PatternGroup, int | None]] = field(
        default_factory=list
    )
    constraints: list[Constraint] = field(default_factory=list)

    def pattern_names(self) -> list[str]:
        return [pattern.name for pattern, _ in self.patterns]


@dataclass
class MatchOutcome:
    """Result of Algorithm 2 on one submission."""

    comments: list[FeedbackComment]
    method_assignment: dict[str, str]
    score: float
    embeddings: dict[str, dict[str, list[Embedding]]] = field(
        default_factory=dict
    )

    @property
    def is_fully_correct(self) -> bool:
        """True when every delivered comment is ``Correct``."""
        return bool(self.comments) and all(
            c.status is FeedbackStatus.CORRECT for c in self.comments
        )

    def render(self) -> str:
        lines = []
        for expected, actual in sorted(self.method_assignment.items()):
            if expected != actual:
                lines.append(f"(expected method {expected} ~ your {actual})")
        lines.extend(comment.render() for comment in self.comments)
        return "\n".join(lines)


def match_submission(
    unit: ast.CompilationUnit,
    expected_methods: list[ExpectedMethod],
    enforce_headers: bool = True,
    synthesize_else_conditions: bool = False,
) -> MatchOutcome:
    """Run Algorithm 2 over a parsed submission."""
    graphs = extract_all_epdgs(unit, synthesize_else_conditions)
    return match_graphs(graphs, expected_methods, enforce_headers)


def match_graphs(
    graphs: dict[str, Epdg],
    expected_methods: list[ExpectedMethod],
    enforce_headers: bool = True,
) -> MatchOutcome:
    """Algorithm 2 over pre-built EPDGs (one per submission method)."""
    if enforce_headers:
        assignments = [_assignment_by_name(graphs, expected_methods)]
    else:
        assignments = list(_all_assignments(graphs, expected_methods))
        if not assignments:
            assignments = [_assignment_by_name(graphs, expected_methods)]
    best: MatchOutcome | None = None
    for assignment in assignments:
        outcome = _grade_assignment(graphs, expected_methods, assignment)
        if best is None or outcome.score > best.score:
            best = outcome
    assert best is not None  # at least one assignment is always graded
    return best


def _assignment_by_name(
    graphs: dict[str, Epdg], expected_methods: list[ExpectedMethod]
) -> dict[str, str | None]:
    return {
        q.name: (q.name if q.name in graphs else None)
        for q in expected_methods
    }


def _all_assignments(
    graphs: dict[str, Epdg], expected_methods: list[ExpectedMethod]
):
    """All injective assignments of expected methods to existing methods."""
    method_names = sorted(graphs)
    if len(method_names) < len(expected_methods):
        return
    count = 0
    for arrangement in permutations(method_names, len(expected_methods)):
        count += 1
        if count > _MAX_ASSIGNMENTS:
            return
        yield {
            q.name: actual
            for q, actual in zip(expected_methods, arrangement)
        }


def _grade_assignment(
    graphs: dict[str, Epdg],
    expected_methods: list[ExpectedMethod],
    assignment: dict[str, str | None],
) -> MatchOutcome:
    comments: list[FeedbackComment] = []
    all_embeddings: dict[str, dict[str, list[Embedding]]] = {}
    for q in expected_methods:
        actual = assignment.get(q.name)
        if actual is None:
            comments.append(
                FeedbackComment(
                    source=q.name,
                    kind="structure",
                    status=FeedbackStatus.NOT_EXPECTED,
                    message=(
                        f"Your submission does not declare the required "
                        f"method '{q.name}'; please follow the assignment "
                        "header."
                    ),
                )
            )
            continue
        graph = graphs[actual]
        embeddings: dict[str, list[Embedding]] = {}
        statuses: dict[str, FeedbackStatus] = {}
        # 2.1: match every pattern (or variant group) of this method
        with phase("pattern_match"):
            for pattern, expected_count in q.patterns:
                if isinstance(pattern, PatternGroup):
                    group_match = match_group(pattern, graph)
                    embeddings[pattern.name] = group_match.translated
                    comment = provide_feedback(
                        group_match.embeddings,
                        group_match.pattern,
                        expected_count,
                    )
                    if comment.source != pattern.name:
                        # constraints and statuses key on the group's
                        # (primary) name, whichever variant matched
                        comment = replace(comment, source=pattern.name)
                else:
                    found = match_pattern(pattern, graph)
                    embeddings[pattern.name] = found
                    comment = provide_feedback(found, pattern, expected_count)
                statuses[pattern.name] = comment.status
                comments.append(comment)
        # 2.2: check the constraints correlating those patterns
        with phase("constraint_match"):
            for constraint in q.constraints:
                comments.append(
                    check_constraint(constraint, graph, embeddings, statuses)
                )
        all_embeddings[q.name] = embeddings
    return MatchOutcome(
        comments=comments,
        method_assignment={
            q: a for q, a in assignment.items() if a is not None
        },
        score=cost(comments),
        embeddings=all_embeddings,
    )
