"""Algorithm 2: best-effort submission matching with multiple methods.

Given a submission and the instructor's specification — per expected
method: patterns (with occurrence counts ``t̄``) and constraints — this
module extracts one EPDG per submission method, assigns expected methods
to submission methods, grades the assignment, and returns the outcome
maximizing the Λ cost function.

When the assignment enforces method headers (the common MOOC practice the
paper recommends), methods are bound by name directly and submissions
missing a required header receive a structural ``NotExpected`` comment,
mirroring "we will not provide feedback to those submissions that do not
adhere to the specification".

Without header enforcement the paper sweeps every injective assignment —
up to ``P(m, q)`` permutations, each re-running all pattern matches.
The optimized engine exploits that Λ is *additive per expected method*:
the comments (and therefore the Λ contribution) of pairing expected
method ``q`` with submission method ``m`` do not depend on how the other
methods are paired.  So each (expected, submission) pair is graded
exactly once behind a memo, and the best assignment is the solution of a
**maximum-weight bipartite assignment** problem over the ``q × m`` score
matrix — solved with an exact subset-memo DP whose tie-breaking
reproduces the permutation sweep's first-maximum (lexicographically
smallest arrangement over the sorted method names), keeping the output
byte-identical to the sweep.  When the sweep would have been truncated
by :data:`_MAX_ASSIGNMENTS` (so equivalence cannot be guaranteed), the
engine falls back to the capped sweep — still over memoized pair grades
— and flags the outcome as truncated.

``strategy="permutation"`` preserves the unmemoized sweep as the naive
reference path for benchmarks and differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import permutations

from repro.instrumentation import count, phase
from repro.java import ast
from repro.matching.cache import match_caching
from repro.matching.constraints import check_constraint
from repro.matching.embeddings import Embedding
from repro.matching.groups import match_group
from repro.matching.feedback import (
    FeedbackComment,
    FeedbackStatus,
    cost,
    provide_feedback,
)
from repro.matching.pattern_matching import match_pattern
from repro.patterns.groups import PatternGroup
from repro.patterns.model import Constraint, Pattern
from repro.pdg.builder import extract_all_epdgs
from repro.pdg.graph import Epdg

#: Cap on expected-to-existing method assignments explored by the sweep
#: (the paper notes header enforcement keeps this number tiny in
#: practice).  The bipartite solver never needs the cap; it only applies
#: to the legacy sweep and the truncated-regime fallback.
_MAX_ASSIGNMENTS = 5040  # 7!

#: Assignment-solving strategies accepted by :func:`match_graphs`.
STRATEGIES = ("bipartite", "permutation")


@dataclass
class ExpectedMethod:
    """The instructor's expectation for one method of the assignment.

    ``patterns`` entries pair a :class:`~repro.patterns.model.Pattern`
    *or* a :class:`~repro.patterns.groups.PatternGroup` (several
    variants with the same semantics) with the expected occurrence
    count ``t̄``.
    """

    name: str
    patterns: list[tuple[Pattern | PatternGroup, int | None]] = field(
        default_factory=list
    )
    constraints: list[Constraint] = field(default_factory=list)

    def pattern_names(self) -> list[str]:
        return [pattern.name for pattern, _ in self.patterns]


@dataclass
class MatchOutcome:
    """Result of Algorithm 2 on one submission."""

    comments: list[FeedbackComment]
    method_assignment: dict[str, str]
    score: float
    embeddings: dict[str, dict[str, list[Embedding]]] = field(
        default_factory=dict
    )
    #: True when a safety cap cut grading short — either Algorithm 1's
    #: :data:`~repro.matching.pattern_matching.MAX_EMBEDDINGS` valve or
    #: the method-assignment sweep's :data:`_MAX_ASSIGNMENTS` cap — so
    #: the feedback may be based on incomplete search results.
    truncated: bool = False

    @property
    def is_fully_correct(self) -> bool:
        """True when every delivered comment is ``Correct``."""
        return bool(self.comments) and all(
            c.status is FeedbackStatus.CORRECT for c in self.comments
        )

    def render(self) -> str:
        lines = []
        for expected, actual in sorted(self.method_assignment.items()):
            if expected != actual:
                lines.append(f"(expected method {expected} ~ your {actual})")
        lines.extend(comment.render() for comment in self.comments)
        return "\n".join(lines)


def match_submission(
    unit: ast.CompilationUnit,
    expected_methods: list[ExpectedMethod],
    enforce_headers: bool = True,
    synthesize_else_conditions: bool = False,
    strategy: str = "bipartite",
    order: str = "connectivity",
) -> MatchOutcome:
    """Run Algorithm 2 over a parsed submission."""
    graphs = extract_all_epdgs(unit, synthesize_else_conditions)
    return match_graphs(
        graphs, expected_methods, enforce_headers,
        strategy=strategy, order=order,
    )


def match_graphs(
    graphs: dict[str, Epdg],
    expected_methods: list[ExpectedMethod],
    enforce_headers: bool = True,
    strategy: str = "bipartite",
    order: str = "connectivity",
) -> MatchOutcome:
    """Algorithm 2 over pre-built EPDGs (one per submission method).

    ``strategy`` selects the assignment engine: ``"bipartite"`` (default
    — memoized pair grading, engine-level match cache, and the exact
    assignment DP) or ``"permutation"`` (the naive reference: the full
    unmemoized sweep, re-grading every pair per assignment).  Both
    produce byte-identical outcomes; the matcher benchmark measures the
    cost difference.  ``order`` is forwarded to Algorithm 1.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if strategy == "permutation":
        grader = _PairGrader(graphs, expected_methods, order, memoize=False)
        return _sweep_assignments(graphs, expected_methods,
                                  enforce_headers, grader)
    grader = _PairGrader(graphs, expected_methods, order, memoize=True)
    with match_caching():
        if enforce_headers:
            return grader.outcome(
                _assignment_by_name(graphs, expected_methods)
            )
        method_names = sorted(graphs)
        if len(method_names) < len(expected_methods):
            return grader.outcome(
                _assignment_by_name(graphs, expected_methods)
            )
        if _permutation_count(
            len(method_names), len(expected_methods)
        ) > _MAX_ASSIGNMENTS:
            # equivalence with the (truncated) sweep cannot be kept by
            # the full DP, so run the capped sweep on memoized grades
            return _sweep_assignments(graphs, expected_methods,
                                      enforce_headers, grader)
        with phase("assignment_solve"):
            weights = [
                [
                    grader.grade(index, actual).score
                    for actual in method_names
                ]
                for index in range(len(expected_methods))
            ]
            arrangement = _solve_assignment(weights)
        assignment: dict[str, str | None] = {
            q.name: method_names[j]
            for q, j in zip(expected_methods, arrangement)
        }
        return grader.outcome(assignment)


def _permutation_count(methods: int, expected: int) -> int:
    total = 1
    for i in range(expected):
        total *= methods - i
    return total


def _solve_assignment(weights: list[list[float]]) -> tuple[int, ...]:
    """Maximum-weight injective assignment, sweep-equivalent tie-break.

    ``weights[i][j]`` is the Λ contribution of pairing expected method
    ``i`` with submission method ``j``.  Returns the arrangement
    (method index per expected method) with maximal total weight; among
    maxima, the lexicographically smallest arrangement — which is
    exactly the first maximum the permutation sweep encounters, since
    ``itertools.permutations`` enumerates arrangements of the sorted
    method names in lexicographic order and the sweep keeps the first
    strict maximum.  Λ values are multiples of 0.5, so float sums and
    equality comparisons are exact.

    The subset-memo DP visits only reachable states (``i`` expected
    methods paired with an ``i``-subset of submission methods); the
    caller bounds the instance so the state count stays small.
    """
    n_expected = len(weights)
    if n_expected == 0:
        return ()
    n_methods = len(weights[0])
    memo: dict[tuple[int, int], float] = {}

    def best(index: int, used: int) -> float:
        if index == n_expected:
            return 0.0
        key = (index, used)
        found = memo.get(key)
        if found is None:
            row = weights[index]
            found = max(
                row[j] + best(index + 1, used | (1 << j))
                for j in range(n_methods)
                if not used & (1 << j)
            )
            memo[key] = found
        return found

    arrangement: list[int] = []
    used = 0
    for index in range(n_expected):
        target = best(index, used)
        row = weights[index]
        for j in range(n_methods):  # smallest j first: lexicographic
            if used & (1 << j):
                continue
            if row[j] + best(index + 1, used | (1 << j)) == target:
                arrangement.append(j)
                used |= 1 << j
                break
    return tuple(arrangement)


def _sweep_assignments(
    graphs: dict[str, Epdg],
    expected_methods: list[ExpectedMethod],
    enforce_headers: bool,
    grader: "_PairGrader",
) -> MatchOutcome:
    """The paper's sweep: try assignments, keep the first Λ maximum."""
    truncated = False
    if enforce_headers:
        assignments = [_assignment_by_name(graphs, expected_methods)]
    else:
        assignments, truncated = _enumerate_assignments(
            graphs, expected_methods
        )
        if not assignments:
            assignments = [_assignment_by_name(graphs, expected_methods)]
    best: MatchOutcome | None = None
    for assignment in assignments:
        outcome = grader.outcome(assignment)
        if best is None or outcome.score > best.score:
            best = outcome
    assert best is not None  # at least one assignment is always graded
    if truncated:
        best.truncated = True
    return best


def _assignment_by_name(
    graphs: dict[str, Epdg], expected_methods: list[ExpectedMethod]
) -> dict[str, str | None]:
    return {
        q.name: (q.name if q.name in graphs else None)
        for q in expected_methods
    }


def _enumerate_assignments(
    graphs: dict[str, Epdg], expected_methods: list[ExpectedMethod]
) -> tuple[list[dict[str, str | None]], bool]:
    """All injective assignments of expected methods to existing methods.

    Returns the assignments plus a flag telling whether the
    :data:`_MAX_ASSIGNMENTS` cap cut the enumeration short (recorded on
    the outcome instead of silently dropping the rest of the space).
    """
    method_names = sorted(graphs)
    if len(method_names) < len(expected_methods):
        return [], False
    assignments: list[dict[str, str | None]] = []
    for arrangement in permutations(method_names, len(expected_methods)):
        if len(assignments) >= _MAX_ASSIGNMENTS:
            count("match.assignments_truncated")
            return assignments, True
        assignments.append({
            q.name: actual
            for q, actual in zip(expected_methods, arrangement)
        })
    return assignments, False


@dataclass
class _PairGrade:
    """Grading result of one (expected method, submission method) pair."""

    comments: list[FeedbackComment]
    embeddings: dict[str, list[Embedding]]
    score: float
    truncated: bool


class _PairGrader:
    """Grades (expected, actual) pairs, at most once each when memoized.

    Λ is additive over expected methods, so a pair's comments are
    independent of the rest of the assignment — the sweep used to
    re-grade every pair for every permutation it appeared in.
    """

    def __init__(
        self,
        graphs: dict[str, Epdg],
        expected_methods: list[ExpectedMethod],
        order: str = "connectivity",
        memoize: bool = True,
    ):
        self._graphs = graphs
        self._expected = expected_methods
        self._order = order
        self._memoize = memoize
        self._memo: dict[tuple[int, str | None], _PairGrade] = {}

    def grade(self, index: int, actual: str | None) -> _PairGrade:
        if not self._memoize:
            return self._grade_pair(index, actual)
        key = (index, actual)
        found = self._memo.get(key)
        if found is None:
            found = self._memo[key] = self._grade_pair(index, actual)
        return found

    def outcome(self, assignment: dict[str, str | None]) -> MatchOutcome:
        """Assemble the full Algorithm 2 outcome for one assignment."""
        comments: list[FeedbackComment] = []
        all_embeddings: dict[str, dict[str, list[Embedding]]] = {}
        truncated = False
        for index, q in enumerate(self._expected):
            pair = self.grade(index, assignment.get(q.name))
            comments.extend(pair.comments)
            truncated = truncated or pair.truncated
            if assignment.get(q.name) is not None:
                all_embeddings[q.name] = pair.embeddings
        return MatchOutcome(
            comments=comments,
            method_assignment={
                q: a for q, a in assignment.items() if a is not None
            },
            score=cost(comments),
            embeddings=all_embeddings,
            truncated=truncated,
        )

    def _grade_pair(self, index: int, actual: str | None) -> _PairGrade:
        q = self._expected[index]
        if actual is None:
            comment = FeedbackComment(
                source=q.name,
                kind="structure",
                status=FeedbackStatus.NOT_EXPECTED,
                message=(
                    f"Your submission does not declare the required "
                    f"method '{q.name}'; please follow the assignment "
                    "header."
                ),
            )
            return _PairGrade([comment], {}, 0.0, False)
        graph = self._graphs[actual]
        comments: list[FeedbackComment] = []
        embeddings: dict[str, list[Embedding]] = {}
        statuses: dict[str, FeedbackStatus] = {}
        truncated = False
        # 2.1: match every pattern (or variant group) of this method
        with phase("pattern_match"):
            for pattern, expected_count in q.patterns:
                if isinstance(pattern, PatternGroup):
                    group_match = match_group(
                        pattern, graph, order=self._order
                    )
                    embeddings[pattern.name] = group_match.translated
                    truncated = truncated or getattr(
                        group_match.embeddings, "truncated", False
                    )
                    comment = provide_feedback(
                        group_match.embeddings,
                        group_match.pattern,
                        expected_count,
                    )
                    if comment.source != pattern.name:
                        # constraints and statuses key on the group's
                        # (primary) name, whichever variant matched
                        comment = replace(comment, source=pattern.name)
                else:
                    found = match_pattern(pattern, graph, order=self._order)
                    embeddings[pattern.name] = found
                    truncated = truncated or found.truncated
                    comment = provide_feedback(found, pattern, expected_count)
                statuses[pattern.name] = comment.status
                comments.append(comment)
        # 2.2: check the constraints correlating those patterns
        with phase("constraint_match"):
            for constraint in q.constraints:
                comments.append(
                    check_constraint(constraint, graph, embeddings, statuses)
                )
        return _PairGrade(comments, embeddings, cost(comments), truncated)
