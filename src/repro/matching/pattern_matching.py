"""Algorithm 1: subgraph pattern matching with variable mappings.

The search backtracks over pattern nodes, pruning candidates with

1. the type-based search space Φ (``Untyped`` pattern nodes admit every
   graph node), served by the EPDG's type buckets instead of a scan;
2. structural consistency — every pattern edge between the new node and
   already-matched nodes must exist in the graph (we check both edge
   directions, a correctness tightening of the paper's line 13 which only
   inspects outgoing edges);
3. variable-mapping consistency — unbound pattern variables are bound to
   unbound submission variables by trying injective assignments, after
   which the node's exact expression ``r`` (mark: correct) or approximate
   expression ``r̂`` (mark: incorrect) must match the node content.

Where the paper requires ``|X| = |Y|`` before trying combinations, we try
all injective partial assignments when ``|X| ≤ |Y|``: the relaxation is
needed to accept the paper's own worked example (node ``u5`` of pattern
``p_o``), and reduces to the paper's rule when the sizes agree.

The default ``"connectivity"`` order runs off a **compiled search plan**
(:mod:`repro.matching.plan`): pattern adjacency lists and degree
requirements are extracted once per pattern, the connectivity-first node
order is fixed up front (it never depends on *how* nodes are mapped,
only on which are matched), and Φ is additionally pruned by degree
profiles and variable-arity floors.  Both prunes are exact — they only
drop candidates the backtracking would reject in every branch — so the
embeddings, including their discovery order, are identical to the
unpruned search.  ``"naive"`` keeps the paper's literal line 11 (any
unmatched node, declaration order) with no pruning, serving as the
reference for the ablation benchmark and the differential test suite.

When an ambient :class:`~repro.matching.cache.MatchCache` is installed
(Algorithm 2 installs one per submission), results are memoized by
``(pattern, graph, order)`` so repeated method assignments and pattern
groups never re-run the search.
"""

from __future__ import annotations

from itertools import permutations

from repro.instrumentation import check_deadline, count
from repro.matching.cache import active_match_cache
from repro.matching.embeddings import Embedding
from repro.matching.plan import SearchPlan, compile_plan
from repro.patterns.model import Pattern, PatternNode
from repro.pdg.graph import Epdg, NodeType

#: Safety valve on the number of embeddings per (pattern, graph) pair.
#: Real patterns yield a handful; the cap only guards pathological inputs.
MAX_EMBEDDINGS = 512


class EmbeddingList(list):
    """A ``list[Embedding]`` that also records search truncation.

    ``truncated`` is ``True`` when the :data:`MAX_EMBEDDINGS` safety
    valve stopped the search, i.e. the result may be incomplete.  The
    subclass keeps the public ``match_pattern`` contract (callers treat
    the result as a plain list) while letting Algorithm 2 surface the
    truncation instead of silently dropping work.
    """

    truncated: bool = False


def match_pattern(
    pattern: Pattern, graph: Epdg, order: str = "connectivity"
) -> EmbeddingList:
    """Compute all embeddings of ``pattern`` in ``graph`` (Algorithm 1).

    ``order`` selects the node-ordering heuristic: ``"connectivity"``
    (default — compiled plan with static connectivity-first order and
    degree/arity pruning) or ``"naive"`` (the paper's line 11: any
    unmatched node, in declaration order, no pruning).  Both return the
    same embeddings; the ablation benchmark measures the cost
    difference.
    """
    if not pattern.nodes:
        return EmbeddingList()
    cache = active_match_cache()
    if cache is not None:
        cached = cache.get(pattern, graph, order)
        if cached is not None:
            return cached
    embeddings = _match_uncached(pattern, graph, order)
    if cache is not None:
        cache.put(pattern, graph, order, embeddings)
    return embeddings


def _match_uncached(
    pattern: Pattern, graph: Epdg, order: str
) -> EmbeddingList:
    space = _search_space(pattern, graph)
    if any(not candidates for candidates in space.values()):
        return EmbeddingList()
    plan = compile_plan(pattern)
    if order == "naive":
        node_order = tuple(range(len(pattern.nodes)))
    else:
        sizes = {u_id: len(candidates) for u_id, candidates in space.items()}
        node_order = plan.static_order(sizes)
        pruned = _prune_space(plan, graph, space, node_order)
        count("match.candidates_pruned", pruned)
        if any(not candidates for candidates in space.values()):
            return EmbeddingList()
    state = _SearchState(pattern, graph, plan, space, node_order)
    state.search(0, {}, {}, {})
    count("match.nodes_visited", state.nodes_visited)
    result = EmbeddingList(state.embeddings)
    if len(result) >= MAX_EMBEDDINGS:
        result.truncated = True
        count("match.embeddings_truncated")
    return result


def _search_space(pattern: Pattern, graph: Epdg) -> dict[int, list[int]]:
    """Φ: the graph nodes each pattern node may map to, by node type.

    Served from the EPDG's type buckets — candidate lists stay in node
    id order, exactly as the previous full-graph scan produced them.
    """
    space: dict[int, list[int]] = {}
    for u in pattern.nodes:
        if u.type is NodeType.UNTYPED:
            space[u.node_id] = [v.node_id for v in graph.nodes]
        else:
            space[u.node_id] = [
                v.node_id for v in graph.nodes_of_type(u.type)
            ]
    return space


def _prune_space(
    plan: SearchPlan,
    graph: Epdg,
    space: dict[int, list[int]],
    node_order: tuple[int, ...],
) -> int:
    """Drop Φ candidates that can never complete an embedding.

    Two exact filters (they remove only candidates the backtracking
    search would reject in every branch, so results — and their order —
    are unchanged):

    * **degree**: ι is injective, so a pattern node with ``k`` outgoing
      Data edges needs an image with at least ``k`` outgoing Data edges
      (likewise for each direction × type);
    * **arity**: with the node order fixed, the variables bound before
      node ``u`` is matched are known statically, so ``u`` must bind its
      remaining variables injectively into the candidate's variables —
      impossible when the candidate has fewer variables than that.

    Returns the number of candidates removed.
    """
    floors = plan.arity_floors(node_order)
    pruned = 0
    for node_plan in plan.node_plans:
        requirement = node_plan.degree_requirement
        floor = floors[node_plan.node_id]
        candidates = space[node_plan.node_id]
        kept = []
        for v_id in candidates:
            profile = graph.degree_profile(v_id)
            if (
                profile[0] >= requirement[0]
                and profile[1] >= requirement[1]
                and profile[2] >= requirement[2]
                and profile[3] >= requirement[3]
                and len(graph.node(v_id).variables) >= floor
            ):
                kept.append(v_id)
        pruned += len(candidates) - len(kept)
        space[node_plan.node_id] = kept
    return pruned


class _SearchState:
    def __init__(
        self,
        pattern: Pattern,
        graph: Epdg,
        plan: SearchPlan,
        space: dict[int, list[int]],
        node_order: tuple[int, ...],
    ):
        self._pattern = pattern
        self._graph = graph
        self._plan = plan
        self._space = space
        self._order = node_order
        self.embeddings: list[Embedding] = []
        self._seen: set[tuple] = set()
        self.nodes_visited = 0  # instrumentation for the ablation bench

    # -- consistency checks ----------------------------------------------

    def _edges_consistent(self, u_id: int, v_id: int, iota: dict[int, int]) -> bool:
        has_edge = self._graph.has_edge
        for edge_type, other, outgoing in self._plan.node_plans[u_id].adjacency:
            mapped = iota.get(other)
            if mapped is None:
                continue
            if outgoing:
                if not has_edge(v_id, mapped, edge_type):
                    return False
            elif not has_edge(mapped, v_id, edge_type):
                return False
        return True

    # -- main search ------------------------------------------------------

    def search(
        self,
        depth: int,
        iota: dict[int, int],
        gamma: dict[str, str],
        marks: dict[int, bool],
    ) -> None:
        self.nodes_visited += 1
        # the search dominates grading time, so it is the one loop that
        # must observe the ambient deadline; every 128 expansions keeps
        # the check off the hot path while bounding overshoot
        if self.nodes_visited & 127 == 0:
            check_deadline()
        if len(self.embeddings) >= MAX_EMBEDDINGS:
            return
        if depth == len(self._order):
            embedding = Embedding.build(iota, gamma, marks)
            # distinct (ι, γ) pairs are all kept: constraints may need a
            # specific variable mapping even when the node mapping repeats
            key = (embedding.iota, embedding.gamma)
            if key not in self._seen:
                self._seen.add(key)
                self.embeddings.append(embedding)
            return
        u_id = self._order[depth]
        u = self._pattern.nodes[u_id]
        used_graph_nodes = set(iota.values())
        for v_id in self._space[u_id]:
            if v_id in used_graph_nodes:
                continue
            if not self._edges_consistent(u_id, v_id, iota):
                continue
            v = self._graph.node(v_id)
            for extension, correct in self._variable_matches(u, v, gamma):
                iota[u_id] = v_id
                marks[u_id] = correct
                gamma.update(extension)
                self.search(depth + 1, iota, gamma, marks)
                for name in extension:
                    del gamma[name]
                del iota[u_id]
                del marks[u_id]

    # -- variable combinations --------------------------------------------

    def _variable_matches(self, u: PatternNode, v, gamma: dict[str, str]):
        """Yield ``(new_bindings, correct)`` for every viable combination.

        ``new_bindings`` extends γ injectively from the node's unbound
        pattern variables into the graph node's unbound variables.
        """
        unbound_pattern = sorted(
            self._plan.node_plans[u.node_id].variables - gamma.keys()
        )
        bound_submission = set(gamma.values())
        unbound_submission = sorted(v.variables - bound_submission)
        if len(unbound_pattern) > len(unbound_submission):
            return
        seen_extensions: set[tuple[str, ...]] = set()
        tried = 0
        for arrangement in permutations(unbound_submission, len(unbound_pattern)):
            # arrangements that never match yield nothing back to
            # ``search``, so this loop needs its own deadline check
            tried += 1
            if tried & 511 == 0:
                check_deadline()
            if arrangement in seen_extensions:
                continue
            seen_extensions.add(arrangement)
            extension = dict(zip(unbound_pattern, arrangement))
            trial = {**gamma, **extension}
            if u.expr.matches(v.content, _restrict(trial, u.expr.variables)):
                yield extension, True
            elif u.approx is not None and u.approx.matches(
                v.content, _restrict(trial, u.approx.variables)
            ):
                yield extension, False


def _restrict(gamma: dict[str, str], variables: frozenset[str]) -> dict[str, str]:
    return {name: gamma[name] for name in variables if name in gamma}
