"""Algorithm 1: subgraph pattern matching with variable mappings.

The search backtracks over pattern nodes, pruning candidates with

1. the type-based search space Φ (``Untyped`` pattern nodes admit every
   graph node);
2. structural consistency — every pattern edge between the new node and
   already-matched nodes must exist in the graph (we check both edge
   directions, a correctness tightening of the paper's line 13 which only
   inspects outgoing edges);
3. variable-mapping consistency — unbound pattern variables are bound to
   unbound submission variables by trying injective assignments, after
   which the node's exact expression ``r`` (mark: correct) or approximate
   expression ``r̂`` (mark: incorrect) must match the node content.

Where the paper requires ``|X| = |Y|`` before trying combinations, we try
all injective partial assignments when ``|X| ≤ |Y|``: the relaxation is
needed to accept the paper's own worked example (node ``u5`` of pattern
``p_o``), and reduces to the paper's rule when the sizes agree.

Node ordering is a connectivity-first heuristic (matched-adjacent nodes
before disconnected ones, smaller search spaces first), one of the
standard subgraph-isomorphism optimizations the paper points to.
"""

from __future__ import annotations

from itertools import permutations

from repro.matching.embeddings import Embedding
from repro.patterns.model import Pattern, PatternNode
from repro.pdg.graph import Epdg, NodeType

#: Safety valve on the number of embeddings per (pattern, graph) pair.
#: Real patterns yield a handful; the cap only guards pathological inputs.
MAX_EMBEDDINGS = 512


def match_pattern(
    pattern: Pattern, graph: Epdg, order: str = "connectivity"
) -> list[Embedding]:
    """Compute all embeddings of ``pattern`` in ``graph`` (Algorithm 1).

    ``order`` selects the node-ordering heuristic: ``"connectivity"``
    (default — matched-adjacent nodes first, smaller search spaces
    first) or ``"naive"`` (the paper's line 11: any unmatched node, in
    declaration order).  Both return the same embeddings; the ablation
    benchmark measures the cost difference.
    """
    if not pattern.nodes:
        return []
    search_space = _search_space(pattern, graph)
    if any(not candidates for candidates in search_space.values()):
        return []
    state = _SearchState(pattern, graph, search_space, order=order)
    state.search({}, {}, {})
    return state.embeddings


def _search_space(pattern: Pattern, graph: Epdg) -> dict[int, list[int]]:
    """Φ: the graph nodes each pattern node may map to, by node type."""
    space: dict[int, list[int]] = {}
    for u in pattern.nodes:
        if u.type is NodeType.UNTYPED:
            space[u.node_id] = [v.node_id for v in graph.nodes]
        else:
            space[u.node_id] = [
                v.node_id for v in graph.nodes if v.type is u.type
            ]
    return space


class _SearchState:
    def __init__(
        self,
        pattern: Pattern,
        graph: Epdg,
        space: dict[int, list[int]],
        order: str = "connectivity",
    ):
        self._pattern = pattern
        self._graph = graph
        self._space = space
        self._order = order
        self.embeddings: list[Embedding] = []
        self._seen: set[tuple] = set()
        self.nodes_visited = 0  # instrumentation for the ablation bench

    # -- node ordering --------------------------------------------------

    def _next_node(self, iota: dict[int, int]) -> PatternNode:
        """Pick the next pattern node: prefer nodes adjacent to matched
        ones, break ties by smaller search space."""
        unmatched = [
            u for u in self._pattern.nodes if u.node_id not in iota
        ]
        if self._order == "naive":
            return unmatched[0]
        def key(u: PatternNode) -> tuple[int, int, int]:
            adjacent = any(
                (e.source in iota) != (e.target in iota)
                and (e.source == u.node_id or e.target == u.node_id)
                for e in self._pattern.edges_touching(u.node_id)
            )
            return (0 if adjacent else 1, len(self._space[u.node_id]), u.node_id)
        return min(unmatched, key=key)

    # -- consistency checks ----------------------------------------------

    def _edges_consistent(self, u_id: int, v_id: int, iota: dict[int, int]) -> bool:
        for edge in self._pattern.edges_touching(u_id):
            if edge.source == u_id and edge.target in iota:
                if not self._graph.has_edge(v_id, iota[edge.target], edge.type):
                    return False
            elif edge.target == u_id and edge.source in iota:
                if not self._graph.has_edge(iota[edge.source], v_id, edge.type):
                    return False
        return True

    # -- main search ------------------------------------------------------

    def search(
        self,
        iota: dict[int, int],
        gamma: dict[str, str],
        marks: dict[int, bool],
    ) -> None:
        self.nodes_visited += 1
        if len(self.embeddings) >= MAX_EMBEDDINGS:
            return
        if len(iota) == len(self._pattern.nodes):
            embedding = Embedding.build(iota, gamma, marks)
            # distinct (ι, γ) pairs are all kept: constraints may need a
            # specific variable mapping even when the node mapping repeats
            key = (embedding.iota, embedding.gamma)
            if key not in self._seen:
                self._seen.add(key)
                self.embeddings.append(embedding)
            return
        u = self._next_node(iota)
        used_graph_nodes = set(iota.values())
        for v_id in self._space[u.node_id]:
            if v_id in used_graph_nodes:
                continue
            if not self._edges_consistent(u.node_id, v_id, iota):
                continue
            v = self._graph.node(v_id)
            for extension, correct in self._variable_matches(u, v, gamma):
                iota[u.node_id] = v_id
                marks[u.node_id] = correct
                gamma.update(extension)
                self.search(iota, gamma, marks)
                for name in extension:
                    del gamma[name]
                del iota[u.node_id]
                del marks[u.node_id]

    # -- variable combinations --------------------------------------------

    def _variable_matches(self, u: PatternNode, v, gamma: dict[str, str]):
        """Yield ``(new_bindings, correct)`` for every viable combination.

        ``new_bindings`` extends γ injectively from the node's unbound
        pattern variables into the graph node's unbound variables.
        """
        unbound_pattern = sorted(u.variables - gamma.keys())
        bound_submission = set(gamma.values())
        unbound_submission = sorted(v.variables - bound_submission)
        if len(unbound_pattern) > len(unbound_submission):
            return
        seen_extensions: set[tuple[str, ...]] = set()
        for arrangement in permutations(unbound_submission, len(unbound_pattern)):
            if arrangement in seen_extensions:
                continue
            seen_extensions.add(arrangement)
            extension = dict(zip(unbound_pattern, arrangement))
            trial = {**gamma, **extension}
            if u.expr.matches(v.content, _restrict(trial, u.expr.variables)):
                yield extension, True
            elif u.approx is not None and u.approx.matches(
                v.content, _restrict(trial, u.approx.variables)
            ):
                yield extension, False


def _restrict(gamma: dict[str, str], variables: frozenset[str]) -> dict[str, str]:
    return {name: gamma[name] for name in variables if name in gamma}
