"""Constraint matching over computed embeddings (Definitions 8-10).

Each checker receives the embeddings of every pattern of the expected
method (the paper's ``m̄``) plus the submission's EPDG, and produces one
:class:`~repro.matching.feedback.FeedbackComment`.  Following Algorithm 2,
a constraint that references a pattern whose own outcome was
``NotExpected`` is itself reported ``NotExpected`` without being checked.
"""

from __future__ import annotations

from itertools import product

from repro.errors import PatternDefinitionError
from repro.matching.embeddings import Embedding
from repro.matching.feedback import FeedbackComment, FeedbackStatus
from repro.patterns.model import (
    Constraint,
    ContainmentConstraint,
    EdgeExistenceConstraint,
    EqualityConstraint,
    Pattern,
)
from repro.patterns.template import render_feedback
from repro.pdg.graph import Epdg

#: Cap on supporting-embedding combinations tried per containment check.
_MAX_COMBINATIONS = 4096


def check_constraint(
    constraint: Constraint,
    graph: Epdg,
    embeddings: dict[str, list[Embedding]],
    statuses: dict[str, FeedbackStatus],
    patterns: dict[str, Pattern] | None = None,
) -> FeedbackComment:
    """Check one constraint and produce its feedback comment.

    ``embeddings`` maps pattern names to their embeddings in ``graph``;
    ``statuses`` maps pattern names to the outcome ProvideFeedback
    reported for them.
    """
    for pattern_name in constraint.referenced_patterns():
        if statuses.get(pattern_name) is FeedbackStatus.NOT_EXPECTED or not (
            embeddings.get(pattern_name)
        ):
            return FeedbackComment(
                source=constraint.name,
                kind="constraint",
                status=FeedbackStatus.NOT_EXPECTED,
                message=(
                    f"Constraint '{constraint.name}' could not be checked "
                    f"because '{pattern_name}' was not found as expected."
                ),
            )
    if isinstance(constraint, EqualityConstraint):
        satisfied, gamma = _check_equality(constraint, embeddings)
    elif isinstance(constraint, EdgeExistenceConstraint):
        satisfied, gamma = _check_edge(constraint, graph, embeddings)
    elif isinstance(constraint, ContainmentConstraint):
        satisfied, gamma = _check_containment(constraint, graph, embeddings)
    else:
        raise PatternDefinitionError(
            f"unknown constraint type {type(constraint).__name__}"
        )
    if satisfied:
        return FeedbackComment(
            source=constraint.name,
            kind="constraint",
            status=FeedbackStatus.CORRECT,
            message=render_feedback(constraint.feedback_correct, gamma)
            or f"Constraint '{constraint.name}' is satisfied.",
        )
    return FeedbackComment(
        source=constraint.name,
        kind="constraint",
        status=FeedbackStatus.INCORRECT,
        message=render_feedback(constraint.feedback_incorrect, gamma)
        or f"Constraint '{constraint.name}' is violated.",
    )


def _check_equality(
    constraint: EqualityConstraint,
    embeddings: dict[str, list[Embedding]],
) -> tuple[bool, dict[str, str]]:
    gamma: dict[str, str] = {}
    for m_i in embeddings[constraint.pattern_i]:
        for m_j in embeddings[constraint.pattern_j]:
            if m_i.graph_node(constraint.node_i) == m_j.graph_node(
                constraint.node_j
            ):
                gamma = _merge_gammas(m_i, m_j)
                return True, gamma
    witness_i = embeddings[constraint.pattern_i][0]
    witness_j = embeddings[constraint.pattern_j][0]
    return False, _merge_gammas(witness_i, witness_j)


def _check_edge(
    constraint: EdgeExistenceConstraint,
    graph: Epdg,
    embeddings: dict[str, list[Embedding]],
) -> tuple[bool, dict[str, str]]:
    for m_i in embeddings[constraint.pattern_i]:
        for m_j in embeddings[constraint.pattern_j]:
            source = m_i.graph_node(constraint.node_i)
            target = m_j.graph_node(constraint.node_j)
            if graph.has_edge(source, target, constraint.edge_type):
                return True, _merge_gammas(m_i, m_j)
    witness_i = embeddings[constraint.pattern_i][0]
    witness_j = embeddings[constraint.pattern_j][0]
    return False, _merge_gammas(witness_i, witness_j)


def _prefer_exact(embeddings: list[Embedding]) -> list[Embedding]:
    """Fully-correct embeddings when any exist, otherwise all of them.

    Approximate embeddings exist to *explain* near-misses; letting them
    witness a containment constraint would let a symmetric variable
    binding (e.g. the swapped Fibonacci seeds) satisfy a check the
    exactly-matched binding fails.
    """
    exact = [e for e in embeddings if e.is_fully_correct]
    return exact if exact else embeddings


def _check_containment(
    constraint: ContainmentConstraint,
    graph: Epdg,
    embeddings: dict[str, list[Embedding]],
) -> tuple[bool, dict[str, str]]:
    supporting_lists = [
        _prefer_exact(embeddings[name]) for name in constraint.supporting
    ]
    fallback_gamma: dict[str, str] = {}
    tried = 0
    for main in _prefer_exact(embeddings[constraint.pattern]):
        content = graph.node(main.graph_node(constraint.node)).content
        for combination in product(*supporting_lists):
            tried += 1
            if tried > _MAX_COMBINATIONS:
                return False, fallback_gamma
            gamma = _merge_gammas(main, *combination)
            if not fallback_gamma:
                fallback_gamma = gamma
            bound = {
                name: gamma[name]
                for name in constraint.expr.variables
                if name in gamma
            }
            if len(bound) < len(constraint.expr.variables):
                continue  # a referenced variable is unbound in this combo
            if constraint.expr.matches(content, bound):
                return True, gamma
    return False, fallback_gamma


def _merge_gammas(*embeddings: Embedding) -> dict[str, str]:
    """Union of the variable mappings (γ' in Definition 10).

    Definition 10 assumes the patterns' variable name sets are disjoint;
    the knowledge base enforces that convention, so a plain union is
    well-defined.  On accidental collision the first binding wins, which
    only affects feedback wording, never satisfaction.
    """
    merged: dict[str, str] = {}
    for embedding in embeddings:
        for name, value in embedding.gamma:
            merged.setdefault(name, value)
    return merged
