"""Compiled search plans for Algorithm 1.

A pattern in the knowledge base is matched against thousands of
submission EPDGs, but the backtracking search used to re-derive the same
pattern-side facts on every call (and on every search step):
``edges_touching`` scanned the full edge list per visited node, and the
connectivity-first node ordering was recomputed from scratch at every
backtracking level.  :func:`compile_plan` extracts everything that
depends only on the pattern **once** and caches it on the pattern
object:

* **adjacency lists** — for each pattern node, the edges touching it as
  ``(edge_type, other_node, is_outgoing)`` triples, ready for the
  consistency check of Algorithm 1 line 13;
* **degree requirements** — how many out/in edges of each type the
  pattern demands of a node's image; since ι is injective, a graph node
  with a smaller degree profile can never complete an embedding, so the
  search space Φ drops it before the search starts;
* **variable sets** per node, so the matcher never unions
  ``expr``/``approx`` variables in the loop.

Two quantities still depend on the graph and are computed per match
call (they are :math:`O(|U|^2)` on patterns with at most a handful of
nodes):

* the **static node order** — the connectivity-first heuristic only
  looks at *which* nodes are already matched, never at how they are
  mapped, so the order the dynamic heuristic would pick is identical in
  every branch of the search and can be fixed up front (see
  :meth:`SearchPlan.static_order`);
* **arity floors** — once the order is fixed, the set of pattern
  variables bound before node ``u`` is matched is exactly the union of
  the variables of the nodes ordered before it.  Any candidate with
  fewer variables than ``u`` must newly bind cannot satisfy the
  injective binding step, so Φ drops it (see
  :meth:`SearchPlan.arity_floors`).  This reproduces a check the search
  would make anyway, which keeps the optimized matcher's output
  byte-identical to the naive one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.patterns.model import Pattern
from repro.pdg.graph import EdgeType


@dataclass(frozen=True)
class NodePlan:
    """Precomputed per-pattern-node facts."""

    node_id: int
    #: Edges touching this node: ``(edge_type, other_node_id, is_outgoing)``.
    adjacency: tuple[tuple[EdgeType, int, bool], ...]
    #: Required minimum degree profile of any image:
    #: ``(out_ctrl, out_data, in_ctrl, in_data)``.
    degree_requirement: tuple[int, int, int, int]
    #: All variables of the node (exact ∪ approximate expression).
    variables: frozenset[str]


@dataclass(frozen=True)
class SearchPlan:
    """Everything Algorithm 1 needs that depends only on the pattern."""

    node_plans: tuple[NodePlan, ...]

    def static_order(self, space_sizes: dict[int, int]) -> tuple[int, ...]:
        """The node order the connectivity-first heuristic would follow.

        Replays the dynamic selection — prefer nodes adjacent to an
        already-matched node, break ties by smaller search space, then
        by node id — which depends only on the *set* of matched nodes,
        not on the candidate mappings, and therefore takes the same
        sequence of decisions in every search branch.  ``space_sizes``
        must be the *unpruned* (type-only) Φ sizes so the order is
        identical to the one the unoptimized matcher used.
        """
        remaining = {plan.node_id for plan in self.node_plans}
        chosen: set[int] = set()
        order: list[int] = []
        while remaining:
            def key(node_id: int) -> tuple[int, int, int]:
                adjacent = any(
                    other in chosen
                    for _, other, _ in self.node_plans[node_id].adjacency
                )
                return (0 if adjacent else 1, space_sizes[node_id], node_id)
            best = min(remaining, key=key)
            remaining.discard(best)
            chosen.add(best)
            order.append(best)
        return tuple(order)

    def arity_floors(self, order: tuple[int, ...]) -> dict[int, int]:
        """Minimum ``|v.variables|`` an image of each node must have.

        When node ``u`` is matched, every variable of every earlier node
        in ``order`` is already bound, so ``u`` must newly bind exactly
        ``|vars(u) - vars(earlier)|`` variables — injectively, into the
        candidate's own variables.  A candidate with fewer variables
        fails the binding step in *every* branch, so dropping it from Φ
        is exact, not heuristic.
        """
        floors: dict[int, int] = {}
        bound: set[str] = set()
        for node_id in order:
            plan = self.node_plans[node_id]
            floors[node_id] = len(plan.variables - bound)
            bound |= plan.variables
        return floors


def compile_plan(pattern: Pattern) -> SearchPlan:
    """Compile (and cache on the pattern) the search plan.

    Patterns are authored once in the knowledge base and never mutated
    after construction, so the plan is cached on the instance itself —
    the registry's ``lru_cache`` keeps assignments (and thus patterns)
    alive for the process lifetime, making compilation a one-time cost.
    """
    cached = pattern.__dict__.get("_search_plan")
    if cached is not None:
        return cached
    adjacency: list[list[tuple[EdgeType, int, bool]]] = [
        [] for _ in pattern.nodes
    ]
    requirements = [[0, 0, 0, 0] for _ in pattern.nodes]
    for edge in pattern.edges:
        adjacency[edge.source].append((edge.type, edge.target, True))
        adjacency[edge.target].append((edge.type, edge.source, False))
        out_slot = 0 if edge.type is EdgeType.CTRL else 1
        in_slot = 2 if edge.type is EdgeType.CTRL else 3
        requirements[edge.source][out_slot] += 1
        requirements[edge.target][in_slot] += 1
    plan = SearchPlan(
        node_plans=tuple(
            NodePlan(
                node_id=node.node_id,
                adjacency=tuple(adjacency[node.node_id]),
                degree_requirement=tuple(requirements[node.node_id]),
                variables=node.variables,
            )
            for node in pattern.nodes
        )
    )
    pattern.__dict__["_search_plan"] = plan
    return plan
