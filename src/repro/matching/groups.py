"""Matching pattern groups: pick the best-fitting variant.

Every variant is matched with Algorithm 1; the group's answer is the
variant whose embeddings are *best* — fully-correct beats approximate
beats absent — with earlier variants winning ties (the primary is the
canonical idiom).  The winning variant's embeddings are translated into
the primary's node numbering so constraints keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.embeddings import Embedding
from repro.matching.pattern_matching import match_pattern
from repro.patterns.groups import PatternGroup, PatternVariant
from repro.patterns.model import Pattern
from repro.pdg.graph import Epdg


@dataclass
class GroupMatch:
    """Outcome of matching one group.

    ``embeddings`` are the winning variant's own embeddings (used for
    feedback, whose node ids belong to the variant pattern);
    ``translated`` renumbers them into the primary's node ids (used by
    constraints, which reference primary ids).
    """

    group: PatternGroup
    variant: PatternVariant
    embeddings: list[Embedding]
    translated: list[Embedding]

    @property
    def pattern(self) -> Pattern:
        return self.variant.pattern


def _translate(variant: PatternVariant, embeddings: list[Embedding]
               ) -> list[Embedding]:
    """Renumber a variant's embeddings into the primary's node ids.

    Only mapped nodes survive the translation: constraints may reference
    exactly the mapped ids, and feedback details are produced from the
    variant's own (untranslated) match, so nothing is lost.
    """
    inverse = {v: k for k, v in variant.node_map.items()}
    translated = []
    for embedding in embeddings:
        iota = {
            inverse[u]: v for u, v in embedding.iota if u in inverse
        }
        marks = {
            inverse[u]: ok for u, ok in embedding.marks if u in inverse
        }
        translated.append(
            Embedding.build(iota, embedding.gamma_map, marks)
        )
    return translated


def _quality(embeddings: list[Embedding]) -> tuple[int, int]:
    """Orderable quality of a variant's match: (tier, -incorrect_nodes).

    Tier 2: at least one fully-correct embedding; tier 1: approximate
    embeddings only; tier 0: no embeddings.
    """
    if not embeddings:
        return (0, 0)
    best = min(len(e.incorrect_nodes) for e in embeddings)
    tier = 2 if best == 0 else 1
    return (tier, -best)


def match_group(
    group: PatternGroup, graph: Epdg, order: str = "connectivity"
) -> GroupMatch:
    """Match every variant and keep the best, primary-first on ties.

    ``order`` is forwarded to :func:`match_pattern` so callers can run
    the whole group through the naive reference ordering.
    """
    best_variant = group.primary
    best_embeddings: list[Embedding] = []
    best_quality = (0, 0)
    for variant in group.variants:
        embeddings = match_pattern(variant.pattern, graph, order=order)
        quality = _quality(embeddings)
        if quality > best_quality:
            best_variant, best_embeddings = variant, embeddings
            best_quality = quality
    return GroupMatch(
        group=group,
        variant=best_variant,
        embeddings=best_embeddings,
        translated=_translate(best_variant, best_embeddings),
    )
