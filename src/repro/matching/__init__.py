"""Subgraph pattern matching and submission grading (Sections IV and V).

:func:`match_pattern` is the paper's Algorithm 1 (backtracking subgraph
matching extended with variable mappings and approximate expressions);
:func:`check_constraint` enforces Definitions 8-10 over computed
embeddings; :func:`match_submission` is Algorithm 2 with the Λ cost
function steering the best-effort assignment of expected methods.
"""

from repro.matching.embeddings import Embedding
from repro.matching.pattern_matching import match_pattern
from repro.matching.constraints import check_constraint
from repro.matching.feedback import (
    FeedbackComment,
    FeedbackStatus,
    cost,
    provide_feedback,
)
from repro.matching.submission import (
    ExpectedMethod,
    MatchOutcome,
    match_submission,
)

__all__ = [
    "Embedding",
    "match_pattern",
    "check_constraint",
    "FeedbackComment",
    "FeedbackStatus",
    "cost",
    "provide_feedback",
    "ExpectedMethod",
    "MatchOutcome",
    "match_submission",
]
