"""Java-subset frontend: lexer, AST, parser, and canonical printer.

The paper builds extended program dependence graphs from Java submissions
parsed with ANTLR.  This package is the from-scratch substitute: a lexer and
recursive-descent parser for the Java subset used in introductory
programming courses (classes, methods, primitive and array types, strings,
all the usual control flow, ``Scanner``/``System.out``/``Math`` calls) plus
a canonical printer that renders AST nodes back to normalized source text.

Typical usage::

    from repro.java import parse_submission
    unit = parse_submission("void f(int x) { return; }")
    method = unit.methods()[0]
"""

from repro.java import ast
from repro.java.lexer import Lexer, Token, TokenType, tokenize
from repro.java.parser import Parser, parse_expression, parse_submission
from repro.java.printer import to_source

__all__ = [
    "ast",
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_submission",
    "to_source",
]
