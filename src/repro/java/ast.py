"""AST node definitions for the Java subset.

Nodes are plain dataclasses.  Expressions and statements form two separate
hierarchies under :class:`Expression` and :class:`Statement`; declarations
(:class:`MethodDecl`, :class:`ClassDecl`, :class:`CompilationUnit`) sit on
top.  All nodes support :meth:`Node.children` for generic traversal, and
:func:`walk` provides pre-order iteration used throughout the PDG builder,
the synthesizer, and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator


#: Per-class field-name tuples; ``dataclasses.fields`` rebuilds its list
#: on every call, which dominates generic traversal cost otherwise.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(item.name for item in fields(cls))
        _FIELD_NAMES[cls] = names
    return names


@dataclass
class Node:
    """Base class for every AST node."""

    def children(self) -> Iterator["Node"]:
        """Yield the direct child nodes, in source order."""
        for name in _field_names(type(self)):
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, Node):
                        yield element
                    elif isinstance(element, (list, tuple)):
                        for nested in element:
                            if isinstance(nested, Node):
                                yield nested


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal over ``node`` and all of its descendants."""
    yield node
    for child in node.children():
        yield from walk(child)


# ----------------------------------------------------------------------
# types


@dataclass
class Type(Node):
    """A (possibly array) type such as ``int``, ``String`` or ``int[][]``."""

    name: str
    dimensions: int = 0

    def __str__(self) -> str:
        return self.name + "[]" * self.dimensions

    @property
    def is_array(self) -> bool:
        return self.dimensions > 0


# ----------------------------------------------------------------------
# expressions


@dataclass
class Expression(Node):
    """Base class for all expression nodes."""


@dataclass
class Literal(Expression):
    """A literal constant.  ``kind`` is one of int/long/double/boolean/char/
    string/null; ``value`` holds the already-decoded Python value."""

    value: object
    kind: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return repr(self.value)


@dataclass
class Name(Expression):
    """A bare identifier reference such as ``i`` or ``medals``."""

    identifier: str


@dataclass
class FieldAccess(Expression):
    """A field access such as ``a.length`` or ``System.out``."""

    target: Expression
    name: str


@dataclass
class ArrayAccess(Expression):
    """An array element access such as ``a[i]``."""

    array: Expression
    index: Expression


@dataclass
class MethodCall(Expression):
    """A method invocation; ``target`` is ``None`` for unqualified calls."""

    target: Expression | None
    name: str
    arguments: list[Expression] = field(default_factory=list)


@dataclass
class ObjectCreation(Expression):
    """A ``new Foo(args)`` expression (e.g. ``new Scanner(...)``)."""

    type: Type
    arguments: list[Expression] = field(default_factory=list)


@dataclass
class ArrayCreation(Expression):
    """A ``new int[n]`` or ``new int[]{...}`` expression."""

    type: Type
    dimensions: list[Expression] = field(default_factory=list)
    initializer: "ArrayInitializer | None" = None


@dataclass
class ArrayInitializer(Expression):
    """A brace-delimited array initializer ``{1, 2, 3}``."""

    elements: list[Expression] = field(default_factory=list)


@dataclass
class Unary(Expression):
    """A unary expression; ``prefix`` distinguishes ``++i`` from ``i++``."""

    operator: str
    operand: Expression
    prefix: bool = True


@dataclass
class Binary(Expression):
    """A binary expression such as ``i % 2 == 1`` (nested)."""

    operator: str
    left: Expression
    right: Expression


@dataclass
class Ternary(Expression):
    """The conditional operator ``cond ? a : b``."""

    condition: Expression
    if_true: Expression
    if_false: Expression


@dataclass
class Assignment(Expression):
    """An assignment expression; ``operator`` is ``=``, ``+=``, ... ."""

    target: Expression
    operator: str
    value: Expression


@dataclass
class Cast(Expression):
    """A cast expression such as ``(int) x``."""

    type: Type
    expression: Expression


# ----------------------------------------------------------------------
# statements


@dataclass
class Statement(Node):
    """Base class for all statement nodes."""


@dataclass
class Block(Statement):
    """A ``{ ... }`` block."""

    statements: list[Statement] = field(default_factory=list)


@dataclass
class VarDeclarator(Node):
    """A single ``name = init`` declarator inside a declaration."""

    name: str
    initializer: Expression | None = None
    extra_dimensions: int = 0


@dataclass
class LocalVarDecl(Statement):
    """A local variable declaration, possibly with several declarators."""

    type: Type
    declarators: list[VarDeclarator] = field(default_factory=list)


@dataclass
class ExpressionStatement(Statement):
    """An expression used as a statement (assignment, call, ``i++``)."""

    expression: Expression


@dataclass
class If(Statement):
    """An ``if``/``else`` statement."""

    condition: Expression
    then_branch: Statement
    else_branch: Statement | None = None


@dataclass
class While(Statement):
    """A ``while`` loop."""

    condition: Expression
    body: Statement


@dataclass
class DoWhile(Statement):
    """A ``do ... while`` loop."""

    body: Statement
    condition: Expression


@dataclass
class For(Statement):
    """A classic ``for`` loop.  ``init`` holds either one ``LocalVarDecl``
    or a list of expression statements; ``update`` holds expressions."""

    init: list[Statement] = field(default_factory=list)
    condition: Expression | None = None
    update: list[Expression] = field(default_factory=list)
    body: Statement = field(default_factory=Block)


@dataclass
class ForEach(Statement):
    """An enhanced ``for (T x : iterable)`` loop."""

    type: Type
    name: str
    iterable: Expression = field(default_factory=lambda: Name("it"))
    body: Statement = field(default_factory=Block)


@dataclass
class Break(Statement):
    """A ``break`` statement."""

    label: str | None = None


@dataclass
class Continue(Statement):
    """A ``continue`` statement."""

    label: str | None = None


@dataclass
class Return(Statement):
    """A ``return`` statement with optional value."""

    value: Expression | None = None


@dataclass
class SwitchCase(Node):
    """One ``case``/``default`` group inside a switch."""

    labels: list[Expression | None] = field(default_factory=list)
    statements: list[Statement] = field(default_factory=list)


@dataclass
class Switch(Statement):
    """A ``switch`` statement."""

    selector: Expression
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class EmptyStatement(Statement):
    """A bare ``;``."""


# ----------------------------------------------------------------------
# declarations


@dataclass
class Parameter(Node):
    """A formal method parameter."""

    type: Type
    name: str


@dataclass
class MethodDecl(Node):
    """A method declaration with its body."""

    name: str
    return_type: Type
    parameters: list[Parameter] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    modifiers: list[str] = field(default_factory=list)
    throws: list[str] = field(default_factory=list)

    @property
    def arity(self) -> int:
        return len(self.parameters)

    def signature(self) -> str:
        """Human-readable signature, e.g. ``void assignment1(int[] a)``."""
        params = ", ".join(f"{p.type} {p.name}" for p in self.parameters)
        return f"{self.return_type} {self.name}({params})"


@dataclass
class FieldDecl(Node):
    """A class-level field declaration."""

    type: Type
    declarators: list[VarDeclarator] = field(default_factory=list)
    modifiers: list[str] = field(default_factory=list)


@dataclass
class ClassDecl(Node):
    """A class declaration holding methods and fields."""

    name: str
    methods: list[MethodDecl] = field(default_factory=list)
    fields: list[FieldDecl] = field(default_factory=list)
    modifiers: list[str] = field(default_factory=list)


@dataclass
class CompilationUnit(Node):
    """A parsed submission: imports plus classes and/or bare methods.

    Student submissions in MOOCs frequently consist of one or more bare
    methods with no enclosing class; the parser accepts both forms and
    :meth:`methods` flattens them for the grading pipeline (the paper's
    ``GetMethods``).
    """

    imports: list[str] = field(default_factory=list)
    classes: list[ClassDecl] = field(default_factory=list)
    bare_methods: list[MethodDecl] = field(default_factory=list)

    def methods(self) -> list[MethodDecl]:
        """All method declarations, across classes and bare methods."""
        result = list(self.bare_methods)
        for cls in self.classes:
            result.extend(cls.methods)
        return result

    def method(self, name: str) -> MethodDecl:
        """Return the unique method called ``name``.

        Raises ``KeyError`` when the method is absent, matching the
        behaviour the grading engine expects for header enforcement.
        """
        for candidate in self.methods():
            if candidate.name == name:
                return candidate
        raise KeyError(name)
