"""Recursive-descent parser for the Java subset.

The entry points are :func:`parse_submission` (a whole student submission:
a compilation unit, a class body, or one-or-more bare methods) and
:func:`parse_expression` (a single expression, used by pattern templates
and tests).  Operator precedence follows the Java Language Specification
for the subset we accept.
"""

from __future__ import annotations

from repro.errors import JavaSyntaxError
from repro.java import ast
from repro.java.lexer import Token, TokenType, tokenize

#: Primitive type keywords accepted in declarations.
PRIMITIVE_TYPES = frozenset(
    {"boolean", "byte", "char", "short", "int", "long", "float", "double"}
)

_MODIFIERS = frozenset(
    {"public", "private", "protected", "static", "final", "abstract",
     "synchronized", "native", "strictfp", "transient", "volatile"}
)

#: Binary operator precedence (higher binds tighter), per the JLS.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7, "instanceof": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPERATORS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="}
)

#: Token types whose value is structural syntax rather than literal content.
#: A string literal containing ``"("`` must not satisfy ``_check("(")``.
_STRUCTURAL = frozenset(
    {TokenType.KEYWORD, TokenType.OPERATOR, TokenType.SEPARATOR}
)

_PRIMITIVE_OR_VOID = PRIMITIVE_TYPES | {"void"}

_UNARY_PREFIX = frozenset({"+", "-", "!", "~"})


class Parser:
    """Parses a token stream produced by :mod:`repro.java.lexer`."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers

    def _peek(self, offset: int = 0) -> Token:
        # The token list always ends with EOF and _advance never moves past
        # it, so _pos itself is always in range; only lookahead can fall off.
        tokens = self._tokens
        if offset:
            index = self._pos + offset
            return tokens[index] if index < len(tokens) else tokens[-1]
        return tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, value: str, offset: int = 0) -> bool:
        token = self._peek(offset) if offset else self._tokens[self._pos]
        return token.value == value and token.type in _STRUCTURAL

    def _match(self, value: str) -> bool:
        if self._check(value):
            self._advance()
            return True
        return False

    def _expect(self, value: str) -> Token:
        if not self._check(value):
            token = self._peek()
            raise JavaSyntaxError(
                f"expected {value!r} but found {token.value!r}",
                token.line, token.column,
            )
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise JavaSyntaxError(
                f"expected identifier but found {token.value!r}",
                token.line, token.column,
            )
        return self._advance().value

    def _at_eof(self) -> bool:
        return self._peek().type is TokenType.EOF

    def _error(self, message: str) -> JavaSyntaxError:
        token = self._peek()
        return JavaSyntaxError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # top level

    def parse_submission(self) -> ast.CompilationUnit:
        """Parse a whole submission (classes and/or bare methods)."""
        unit = ast.CompilationUnit()
        while self._match("import"):
            parts = [self._expect_identifier()]
            while self._match("."):
                if self._match("*"):
                    parts.append("*")
                    break
                parts.append(self._expect_identifier())
            self._expect(";")
            unit.imports.append(".".join(parts))
        while not self._at_eof():
            modifiers = self._parse_modifiers()
            if self._check("class"):
                unit.classes.append(self._parse_class(modifiers))
            else:
                unit.bare_methods.append(self._parse_method(modifiers))
        return unit

    def parse_expression_only(self) -> ast.Expression:
        """Parse exactly one expression; trailing tokens are an error."""
        expression = self._parse_expression()
        if not self._at_eof():
            raise self._error("unexpected trailing tokens after expression")
        return expression

    def _parse_modifiers(self) -> list[str]:
        modifiers = []
        while self._peek().type is TokenType.KEYWORD and self._peek().value in _MODIFIERS:
            modifiers.append(self._advance().value)
        return modifiers

    def _parse_class(self, modifiers: list[str]) -> ast.ClassDecl:
        self._expect("class")
        name = self._expect_identifier()
        if self._match("extends"):
            self._expect_identifier()
        if self._match("implements"):
            self._expect_identifier()
            while self._match(","):
                self._expect_identifier()
        self._expect("{")
        cls = ast.ClassDecl(name=name, modifiers=modifiers)
        while not self._check("}"):
            if self._at_eof():
                raise self._error("unterminated class body")
            member_modifiers = self._parse_modifiers()
            if self._looks_like_method():
                cls.methods.append(self._parse_method(member_modifiers))
            else:
                decl = self._parse_local_var_decl()
                self._expect(";")
                cls.fields.append(
                    ast.FieldDecl(
                        type=decl.type,
                        declarators=decl.declarators,
                        modifiers=member_modifiers,
                    )
                )
        self._expect("}")
        return cls

    def _looks_like_method(self) -> bool:
        """Disambiguate method declarations from field declarations.

        After the (already consumed) modifiers, a method looks like
        ``Type name (`` whereas a field looks like ``Type name =|;|,``.
        """
        offset = 0
        token = self._peek(offset)
        if token.type not in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            return False
        offset += 1
        while self._check("[", offset) and self._check("]", offset + 1):
            offset += 2
        if self._peek(offset).type is not TokenType.IDENTIFIER:
            return False
        offset += 1
        return self._check("(", offset)

    def _parse_method(self, modifiers: list[str]) -> ast.MethodDecl:
        first_token = self._tokens[self._pos]
        return_type = self._parse_type()
        name = self._expect_identifier()
        self._expect("(")
        parameters: list[ast.Parameter] = []
        if not self._check(")"):
            while True:
                param_type = self._parse_type()
                param_name = self._expect_identifier()
                while self._match("["):
                    self._expect("]")
                    param_type = ast.Type(param_type.name, param_type.dimensions + 1)
                parameters.append(ast.Parameter(type=param_type, name=param_name))
                if not self._match(","):
                    break
        self._expect(")")
        throws: list[str] = []
        if self._match("throws"):
            throws.append(self._expect_identifier())
            while self._match(","):
                throws.append(self._expect_identifier())
        body = self._parse_block()
        method = ast.MethodDecl(
            name=name,
            return_type=return_type,
            parameters=parameters,
            body=body,
            modifiers=modifiers,
            throws=throws,
        )
        method.position = (first_token.line, first_token.column)
        return method

    # ------------------------------------------------------------------
    # types

    def _parse_type(self) -> ast.Type:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in _PRIMITIVE_OR_VOID:
            name = self._advance().value
        elif token.type is TokenType.IDENTIFIER:
            name = self._advance().value
            while self._check(".") and self._peek(1).type is TokenType.IDENTIFIER:
                self._advance()
                name += "." + self._advance().value
        else:
            raise self._error(f"expected type but found {token.value!r}")
        dimensions = 0
        while self._check("[") and self._check("]", 1):
            self._advance()
            self._advance()
            dimensions += 1
        return ast.Type(name, dimensions)

    def _at_type_start(self) -> bool:
        """True when the upcoming tokens begin a local variable declaration."""
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in PRIMITIVE_TYPES:
            return True
        if token.type is not TokenType.IDENTIFIER:
            return False
        # `Ident Ident`  ->  declaration (e.g. `Scanner s`)
        if self._peek(1).type is TokenType.IDENTIFIER:
            return True
        # `Ident [ ] Ident`  ->  array declaration (e.g. `int[] a` spelled
        # with a class type, `String[] words`)
        offset = 1
        saw_brackets = False
        while self._check("[", offset) and self._check("]", offset + 1):
            saw_brackets = True
            offset += 2
        return saw_brackets and self._peek(offset).type is TokenType.IDENTIFIER

    # ------------------------------------------------------------------
    # statements

    def _parse_block(self) -> ast.Block:
        self._expect("{")
        block = ast.Block()
        while not self._check("}"):
            if self._at_eof():
                raise self._error("unterminated block")
            block.statements.append(self._parse_statement())
        self._expect("}")
        return block

    def _parse_statement(self) -> ast.Statement:
        token = self._tokens[self._pos]
        if token.type in _STRUCTURAL:
            handler = _STATEMENT_DISPATCH.get(token.value)
            if handler is not None:
                statement = handler(self)
                # non-field attribute (like the printer/EPDG memo slots):
                # dataclass equality and fields() stay untouched, so
                # differential tests against position-less ASTs still pass
                statement.position = (token.line, token.column)
                return statement
        if self._at_type_start():
            statement = self._parse_local_var_decl()
            self._expect(";")
        else:
            statement = ast.ExpressionStatement(self._parse_expression())
            self._expect(";")
        statement.position = (token.line, token.column)
        return statement

    def _parse_empty_statement(self) -> ast.EmptyStatement:
        self._advance()
        return ast.EmptyStatement()

    def _parse_break(self) -> ast.Break:
        self._advance()
        label = None
        if self._peek().type is TokenType.IDENTIFIER:
            label = self._advance().value
        self._expect(";")
        return ast.Break(label)

    def _parse_continue(self) -> ast.Continue:
        self._advance()
        label = None
        if self._peek().type is TokenType.IDENTIFIER:
            label = self._advance().value
        self._expect(";")
        return ast.Continue(label)

    def _parse_return(self) -> ast.Return:
        self._advance()
        value = None
        if not self._check(";"):
            value = self._parse_expression()
        self._expect(";")
        return ast.Return(value)

    def _parse_final_decl(self) -> ast.LocalVarDecl:
        self._advance()
        declaration = self._parse_local_var_decl()
        self._expect(";")
        return declaration

    def _parse_local_var_decl(self) -> ast.LocalVarDecl:
        var_type = self._parse_type()
        declarators = [self._parse_declarator()]
        while self._match(","):
            declarators.append(self._parse_declarator())
        return ast.LocalVarDecl(type=var_type, declarators=declarators)

    def _parse_declarator(self) -> ast.VarDeclarator:
        name = self._expect_identifier()
        extra_dimensions = 0
        while self._check("[") and self._check("]", 1):
            self._advance()
            self._advance()
            extra_dimensions += 1
        initializer = None
        if self._match("="):
            if self._check("{"):
                initializer = self._parse_array_initializer()
            else:
                initializer = self._parse_expression()
        return ast.VarDeclarator(
            name=name, initializer=initializer, extra_dimensions=extra_dimensions
        )

    def _parse_if(self) -> ast.If:
        self._expect("if")
        self._expect("(")
        condition = self._parse_expression()
        self._expect(")")
        then_branch = self._parse_statement()
        else_branch = None
        if self._match("else"):
            else_branch = self._parse_statement()
        return ast.If(condition, then_branch, else_branch)

    def _parse_while(self) -> ast.While:
        self._expect("while")
        self._expect("(")
        condition = self._parse_expression()
        self._expect(")")
        body = self._parse_statement()
        return ast.While(condition, body)

    def _parse_do_while(self) -> ast.DoWhile:
        self._expect("do")
        body = self._parse_statement()
        self._expect("while")
        self._expect("(")
        condition = self._parse_expression()
        self._expect(")")
        self._expect(";")
        return ast.DoWhile(body, condition)

    def _parse_for(self) -> ast.Statement:
        self._expect("for")
        self._expect("(")
        # enhanced for: `for (Type name : expr)`
        checkpoint = self._pos
        if self._at_type_start() or (
            self._peek().type is TokenType.KEYWORD
            and self._peek().value in PRIMITIVE_TYPES
        ):
            try:
                item_type = self._parse_type()
                name = self._expect_identifier()
                if self._match(":"):
                    iterable = self._parse_expression()
                    self._expect(")")
                    body = self._parse_statement()
                    return ast.ForEach(item_type, name, iterable, body)
            except JavaSyntaxError:
                pass
            self._pos = checkpoint
        init: list[ast.Statement] = []
        if not self._check(";"):
            if self._at_type_start():
                init.append(self._parse_local_var_decl())
            else:
                init.append(ast.ExpressionStatement(self._parse_expression()))
                while self._match(","):
                    init.append(ast.ExpressionStatement(self._parse_expression()))
        self._expect(";")
        condition = None
        if not self._check(";"):
            condition = self._parse_expression()
        self._expect(";")
        update: list[ast.Expression] = []
        if not self._check(")"):
            update.append(self._parse_expression())
            while self._match(","):
                update.append(self._parse_expression())
        self._expect(")")
        body = self._parse_statement()
        return ast.For(init, condition, update, body)

    def _parse_switch(self) -> ast.Switch:
        self._expect("switch")
        self._expect("(")
        selector = self._parse_expression()
        self._expect(")")
        self._expect("{")
        cases: list[ast.SwitchCase] = []
        while not self._check("}"):
            labels: list[ast.Expression | None] = []
            while self._check("case") or self._check("default"):
                if self._match("case"):
                    labels.append(self._parse_expression())
                else:
                    self._expect("default")
                    labels.append(None)
                self._expect(":")
            if not labels:
                raise self._error("expected 'case' or 'default' in switch body")
            statements: list[ast.Statement] = []
            while not (
                self._check("case") or self._check("default") or self._check("}")
            ):
                statements.append(self._parse_statement())
            cases.append(ast.SwitchCase(labels, statements))
        self._expect("}")
        return ast.Switch(selector, cases)

    # ------------------------------------------------------------------
    # expressions

    def _parse_expression(self) -> ast.Expression:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expression:
        left = self._parse_ternary()
        token = self._tokens[self._pos]
        if token.type is TokenType.OPERATOR and token.value in _ASSIGN_OPERATORS:
            self._pos += 1
            value = self._parse_assignment()
            return ast.Assignment(target=left, operator=token.value, value=value)
        return left

    def _parse_ternary(self) -> ast.Expression:
        condition = self._parse_binary(1)
        token = self._tokens[self._pos]
        if token.value == "?" and token.type is TokenType.OPERATOR:
            self._pos += 1
            if_true = self._parse_expression()
            self._expect(":")
            if_false = self._parse_assignment()
            return ast.Ternary(condition, if_true, if_false)
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expression:
        left = self._parse_unary()
        tokens = self._tokens
        get_precedence = _BINARY_PRECEDENCE.get
        while True:
            token = tokens[self._pos]
            token_type = token.type
            if token_type is TokenType.OPERATOR:
                operator = token.value
                precedence = get_precedence(operator)
                if precedence is None or precedence < min_precedence:
                    return left
                self._pos += 1
                right = self._parse_binary(precedence + 1)
                left = ast.Binary(operator, left, right)
                continue
            if token_type is TokenType.KEYWORD and token.value == "instanceof":
                if _BINARY_PRECEDENCE["instanceof"] < min_precedence:
                    return left
                self._pos += 1
                right_type = self._parse_type()
                left = ast.Binary("instanceof", left, ast.Name(str(right_type)))
                continue
            return left

    def _parse_unary(self) -> ast.Expression:
        token = self._tokens[self._pos]
        if token.type is TokenType.OPERATOR:
            operator = token.value
            if operator in _UNARY_PREFIX:
                self._pos += 1
                operand = self._parse_unary()
                # Fold unary minus into negative literals so `-1` renders as
                # a single literal, matching how instructors write patterns.
                if (
                    operator == "-"
                    and isinstance(operand, ast.Literal)
                    and operand.kind in ("int", "long", "double")
                ):
                    return ast.Literal(-operand.value, operand.kind)  # type: ignore[operator]
                return ast.Unary(operator, operand, prefix=True)
            if operator == "++" or operator == "--":
                self._pos += 1
                operand = self._parse_unary()
                return ast.Unary(operator, operand, prefix=True)
        elif (
            token.type is TokenType.SEPARATOR
            and token.value == "("
            and self._is_cast()
        ):
            self._pos += 1
            cast_type = self._parse_type()
            self._expect(")")
            expression = self._parse_unary()
            return ast.Cast(cast_type, expression)
        return self._parse_postfix()

    def _is_cast(self) -> bool:
        """Lookahead check for `(type) unary` casts.

        Only primitive-type casts are treated as casts; `(expr)` with a
        class-type name is ambiguous in Java and intro submissions do not
        need reference casts.
        """
        offset = 1
        token = self._peek(offset)
        if token.type is TokenType.KEYWORD and token.value in PRIMITIVE_TYPES:
            offset += 1
            while self._check("[", offset) and self._check("]", offset + 1):
                offset += 2
            return self._check(")", offset)
        return False

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_primary()
        tokens = self._tokens
        while True:
            token = tokens[self._pos]
            token_type = token.type
            if token_type is TokenType.SEPARATOR:
                if token.value == ".":
                    self._pos += 1
                    name = self._expect_identifier()
                    if self._check("("):
                        arguments = self._parse_arguments()
                        expression = ast.MethodCall(expression, name, arguments)
                    else:
                        expression = ast.FieldAccess(expression, name)
                    continue
                if token.value == "[":
                    self._pos += 1
                    index = self._parse_expression()
                    self._expect("]")
                    expression = ast.ArrayAccess(expression, index)
                    continue
                return expression
            if token_type is TokenType.OPERATOR and token.value in ("++", "--"):
                self._pos += 1
                expression = ast.Unary(token.value, expression, prefix=False)
                continue
            return expression

    def _parse_arguments(self) -> list[ast.Expression]:
        self._expect("(")
        arguments: list[ast.Expression] = []
        if not self._check(")"):
            arguments.append(self._parse_expression())
            while self._match(","):
                arguments.append(self._parse_expression())
        self._expect(")")
        return arguments

    def _parse_array_initializer(self) -> ast.ArrayInitializer:
        self._expect("{")
        elements: list[ast.Expression] = []
        if not self._check("}"):
            while True:
                if self._check("{"):
                    elements.append(self._parse_array_initializer())
                else:
                    elements.append(self._parse_expression())
                if not self._match(","):
                    break
        self._expect("}")
        return ast.ArrayInitializer(elements)

    def _parse_primary(self) -> ast.Expression:
        token = self._tokens[self._pos]
        token_type = token.type
        if token_type is TokenType.IDENTIFIER:
            self._pos += 1
            if self._check("("):
                arguments = self._parse_arguments()
                return ast.MethodCall(None, token.value, arguments)
            return ast.Name(token.value)
        if token_type is TokenType.SEPARATOR:
            if token.value == "(":
                self._pos += 1
                expression = self._parse_expression()
                self._expect(")")
                return expression
        elif token_type is TokenType.KEYWORD:
            if token.value == "new":
                return self._parse_creation()
            if token.value == "this":
                self._pos += 1
                return ast.Name("this")
        elif token_type is TokenType.INT_LITERAL:
            self._pos += 1
            return ast.Literal(int(token.value.replace("_", ""), 0), "int")
        elif token_type is TokenType.LONG_LITERAL:
            self._pos += 1
            return ast.Literal(
                int(token.value.rstrip("lL").replace("_", ""), 0), "long"
            )
        elif token_type is TokenType.DOUBLE_LITERAL:
            self._pos += 1
            return ast.Literal(
                float(token.value.rstrip("dDfF").replace("_", "")), "double"
            )
        elif token_type is TokenType.STRING_LITERAL:
            self._pos += 1
            return ast.Literal(token.value, "string")
        elif token_type is TokenType.CHAR_LITERAL:
            self._pos += 1
            return ast.Literal(token.value, "char")
        elif token_type is TokenType.BOOL_LITERAL:
            self._pos += 1
            return ast.Literal(token.value == "true", "boolean")
        elif token_type is TokenType.NULL_LITERAL:
            self._pos += 1
            return ast.Literal(None, "null")
        raise self._error(f"unexpected token {token.value!r} in expression")

    def _parse_creation(self) -> ast.Expression:
        self._expect("new")
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in PRIMITIVE_TYPES:
            base = ast.Type(self._advance().value)
        else:
            name = self._expect_identifier()
            while self._check(".") and self._peek(1).type is TokenType.IDENTIFIER:
                self._advance()
                name += "." + self._advance().value
            base = ast.Type(name)
        if self._check("("):
            arguments = self._parse_arguments()
            return ast.ObjectCreation(base, arguments)
        dimensions: list[ast.Expression] = []
        total_dims = 0
        while self._check("["):
            self._advance()
            if self._check("]"):
                self._advance()
                total_dims += 1
            else:
                dimensions.append(self._parse_expression())
                self._expect("]")
                total_dims += 1
        initializer = None
        if self._check("{"):
            initializer = self._parse_array_initializer()
        if total_dims == 0:
            raise self._error("array creation requires dimensions")
        return ast.ArrayCreation(
            ast.Type(base.name, total_dims), dimensions, initializer
        )


#: Statement dispatch keyed on the leading structural token's value.  The
#: caller has already verified the token type is in :data:`_STRUCTURAL`, so
#: a string literal whose content happens to be ``"if"`` cannot land here.
_STATEMENT_DISPATCH = {
    "{": Parser._parse_block,
    ";": Parser._parse_empty_statement,
    "if": Parser._parse_if,
    "while": Parser._parse_while,
    "do": Parser._parse_do_while,
    "for": Parser._parse_for,
    "switch": Parser._parse_switch,
    "break": Parser._parse_break,
    "continue": Parser._parse_continue,
    "return": Parser._parse_return,
    "final": Parser._parse_final_decl,
}


def parse_submission(source: str) -> ast.CompilationUnit:
    """Parse a student submission into a :class:`~repro.java.ast.CompilationUnit`."""
    return Parser(source).parse_submission()


def parse_expression(source: str) -> ast.Expression:
    """Parse a single Java expression."""
    return Parser(source).parse_expression_only()
