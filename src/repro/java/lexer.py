"""Tokenizer for the Java subset.

Produces a flat list of :class:`Token` objects with source positions.
Comments and whitespace are skipped.  The lexer is deliberately strict:
anything it does not recognize raises :class:`~repro.errors.JavaSyntaxError`
with the offending position, which the grading pipeline surfaces as
"submission does not compile" feedback.

The scanner is a single pass driven by two precompiled master regexes: one
that swallows maximal runs of trivia (whitespace and comments) and one whose
named alternatives classify the next token.  Line/column bookkeeping is lazy
-- newlines are counted per trivia run instead of per character -- and word
classification is a single dict lookup in :data:`_WORD_TYPES`.  String and
char literals take a fast path when well formed; any malformed literal is
re-scanned by a slow path that reproduces the historical character-at-a-time
errors (message and position) exactly.
"""

from __future__ import annotations

import enum
import re

from repro.errors import JavaSyntaxError


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`Lexer`."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INT_LITERAL = "int"
    LONG_LITERAL = "long"
    DOUBLE_LITERAL = "double"
    STRING_LITERAL = "string"
    CHAR_LITERAL = "char"
    BOOL_LITERAL = "boolean"
    NULL_LITERAL = "null"
    OPERATOR = "operator"
    SEPARATOR = "separator"
    EOF = "eof"


#: Reserved words recognized as keywords (subset relevant to intro courses).
KEYWORDS = frozenset(
    {
        "abstract", "assert", "boolean", "break", "byte", "case", "catch",
        "char", "class", "const", "continue", "default", "do", "double",
        "else", "enum", "extends", "final", "finally", "float", "for",
        "goto", "if", "implements", "import", "instanceof", "int",
        "interface", "long", "native", "new", "package", "private",
        "protected", "public", "return", "short", "static", "strictfp",
        "super", "switch", "synchronized", "this", "throw", "throws",
        "transient", "try", "void", "volatile", "while",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    ">>>=", "<<=", ">>=", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^", "?", ":",
)

_SEPARATORS = frozenset("(){}[];,.@")

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f",
    "0": "\0", "'": "'", '"': '"', "\\": "\\",
}

#: Word → token type dispatch table; anything absent is an identifier.
_WORD_TYPES = {keyword: TokenType.KEYWORD for keyword in KEYWORDS}
_WORD_TYPES["true"] = TokenType.BOOL_LITERAL
_WORD_TYPES["false"] = TokenType.BOOL_LITERAL
_WORD_TYPES["null"] = TokenType.NULL_LITERAL

#: Maximal run of whitespace, line comments, and *closed* block comments.
#: An unterminated block comment is left unconsumed so the token loop can
#: report it (see the ``startswith("/*", ...)`` check in :func:`_scan`).
_TRIVIA = re.compile(r"(?:[ \t\r\n]+|//[^\n]*|/\*.*?\*/)+", re.S)

#: Master token regex.  Alternative order matters: ``num`` must see ``.5``
#: before ``sep`` claims the dot, and ``hex`` must pre-empt ``num`` for the
#: ``0x`` prefix.  The operator alternative lists multi-char operators
#: longest first so maximal munch matches the table in :data:`_OPERATORS`.
_TOKEN = re.compile(
    r"""
      (?P<word>(?:[^\W\d]|\$)(?:\w|\$)*)
     |(?P<hex>0[xX][0-9a-fA-F_]*)
     |(?P<num>(?:\d[\d_]*(?:\.\d[\d_]*)?|\.\d[\d_]*)(?:[eE][+-]?\d+)?)
     |(?P<string>"(?:[^"\\\n]|\\.)*")
     |(?P<char>'(?:[^'\\\n]|\\.)')
     |(?P<sep>[(){}\[\];,.@])
     |(?P<op>>>>=|<<=|>>=|>>>|==|!=|<=|>=|&&|\|\||\+\+|--|\+=|-=|\*=|/=
             |%=|&=|\|=|\^=|<<|>>|[+\-*/%=<>!~&|^?:])
    """,
    re.X,
)

#: Numeric type-suffix letter immediately following a number match.
_NUM_SUFFIX = re.compile(r"[dDfFlL]")


class Token:
    """A single lexical token with its source position (1-based)."""

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type: TokenType, value: str, line: int, column: int):
        self.type = type
        self.value = value
        self.line = line
        self.column = column

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.type is other.type
            and self.value == other.value
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value, self.line, self.column))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


def _scan(source: str) -> list[Token]:
    """Tokenize ``source``; the single hot loop behind :func:`tokenize`."""
    result: list[Token] = []
    append = result.append
    pos = 0
    n = len(source)
    line = 1
    line_start = 0  # offset of the first character of the current line
    match_trivia = _TRIVIA.match
    match_token = _TOKEN.match
    match_suffix = _NUM_SUFFIX.match
    count_newlines = source.count
    word_types = _WORD_TYPES
    while True:
        m = match_trivia(source, pos)
        if m is not None:
            end = m.end()
            newlines = count_newlines("\n", pos, end)
            if newlines:
                line += newlines
                line_start = source.rindex("\n", pos, end) + 1
            pos = end
        if pos >= n:
            append(Token(TokenType.EOF, "", line, pos - line_start + 1))
            return result
        column = pos - line_start + 1
        m = match_token(source, pos)
        if m is None:
            ch = source[pos]
            if ch == '"':
                _string_slow(source, pos, line, column)
                raise AssertionError("string slow path must raise")  # pragma: no cover
            if ch == "'":
                token_line = line
                value, pos, line, line_start = _char_slow(source, pos, line, line_start)
                append(Token(TokenType.CHAR_LITERAL, value, token_line, column))
                continue
            raise JavaSyntaxError(f"unexpected character {ch!r}", line, column)
        kind = m.lastgroup
        end = m.end()
        if kind == "word":
            text = m.group()
            append(Token(word_types.get(text, TokenType.IDENTIFIER), text, line, column))
        elif kind == "sep":
            append(Token(TokenType.SEPARATOR, m.group(), line, column))
        elif kind == "op":
            text = m.group()
            if text == "/" and source.startswith("*", end):
                # A closed block comment would have been consumed as trivia,
                # so "/*" here is unterminated.  The historical scanner
                # consumed to end of input before noticing, so the error
                # points at EOF.
                raise JavaSyntaxError(
                    "unterminated block comment",
                    *_end_position(source, pos, line, line_start),
                )
            append(Token(TokenType.OPERATOR, text, line, column))
        elif kind == "num" or kind == "hex":
            text = m.group()
            sm = match_suffix(source, end)
            if sm is not None:
                suffix = sm.group()
                end = end + 1
                text += suffix
                token_type = (
                    TokenType.DOUBLE_LITERAL
                    if suffix in "dDfF"
                    else TokenType.LONG_LITERAL
                )
            elif kind == "hex" or (
                "." not in text and "e" not in text and "E" not in text
            ):
                token_type = TokenType.INT_LITERAL
            else:
                token_type = TokenType.DOUBLE_LITERAL
            append(Token(token_type, text, line, column))
        elif kind == "string":
            body = m.group()
            append(
                Token(
                    TokenType.STRING_LITERAL,
                    _unescape(source, pos, body[1:-1], line, column),
                    line,
                    column,
                )
            )
        else:  # char
            body = m.group()
            if len(body) == 3:  # 'x'
                value = body[1]
            else:  # '\x' — escaped
                escape = body[2]
                if escape not in _ESCAPES:
                    _char_slow(source, pos, line, line_start)
                    raise AssertionError("char slow path must raise")  # pragma: no cover
                value = _ESCAPES[escape]
            append(Token(TokenType.CHAR_LITERAL, value, line, column))
        pos = end


def _unescape(source: str, pos: int, body: str, line: int, column: int) -> str:
    """Resolve backslash escapes in a string literal body.

    On any invalid escape, defer to :func:`_string_slow` so the raised error
    matches the historical scanner byte for byte.
    """
    if "\\" not in body:
        return body
    out: list[str] = []
    append = out.append
    escapes = _ESCAPES
    i = 0
    n = len(body)
    while i < n:
        ch = body[i]
        if ch == "\\":
            escape = body[i + 1]
            replacement = escapes.get(escape)
            if replacement is None:
                _string_slow(source, pos, line, column)
                raise AssertionError("string slow path must raise")  # pragma: no cover
            append(replacement)
            i += 2
        else:
            append(ch)
            i += 1
    return "".join(out)


def _end_position(source: str, pos: int, line: int, line_start: int) -> tuple[int, int]:
    """Line/column of end-of-input, as if scanned char by char from ``pos``."""
    n = len(source)
    newlines = source.count("\n", pos, n)
    if newlines:
        line += newlines
        line_start = source.rindex("\n", pos, n) + 1
    return line, n - line_start + 1


def _string_slow(source: str, pos: int, line: int, column: int) -> None:
    """Re-scan a malformed string literal to raise the historical error.

    ``pos`` points at the opening quote.  Mirrors the original per-character
    scanner exactly: position bookkeeping advances through each consumed
    character, so the raised position identifies where scanning stopped.
    Always raises (the fast path only comes here for malformed literals).
    """
    n = len(source)
    pos += 1
    column += 1
    while True:
        if pos >= n:
            raise JavaSyntaxError("unterminated string literal", line, column)
        ch = source[pos]
        pos += 1
        if ch == "\n":
            line += 1
            column = 1
        else:
            column += 1
        if ch == '"':
            # The literal is well formed after all; the fast path only calls
            # this for errors, so reaching here means an invalid escape was
            # seen — but escapes were consumed below before the quote.
            raise AssertionError("string slow path reached closing quote")  # pragma: no cover
        if ch == "\n":
            raise JavaSyntaxError("newline in string literal", line, column)
        if ch == "\\":
            if pos < n:
                escape = source[pos]
                pos += 1
                if escape == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
            else:
                escape = ""
            if escape not in _ESCAPES:
                raise JavaSyntaxError(f"unsupported escape \\{escape}", line, column)


def _char_slow(
    source: str, pos: int, line: int, line_start: int
) -> tuple[str, int, int, int]:
    """Scan a char literal the regex rejected (or one with a bad escape).

    ``pos`` points at the opening quote.  Handles literals containing a raw
    newline (which the master regex excludes) and reproduces the historical
    errors for everything else.  Returns ``(value, pos, line, line_start)``
    with the cursor past the closing quote.
    """
    n = len(source)
    column = pos - line_start + 1

    def advance() -> str:
        nonlocal pos, line, line_start, column
        if pos >= n:
            pos += 1
            return ""
        ch = source[pos]
        pos += 1
        if ch == "\n":
            line += 1
            line_start = pos
            column = 1
        else:
            column += 1
        return ch

    advance()  # opening quote
    ch = advance()
    if ch == "\\":
        escape = advance()
        if escape not in _ESCAPES:
            raise JavaSyntaxError(f"unsupported escape \\{escape}", line, column)
        ch = _ESCAPES[escape]
    if advance() != "'":
        raise JavaSyntaxError("unterminated char literal", line, column)
    return ch, pos, line, line_start


class Lexer:
    """Single-pass scanner over a Java source string."""

    def __init__(self, source: str):
        self._source = source

    def tokens(self) -> list[Token]:
        """Scan the whole input and return the token list ending in EOF."""
        return _scan(self._source)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` and return the token list (ending with EOF)."""
    return _scan(source)
