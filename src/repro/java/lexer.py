"""Tokenizer for the Java subset.

Produces a flat list of :class:`Token` objects with source positions.
Comments and whitespace are skipped.  The lexer is deliberately strict:
anything it does not recognize raises :class:`~repro.errors.JavaSyntaxError`
with the offending position, which the grading pipeline surfaces as
"submission does not compile" feedback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import JavaSyntaxError


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`Lexer`."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INT_LITERAL = "int"
    LONG_LITERAL = "long"
    DOUBLE_LITERAL = "double"
    STRING_LITERAL = "string"
    CHAR_LITERAL = "char"
    BOOL_LITERAL = "boolean"
    NULL_LITERAL = "null"
    OPERATOR = "operator"
    SEPARATOR = "separator"
    EOF = "eof"


#: Reserved words recognized as keywords (subset relevant to intro courses).
KEYWORDS = frozenset(
    {
        "abstract", "assert", "boolean", "break", "byte", "case", "catch",
        "char", "class", "const", "continue", "default", "do", "double",
        "else", "enum", "extends", "final", "finally", "float", "for",
        "goto", "if", "implements", "import", "instanceof", "int",
        "interface", "long", "native", "new", "package", "private",
        "protected", "public", "return", "short", "static", "strictfp",
        "super", "switch", "synchronized", "this", "throw", "throws",
        "transient", "try", "void", "volatile", "while",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    ">>>=", "<<=", ">>=", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^", "?", ":",
)

_SEPARATORS = frozenset("(){}[];,.@")

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f",
    "0": "\0", "'": "'", '"': '"', "\\": "\\",
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Single-pass scanner over a Java source string."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> list[Token]:
        """Scan the whole input and return the token list ending in EOF."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    # ------------------------------------------------------------------
    # scanning machinery

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos:self._pos + count]
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return text

    def _error(self, message: str) -> JavaSyntaxError:
        return JavaSyntaxError(message, self._line, self._column)

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self._line, self._column
        if self._pos >= len(self._source):
            return Token(TokenType.EOF, "", line, column)
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch.isalpha() or ch in "_$":
            return self._word(line, column)
        if ch == '"':
            return self._string(line, column)
        if ch == "'":
            return self._char(line, column)
        if ch in _SEPARATORS:
            self._advance()
            return Token(TokenType.SEPARATOR, ch, line, column)
        for op in _OPERATORS:
            if self._source.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _word(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._source) and (
            self._peek().isalnum() or self._peek() in "_$"
        ):
            self._advance()
        text = self._source[start:self._pos]
        if text in ("true", "false"):
            return Token(TokenType.BOOL_LITERAL, text, line, column)
        if text == "null":
            return Token(TokenType.NULL_LITERAL, text, line, column)
        if text in KEYWORDS:
            return Token(TokenType.KEYWORD, text, line, column)
        return Token(TokenType.IDENTIFIER, text, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self._pos
        is_double = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF_":
                self._advance()
        else:
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()
            if self._peek() == "." and self._peek(1).isdigit():
                is_double = True
                self._advance()
                while self._peek().isdigit() or self._peek() == "_":
                    self._advance()
            if self._peek() and self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_double = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        if self._peek() and self._peek() in "dDfF":
            self._advance()
            text = self._source[start:self._pos]
            return Token(TokenType.DOUBLE_LITERAL, text, line, column)
        if self._peek() and self._peek() in "lL":
            self._advance()
            text = self._source[start:self._pos]
            return Token(TokenType.LONG_LITERAL, text, line, column)
        text = self._source[start:self._pos]
        token_type = TokenType.DOUBLE_LITERAL if is_double else TokenType.INT_LITERAL
        return Token(token_type, text, line, column)

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._pos >= len(self._source):
                raise self._error("unterminated string literal")
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\n":
                raise self._error("newline in string literal")
            if ch == "\\":
                escape = self._advance()
                if escape not in _ESCAPES:
                    raise self._error(f"unsupported escape \\{escape}")
                chars.append(_ESCAPES[escape])
            else:
                chars.append(ch)
        return Token(TokenType.STRING_LITERAL, "".join(chars), line, column)

    def _char(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        ch = self._advance()
        if ch == "\\":
            escape = self._advance()
            if escape not in _ESCAPES:
                raise self._error(f"unsupported escape \\{escape}")
            ch = _ESCAPES[escape]
        if self._advance() != "'":
            raise self._error("unterminated char literal")
        return Token(TokenType.CHAR_LITERAL, ch, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` and return the token list (ending with EOF)."""
    return Lexer(source).tokens()
