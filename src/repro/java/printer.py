"""Canonical printer: render AST nodes back to normalized Java source.

Two jobs depend on this module:

* The EPDG builder labels every graph node with the *canonical* text of its
  expression (single spaces around binary operators, no redundant
  parentheses), which is what pattern templates match against.
* The synthetic-submission generator unparses mutated ASTs into compilable
  source text.

Expression printing is precedence-aware, so ``(i % 2) == 1`` and
``i % 2 == 1`` both render to ``i % 2 == 1`` while parentheses that change
meaning (``(a + b) * c``) are preserved.
"""

from __future__ import annotations

from repro.java import ast

_PRECEDENCE = {
    "=": 0, "+=": 0, "-=": 0, "*=": 0, "/=": 0, "%=": 0,
    "&=": 0, "|=": 0, "^=": 0, "<<=": 0, ">>=": 0, ">>>=": 0,
    "?:": 1,
    "||": 2,
    "&&": 3,
    "|": 4,
    "^": 5,
    "&": 6,
    "==": 7, "!=": 7,
    "<": 8, ">": 8, "<=": 8, ">=": 8, "instanceof": 8,
    "<<": 9, ">>": 9, ">>>": 9,
    "+": 10, "-": 10,
    "*": 11, "/": 11, "%": 11,
    "unary": 12,
    "postfix": 13,
}

_STRING_ESCAPES = {
    "\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t",
    "\r": "\\r", "\b": "\\b", "\f": "\\f", "\0": "\\0",
}


def _escape_string(value: str) -> str:
    return "".join(_STRING_ESCAPES.get(ch, ch) for ch in value)


#: Precedence assigned to forms that are never parenthesized (atoms and
#: postfix-shaped nodes such as calls, field accesses, and indexing).
_ATOM = 99


def print_expression(node: ast.Expression) -> str:
    """Render an expression to canonical single-line source text."""
    try:
        return node._printed[0]  # type: ignore[attr-defined]
    except AttributeError:
        return _expr(node, 0)


def _expr(node: ast.Expression, parent_precedence: int) -> str:
    """Memoized rendering: each node caches ``(core text, precedence)``.

    The core text embeds the children's parentheses (those depend only on
    this node), while this node's own parentheses depend on the caller and
    are applied per call.  The memo lives directly on the (mutable,
    never-mutated-after-parse) AST node, so identical statements printed
    repeatedly — EPDG labels, feedback rendering, synthesis — cost one dict
    lookup after the first rendering.
    """
    try:
        text, precedence = node._printed  # type: ignore[attr-defined]
    except AttributeError:
        text, precedence = _render(node)
        node._printed = (text, precedence)  # type: ignore[attr-defined]
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _render(node: ast.Expression) -> tuple[str, int]:
    if isinstance(node, ast.Literal):
        return _literal(node), _ATOM
    if isinstance(node, ast.Name):
        return node.identifier, _ATOM
    if isinstance(node, ast.FieldAccess):
        return f"{_expr(node.target, _PRECEDENCE['postfix'])}.{node.name}", _ATOM
    if isinstance(node, ast.ArrayAccess):
        return (
            f"{_expr(node.array, _PRECEDENCE['postfix'])}"
            f"[{_expr(node.index, 0)}]"
        ), _ATOM
    if isinstance(node, ast.MethodCall):
        arguments = ", ".join(_expr(arg, 0) for arg in node.arguments)
        if node.target is None:
            return f"{node.name}({arguments})", _ATOM
        return (
            f"{_expr(node.target, _PRECEDENCE['postfix'])}.{node.name}({arguments})"
        ), _ATOM
    if isinstance(node, ast.ObjectCreation):
        arguments = ", ".join(_expr(arg, 0) for arg in node.arguments)
        return f"new {node.type}({arguments})", _ATOM
    if isinstance(node, ast.ArrayCreation):
        base = node.type.name
        dims = "".join(f"[{_expr(d, 0)}]" for d in node.dimensions)
        dims += "[]" * (node.type.dimensions - len(node.dimensions))
        text = f"new {base}{dims}"
        if node.initializer is not None:
            text += " " + _expr(node.initializer, 0)
        return text, _ATOM
    if isinstance(node, ast.ArrayInitializer):
        return "{" + ", ".join(_expr(e, 0) for e in node.elements) + "}", _ATOM
    if isinstance(node, ast.Unary):
        precedence = _PRECEDENCE["unary" if node.prefix else "postfix"]
        operand = _expr(node.operand, precedence)
        text = f"{node.operator}{operand}" if node.prefix else f"{operand}{node.operator}"
        return text, precedence
    if isinstance(node, ast.Binary):
        precedence = _PRECEDENCE[node.operator]
        left = _expr(node.left, precedence)
        # +1 forces parentheses on same-precedence right operands, keeping
        # left-associativity explicit: a - (b - c).
        right = _expr(node.right, precedence + 1)
        return f"{left} {node.operator} {right}", precedence
    if isinstance(node, ast.Ternary):
        precedence = _PRECEDENCE["?:"]
        text = (
            f"{_expr(node.condition, precedence + 1)} ? "
            f"{_expr(node.if_true, 0)} : {_expr(node.if_false, precedence)}"
        )
        return text, precedence
    if isinstance(node, ast.Assignment):
        precedence = _PRECEDENCE[node.operator]
        text = (
            f"{_expr(node.target, _PRECEDENCE['postfix'])} {node.operator} "
            f"{_expr(node.value, precedence)}"
        )
        return text, precedence
    if isinstance(node, ast.Cast):
        precedence = _PRECEDENCE["unary"]
        text = f"({node.type}) {_expr(node.expression, precedence)}"
        return text, precedence
    raise TypeError(f"cannot print expression node {type(node).__name__}")


def _literal(node: ast.Literal) -> str:
    if node.kind == "string":
        return f'"{_escape_string(str(node.value))}"'
    if node.kind == "char":
        ch = str(node.value)
        return "'" + _STRING_ESCAPES.get(ch, ch).replace('\\"', '"') + "'"
    if node.kind == "boolean":
        return "true" if node.value else "false"
    if node.kind == "null":
        return "null"
    if node.kind == "long":
        return f"{node.value}L"
    if node.kind == "double":
        value = node.value
        if isinstance(value, float) and value == int(value):
            return f"{value:.1f}"
        return repr(value)
    return str(node.value)


# ----------------------------------------------------------------------
# statements and declarations


class _Printer:
    """Stateful indented printer for statements and declarations."""

    def __init__(self, indent: str = "    "):
        self._indent = indent
        self._lines: list[str] = []
        self._level = 0

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"

    def _emit(self, line: str) -> None:
        self._lines.append(self._indent * self._level + line)

    def declaration(self, node: ast.Node) -> None:
        if isinstance(node, ast.CompilationUnit):
            for imported in node.imports:
                self._emit(f"import {imported};")
            if node.imports:
                self._emit("")
            for cls in node.classes:
                self.declaration(cls)
            for method in node.bare_methods:
                self.declaration(method)
            return
        if isinstance(node, ast.ClassDecl):
            modifiers = " ".join(node.modifiers)
            prefix = f"{modifiers} " if modifiers else ""
            self._emit(f"{prefix}class {node.name} {{")
            self._level += 1
            for field_decl in node.fields:
                field_modifiers = " ".join(field_decl.modifiers)
                field_prefix = f"{field_modifiers} " if field_modifiers else ""
                declarators = ", ".join(
                    _declarator(d) for d in field_decl.declarators
                )
                self._emit(f"{field_prefix}{field_decl.type} {declarators};")
            for method in node.methods:
                self.declaration(method)
            self._level -= 1
            self._emit("}")
            return
        if isinstance(node, ast.MethodDecl):
            modifiers = " ".join(node.modifiers)
            prefix = f"{modifiers} " if modifiers else ""
            params = ", ".join(f"{p.type} {p.name}" for p in node.parameters)
            throws = f" throws {', '.join(node.throws)}" if node.throws else ""
            self._emit(f"{prefix}{node.return_type} {node.name}({params}){throws} {{")
            self._level += 1
            for statement in node.body.statements:
                self.statement(statement)
            self._level -= 1
            self._emit("}")
            return
        raise TypeError(f"cannot print declaration node {type(node).__name__}")

    def statement(self, node: ast.Statement) -> None:
        if isinstance(node, ast.Block):
            self._emit("{")
            self._level += 1
            for statement in node.statements:
                self.statement(statement)
            self._level -= 1
            self._emit("}")
        elif isinstance(node, ast.LocalVarDecl):
            declarators = ", ".join(_declarator(d) for d in node.declarators)
            self._emit(f"{node.type} {declarators};")
        elif isinstance(node, ast.ExpressionStatement):
            self._emit(f"{print_expression(node.expression)};")
        elif isinstance(node, ast.If):
            self._emit(f"if ({print_expression(node.condition)}) {{")
            self._block_body(node.then_branch)
            if node.else_branch is not None:
                self._emit("} else {")
                self._block_body(node.else_branch)
            self._emit("}")
        elif isinstance(node, ast.While):
            self._emit(f"while ({print_expression(node.condition)}) {{")
            self._block_body(node.body)
            self._emit("}")
        elif isinstance(node, ast.DoWhile):
            self._emit("do {")
            self._block_body(node.body)
            self._emit(f"}} while ({print_expression(node.condition)});")
        elif isinstance(node, ast.For):
            init = "; ".join(_inline_statement(s) for s in node.init)
            condition = print_expression(node.condition) if node.condition else ""
            update = ", ".join(print_expression(u) for u in node.update)
            self._emit(f"for ({init}; {condition}; {update}) {{")
            self._block_body(node.body)
            self._emit("}")
        elif isinstance(node, ast.ForEach):
            self._emit(
                f"for ({node.type} {node.name} : "
                f"{print_expression(node.iterable)}) {{"
            )
            self._block_body(node.body)
            self._emit("}")
        elif isinstance(node, ast.Break):
            self._emit(f"break{' ' + node.label if node.label else ''};")
        elif isinstance(node, ast.Continue):
            self._emit(f"continue{' ' + node.label if node.label else ''};")
        elif isinstance(node, ast.Return):
            if node.value is None:
                self._emit("return;")
            else:
                self._emit(f"return {print_expression(node.value)};")
        elif isinstance(node, ast.Switch):
            self._emit(f"switch ({print_expression(node.selector)}) {{")
            self._level += 1
            for case in node.cases:
                for label in case.labels:
                    if label is None:
                        self._emit("default:")
                    else:
                        self._emit(f"case {print_expression(label)}:")
                self._level += 1
                for statement in case.statements:
                    self.statement(statement)
                self._level -= 1
            self._level -= 1
            self._emit("}")
        elif isinstance(node, ast.EmptyStatement):
            self._emit(";")
        else:
            raise TypeError(f"cannot print statement node {type(node).__name__}")

    def _block_body(self, node: ast.Statement) -> None:
        """Print the body of a control statement one level deeper.

        Bodies that are already blocks are flattened so the output uses a
        single consistent brace style.
        """
        self._level += 1
        if isinstance(node, ast.Block):
            for statement in node.statements:
                self.statement(statement)
        else:
            self.statement(node)
        self._level -= 1


def _declarator(node: ast.VarDeclarator) -> str:
    text = node.name + "[]" * node.extra_dimensions
    if node.initializer is not None:
        text += f" = {print_expression(node.initializer)}"
    return text


def _inline_statement(node: ast.Statement) -> str:
    """Render a for-init statement without the trailing semicolon."""
    if isinstance(node, ast.LocalVarDecl):
        declarators = ", ".join(_declarator(d) for d in node.declarators)
        return f"{node.type} {declarators}"
    if isinstance(node, ast.ExpressionStatement):
        return print_expression(node.expression)
    raise TypeError(f"cannot inline statement node {type(node).__name__}")


def to_source(node: ast.Node) -> str:
    """Render any AST node (expression, statement, or declaration) to source."""
    if isinstance(node, ast.Expression):
        return print_expression(node)
    printer = _Printer()
    if isinstance(node, ast.Statement):
        printer.statement(node)
    else:
        printer.declaration(node)
    return printer.text()
