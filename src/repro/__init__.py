"""repro — reproduction of "Automated Personalized Feedback in
Introductory Java Programming MOOCs" (Marin, Pereira, Sridharan, Rivero;
ICDE 2017).

Quickstart::

    from repro import FeedbackEngine, get_assignment

    assignment = get_assignment("assignment1")
    engine = FeedbackEngine(assignment)
    report = engine.grade(student_java_source)
    print(report.render())

Package map:

* :mod:`repro.java` — Java-subset lexer/parser/AST/printer;
* :mod:`repro.interp` — tree-walking interpreter with tracing;
* :mod:`repro.pdg` — extended program dependence graphs;
* :mod:`repro.patterns` — patterns, feedback templates, constraints;
* :mod:`repro.matching` — Algorithms 1 and 2;
* :mod:`repro.core` — the public grading API;
* :mod:`repro.kb` — the knowledge base (24 patterns, 12 assignments);
* :mod:`repro.synth` — synthetic submission generation (error models);
* :mod:`repro.testing` — functional-testing harness;
* :mod:`repro.baselines` — AutoGrader (Sketch) and CLARA simulators.
"""

from repro.core import Assignment, FeedbackEngine, FunctionalTest, GradingReport
from repro.kb import all_assignment_names, all_patterns, get_assignment, get_pattern
from repro.matching import FeedbackStatus

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "FeedbackEngine",
    "FunctionalTest",
    "GradingReport",
    "FeedbackStatus",
    "all_assignment_names",
    "all_patterns",
    "get_assignment",
    "get_pattern",
    "__version__",
]
