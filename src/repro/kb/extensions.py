"""Future-work extensions from the paper's Section VII.

The paper's own example of pattern variability: "to access even
positions in an array, we can use either a loop controlled by
i % 2 == 0, or updating twice the index i += 2.  We plan to address this
issue by ... a hierarchy of patterns according to their semantics in
which the same pattern can be performed in several ways."

This module builds exactly that hierarchy for Assignment 1: variant
patterns recognizing the index-jumping idiom, grouped with the
knowledge-base originals via :class:`~repro.patterns.groups.PatternGroup`.
:func:`assignment1_with_variants` is a drop-in replacement assignment
whose grading accepts both idioms — eliminating the paper's third
Assignment-1 discrepancy class ("three submissions ... update twice the
value of i, which is a different way of accessing even positions not
currently allowed by our patterns").

The 24-pattern library and the Table I counts are untouched: variants
live here, beside the evaluation, like the paper proposes.
"""

from __future__ import annotations

import copy

from repro.core.assignment import Assignment
from repro.kb.patterns_library import get_pattern
from repro.kb.registry import get_assignment
from repro.patterns.groups import PatternGroup, group_of
from repro.patterns.model import Pattern, PatternNode
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType, GraphEdge, NodeType

#: A correct Assignment-1 submission using the index-jumping idiom the
#: paper's discrepancy discussion describes.
SKIP_INDEX_SUBMISSION = """
void assignment1(int[] a) {
    int odd = 0;
    int even = 1;
    for (int i = 1; i < a.length; i += 2)
        odd += a[i];
    for (int j = 0; j < a.length; j += 2)
        even *= a[j];
    System.out.println(odd);
    System.out.println(even);
}
"""


def _node(node_id, node_type, expr, variables=(), approx=None, ok="",
          bad=""):
    approx_template = None
    if approx is not None:
        mentioned = frozenset(
            v for v in variables if v in approx
        )
        approx_template = ExprTemplate(approx, mentioned)
    return PatternNode(
        node_id, node_type,
        ExprTemplate(expr, frozenset(variables)),
        approx=approx_template,
        feedback_correct=ok,
        feedback_incorrect=bad,
    )


def _skip_variant(name, array_var, index_var, start, description,
                  parity) -> Pattern:
    """An index-jumping traversal: ``for (i = start; i < a.length;
    i += 2) ... a[i]`` visits exactly the odd/even positions."""
    untyped, assign, cond = (
        NodeType.UNTYPED, NodeType.ASSIGN, NodeType.COND
    )
    a, i = array_var, index_var
    return Pattern(
        name=name,
        description=description,
        nodes=[
            _node(0, untyped, rf"{a}", (a,),
                  ok=f"{{{a}}} is the array being traversed"),
            # crucial node (no approximate expression): the start index
            # is what distinguishes the odd-jumping loop from the
            # even-jumping one, so a loose match here would let each
            # variant claim the other parity's loop
            _node(1, untyped, rf"{i} = {start}", (i,),
                  ok=f"{{{i}}} starts at {start}, the first {parity} "
                     "position"),
            _node(2, assign, rf"{i} \+= 2|{i} = {i} \+ 2", (i,),
                  approx=rf"{i} \+= \d+|{i} =",
                  ok=f"{{{i}}} jumps two positions, staying on {parity} "
                     "indices",
                  bad=f"advance {{{i}}} by exactly 2 to stay on {parity} "
                      "indices"),
            _node(3, cond, rf"{i} < {a}\.length", (i, a),
                  approx=rf"{i} <= {a}\.length",
                  ok=f"{{{i}}} stays within the bounds of {{{a}}}",
                  bad=f"{{{i}}} must stay below {{{a}}}.length"),
            _node(4, untyped, rf"{a}\[{i}\]", (a, i), approx=rf"{a}\[",
                  ok=f"{{{i}}} is used exactly to access {{{a}}}",
                  bad=f"access {{{a}}} by using {{{i}}} exactly"),
        ],
        edges=[
            GraphEdge(0, 3, EdgeType.DATA), GraphEdge(0, 4, EdgeType.DATA),
            GraphEdge(1, 2, EdgeType.DATA), GraphEdge(1, 3, EdgeType.DATA),
            GraphEdge(3, 2, EdgeType.CTRL), GraphEdge(3, 4, EdgeType.CTRL),
        ],
        feedback_present=f"You access the {parity} positions by jumping "
                         "the index two at a time.",
        feedback_missing=f"We expected sequential access to the {parity} "
                         "positions.",
    )


def odd_access_group() -> PatternGroup:
    """seq-odd-access plus the ``i = 1; i += 2`` jumping variant."""
    variant = _skip_variant(
        "seq-odd-access-skip", "s", "x", 1,
        "accessing odd positions by jumping the index", "odd",
    )
    # primary node u5 (the access) corresponds to variant node u4; the
    # init/advance/bound nodes line up one-to-one
    return group_of(
        get_pattern("seq-odd-access"),
        (variant, {0: 0, 1: 1, 2: 2, 3: 3, 5: 4}),
    )


def even_access_group() -> PatternGroup:
    """seq-even-access plus the ``i = 0; i += 2`` jumping variant."""
    variant = _skip_variant(
        "seq-even-access-skip", "t", "w", 0,
        "accessing even positions by jumping the index", "even",
    )
    return group_of(
        get_pattern("seq-even-access"),
        (variant, {0: 0, 1: 1, 2: 2, 3: 3, 5: 4}),
    )


def _loop_accumulator_variant(name, acc_var, init, op, op_word) -> Pattern:
    """Accumulation guarded only by the loop condition itself.

    The knowledge-base originals (``cond-cumulative-add``/``-mul``)
    expect a condition *inside* a loop; with index-jumping there is no
    inner ``if``, so the loop condition is the only guard.
    """
    untyped, assign, cond = NodeType.UNTYPED, NodeType.ASSIGN, NodeType.COND
    c = acc_var
    return Pattern(
        name=name,
        description=f"cumulatively {op_word} under the loop condition",
        nodes=[
            _node(0, untyped, rf"{c} = {init}", (c,), approx=rf"{c} =",
                  ok=f"the accumulator {{{c}}} starts at {init}",
                  bad=f"the accumulator {{{c}}} should start at {init}"),
            _node(1, cond, r""),
            # the (?!\d) lookaheads keep constant index jumps (i += 2)
            # from masquerading as data accumulation
            _node(2, assign, rf"{c} \{op}=(?! \d)|{c} = {c} \{op}(?! \d)",
                  (c,),
                  approx=rf"{c} =(?! {c} )",
                  ok=f"{{{c}}} is cumulatively {op_word} inside the loop",
                  bad=f"{{{c}}} should be cumulatively {op_word} "
                      f"({{{c}}} {op}= ...)"),
        ],
        edges=[
            GraphEdge(0, 2, EdgeType.DATA), GraphEdge(1, 2, EdgeType.CTRL),
        ],
        feedback_present=f"You accumulate {{{c}}} inside the jumping loop.",
        feedback_missing=f"We expected a variable cumulatively {op_word} "
                         "inside a loop.",
    )


def cond_add_group() -> PatternGroup:
    """cond-cumulative-add plus its loop-guarded variant."""
    variant = _loop_accumulator_variant(
        "loop-cumulative-add", "c", 0, "+", "added",
    )
    # constraints reference primary node 3 (the accumulation) and node 0
    return group_of(
        get_pattern("cond-cumulative-add"),
        (variant, {0: 0, 2: 1, 3: 2}),
    )


def cond_mul_group() -> PatternGroup:
    """cond-cumulative-mul plus its loop-guarded variant."""
    variant = _loop_accumulator_variant(
        "loop-cumulative-mul", "d", 1, "*", "multiplied",
    )
    return group_of(
        get_pattern("cond-cumulative-mul"),
        (variant, {0: 0, 2: 1, 3: 2}),
    )


def assignment1_with_variants() -> Assignment:
    """Assignment 1 with the access patterns upgraded to variant groups.

    Everything else — constraints, tests, the error model — is shared
    with the original assignment, demonstrating that variant hierarchies
    are a drop-in refinement.
    """
    original = get_assignment("assignment1")
    upgraded = copy.copy(original)
    upgraded = Assignment(
        name="assignment1+variants",
        title=original.title + " (with pattern variants)",
        statement=original.statement,
        expected_methods=[],
        reference_solutions=list(original.reference_solutions),
        tests=list(original.tests),
        enforce_headers=original.enforce_headers,
        space_factory=original.space_factory,
    )
    groups = {
        "seq-odd-access": odd_access_group(),
        "seq-even-access": even_access_group(),
        "cond-cumulative-add": cond_add_group(),
        "cond-cumulative-mul": cond_mul_group(),
    }
    for method in original.expected_methods:
        upgraded_patterns = [
            (groups.get(pattern.name, pattern), count)
            for pattern, count in method.patterns
        ]
        from repro.matching.submission import ExpectedMethod
        upgraded.expected_methods.append(
            ExpectedMethod(
                name=method.name,
                patterns=upgraded_patterns,
                constraints=list(method.constraints),
            )
        )
    return upgraded
