"""Registry mapping assignment names to their built specifications.

Table I's per-assignment expectations (``S``, ``P``, ``C``) are recorded
here as well, so tests can assert the knowledge base matches the paper.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.assignment import Assignment
from repro.errors import KnowledgeBaseError

#: Paper Table I: search-space size S, pattern uses P, constraints C.
TABLE1 = {
    "assignment1": {"S": 640_000, "P": 6, "C": 4},
    "esc-LAB-3-P1-V1": {"S": 442_368, "P": 7, "C": 5},
    "esc-LAB-3-P2-V1": {"S": 7_077_888, "P": 8, "C": 13},
    "esc-LAB-3-P2-V2": {"S": 144, "P": 4, "C": 5},
    "esc-LAB-3-P3-V1": {"S": 10_368, "P": 7, "C": 6},
    "esc-LAB-3-P3-V2": {"S": 589_824, "P": 8, "C": 10},
    "esc-LAB-3-P4-V1": {"S": 13_824, "P": 7, "C": 6},
    "esc-LAB-3-P4-V2": {"S": 9_437_184, "P": 9, "C": 14},
    "mitx-derivatives": {"S": 576, "P": 3, "C": 4},
    "mitx-polynomials": {"S": 768, "P": 4, "C": 4},
    "rit-all-g-medals": {"S": 559_872, "P": 9, "C": 7},
    "rit-medals-by-ath": {"S": 746_496, "P": 9, "C": 7},
}


def _builders():
    # imported lazily: assignment modules import the pattern library,
    # which in turn must not import the registry at module load time
    from repro.kb.assignments import (
        assignment1,
        esc_lab3_p1_v1,
        esc_lab3_p2_v1,
        esc_lab3_p2_v2,
        esc_lab3_p3_v1,
        esc_lab3_p3_v2,
        esc_lab3_p4_v1,
        esc_lab3_p4_v2,
        mitx_derivatives,
        mitx_polynomials,
        rit_all_g_medals,
        rit_medals_by_ath,
    )
    return {
        "assignment1": assignment1.build,
        "esc-LAB-3-P1-V1": esc_lab3_p1_v1.build,
        "esc-LAB-3-P2-V1": esc_lab3_p2_v1.build,
        "esc-LAB-3-P2-V2": esc_lab3_p2_v2.build,
        "esc-LAB-3-P3-V1": esc_lab3_p3_v1.build,
        "esc-LAB-3-P3-V2": esc_lab3_p3_v2.build,
        "esc-LAB-3-P4-V1": esc_lab3_p4_v1.build,
        "esc-LAB-3-P4-V2": esc_lab3_p4_v2.build,
        "mitx-derivatives": mitx_derivatives.build,
        "mitx-polynomials": mitx_polynomials.build,
        "rit-all-g-medals": rit_all_g_medals.build,
        "rit-medals-by-ath": rit_medals_by_ath.build,
    }


def all_assignment_names() -> list[str]:
    """The twelve assignment names, in Table I order."""
    return list(TABLE1)


@lru_cache(maxsize=None)
def get_assignment(name: str) -> Assignment:
    """Build (and cache) the assignment specification for ``name``."""
    builders = _builders()
    if name not in builders:
        raise KnowledgeBaseError(
            f"unknown assignment {name!r}; known: {sorted(builders)}"
        )
    return builders[name]()


def table1_expectations(name: str) -> dict[str, int]:
    """The paper's Table I row (S, P, C) for one assignment."""
    if name not in TABLE1:
        raise KnowledgeBaseError(f"unknown assignment {name!r}")
    return dict(TABLE1[name])
