"""Registry mapping assignment names to their built specifications.

Table I's per-assignment expectations (``S``, ``P``, ``C``) are recorded
here as well, so tests can assert the knowledge base matches the paper.
"""

from __future__ import annotations

import importlib
from functools import lru_cache
from typing import Callable, Iterable, Iterator

from repro.core.assignment import Assignment
from repro.errors import KnowledgeBaseError

#: Paper Table I: search-space size S, pattern uses P, constraints C.
TABLE1 = {
    "assignment1": {"S": 640_000, "P": 6, "C": 4},
    "esc-LAB-3-P1-V1": {"S": 442_368, "P": 7, "C": 5},
    "esc-LAB-3-P2-V1": {"S": 7_077_888, "P": 8, "C": 13},
    "esc-LAB-3-P2-V2": {"S": 144, "P": 4, "C": 5},
    "esc-LAB-3-P3-V1": {"S": 10_368, "P": 7, "C": 6},
    "esc-LAB-3-P3-V2": {"S": 589_824, "P": 8, "C": 10},
    "esc-LAB-3-P4-V1": {"S": 13_824, "P": 7, "C": 6},
    "esc-LAB-3-P4-V2": {"S": 9_437_184, "P": 9, "C": 14},
    "mitx-derivatives": {"S": 576, "P": 3, "C": 4},
    "mitx-polynomials": {"S": 768, "P": 4, "C": 4},
    "rit-all-g-medals": {"S": 559_872, "P": 9, "C": 7},
    "rit-medals-by-ath": {"S": 746_496, "P": 9, "C": 7},
}


#: Assignment name -> module (under ``repro.kb.assignments``) whose
#: ``build()`` constructs it.  Modules are imported lazily, one at a
#: time, so a broken assignment module only fails the assignments that
#: live in it — and the resulting error names the offending module.
_MODULES = {
    "assignment1": "assignment1",
    "esc-LAB-3-P1-V1": "esc_lab3_p1_v1",
    "esc-LAB-3-P2-V1": "esc_lab3_p2_v1",
    "esc-LAB-3-P2-V2": "esc_lab3_p2_v2",
    "esc-LAB-3-P3-V1": "esc_lab3_p3_v1",
    "esc-LAB-3-P3-V2": "esc_lab3_p3_v2",
    "esc-LAB-3-P4-V1": "esc_lab3_p4_v1",
    "esc-LAB-3-P4-V2": "esc_lab3_p4_v2",
    "mitx-derivatives": "mitx_derivatives",
    "mitx-polynomials": "mitx_polynomials",
    "rit-all-g-medals": "rit_all_g_medals",
    "rit-medals-by-ath": "rit_medals_by_ath",
}


def _load_builder(name: str) -> Callable[[], Assignment]:
    module_name = f"repro.kb.assignments.{_MODULES[name]}"
    try:
        module = importlib.import_module(module_name)
    except Exception as error:  # noqa: BLE001 - surface module+cause together
        raise KnowledgeBaseError(
            f"assignment {name!r} failed to load: module {module_name} "
            f"raised {type(error).__name__}: {error}"
        ) from error
    build = getattr(module, "build", None)
    if not callable(build):
        raise KnowledgeBaseError(
            f"assignment {name!r} failed to load: module {module_name} "
            "defines no build() function"
        )
    return build


def all_assignment_names() -> list[str]:
    """The twelve assignment names, in Table I order."""
    return list(TABLE1)


@lru_cache(maxsize=None)
def get_assignment(name: str) -> Assignment:
    """Build (and cache) the assignment specification for ``name``."""
    if name not in _MODULES:
        raise KnowledgeBaseError(
            f"unknown assignment {name!r}; known: {sorted(_MODULES)}"
        )
    return _load_builder(name)()


def iter_assignments(
    names: Iterable[str] | None = None,
) -> Iterator[tuple[str, Assignment]]:
    """Yield ``(name, assignment)`` lazily, in Table I order.

    Each assignment loads on demand — nothing imports until its tuple is
    requested — and a failing assignment module raises
    :class:`KnowledgeBaseError` naming the module.  Callers that must
    survive individual load failures (like ``repro lint-kb``) should
    loop :func:`all_assignment_names` and call :func:`get_assignment`
    per name instead, since a raise ends a generator.
    """
    for name in all_assignment_names() if names is None else names:
        yield name, get_assignment(name)


def table1_expectations(name: str) -> dict[str, int]:
    """The paper's Table I row (S, P, C) for one assignment."""
    if name not in TABLE1:
        raise KnowledgeBaseError(f"unknown assignment {name!r}")
    return dict(TABLE1[name])
