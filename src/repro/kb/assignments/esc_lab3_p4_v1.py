"""esc-LAB-3-P4-V1 (IIT Kanpur): check whether a number is a palindrome.

Table I row: S = 13,824 (= 3^3 · 2^9), L ≈ 10.5, P = 7, C = 6, D = 1.
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import ContainmentConstraint, EdgeExistenceConstraint
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
void isPalindrome(int k) {
    {{guard}}{{extra}}int r = {{r-init}};
    {{n-copy}}
    while ({{loop-cond}}) {
        {{d-type}} d = {{digit}};
        {{rev-build}}
        {{shrink}};
    }
    if ({{check}})
        {{yes-print}};
    else
        {{no-print}};
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # three ternary points (3^3) -------------------------------------
        ChoicePoint("r-init", (correct("0"), wrong("1"), wrong("k"))),
        ChoicePoint("rev-build", (
            correct("r = r * 10 + d;"),
            wrong("r = r + d;"),
            wrong("r = r * 100 + d;"),
        )),
        ChoicePoint("digit", (
            correct("n % 10"), wrong("n % 100"), wrong("n / 10"),
        )),
        # nine binary points (2^9) ----------------------------------------
        ChoicePoint("loop-cond", (correct("n != 0"), correct("n > 0"))),
        ChoicePoint("shrink", (correct("n /= 10"), correct("n = n / 10"))),
        ChoicePoint("check", (correct("k == r"), correct("r == k"))),
        ChoicePoint("yes-print", (
            correct('System.out.println("yes")'),
            wrong('System.out.println("no")'),
        )),
        ChoicePoint("no-print", (
            correct('System.out.println("no")'),
            wrong('System.out.println("yes")'),
        )),
        ChoicePoint("n-copy", (
            correct("int n = k;"), wrong("int n = k / 10;"),
        )),
        ChoicePoint("guard", (
            correct(""), correct("if (k < 0) return;\n    "),
        )),
        ChoicePoint("extra", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("d-type", (correct("int"), correct("long"))),
    ]
    return SubmissionSpace("esc-LAB-3-P4-V1", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    cases = [(121, True), (1221, True), (7, True), (10, False),
             (123, False), (1231, False), (1001, True)]
    return [
        FunctionalTest(
            method="isPalindrome", arguments=(k,),
            expected_stdout="yes\n" if yes else "no\n",
        )
        for k, yes in cases
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="isPalindrome",
        patterns=[
            (get_pattern("digit-extract"), 1),
            (get_pattern("shrink-by-ten"), 1),
            (get_pattern("reverse-build"), 1),
            (get_pattern("equality-check"), 1),
            (get_pattern("print-call"), 2),
            # bad patterns: the palindrome test compares directly (no
            # difference needed) and this is not the Fibonacci variant
            (get_pattern("difference"), 0),
            (get_pattern("fibonacci-update"), 0),
        ],
        constraints=[
            ContainmentConstraint(
                name="comparison-uses-built-reverse",
                feedback_correct="You compare the input against the "
                                 "reverse {rv} you built.",
                feedback_incorrect="Compare the input against the reverse "
                                   "you built digit by digit.",
                pattern="equality-check", node=0,
                expr=ExprTemplate(r"rv == |== rv", frozenset({"rv"})),
                supporting=("reverse-build",),
            ),
            EdgeExistenceConstraint(
                name="reverse-flows-into-comparison",
                feedback_correct="The built reverse flows into the "
                                 "comparison.",
                feedback_incorrect="The comparison must use the final "
                                   "value of the reverse.",
                pattern_i="reverse-build", node_i=2,
                pattern_j="equality-check", node_j=0,
                edge_type=EdgeType.DATA,
            ),
            EdgeExistenceConstraint(
                name="reverse-built-inside-digit-loop",
                feedback_correct="The reverse grows inside the digit "
                                 "loop.",
                feedback_incorrect="Grow the reverse inside the digit "
                                   "loop.",
                pattern_i="shrink-by-ten", node_i=1,
                pattern_j="reverse-build", node_j=2,
                edge_type=EdgeType.CTRL,
            ),
            EdgeExistenceConstraint(
                name="reverse-appends-extracted-digit",
                feedback_correct="Each extracted digit is appended to the "
                                 "reverse.",
                feedback_incorrect="Append the digit you extracted with "
                                   "% 10 to the reverse.",
                pattern_i="digit-extract", node_i=1,
                pattern_j="reverse-build", node_j=2,
                edge_type=EdgeType.DATA,
            ),
            ContainmentConstraint(
                name="reverse-shifts-by-ten",
                feedback_correct="The reverse shifts by exactly one "
                                 "decimal digit per step.",
                feedback_incorrect="Shift the reverse by exactly one "
                                   "decimal digit: {rv} = {rv} * 10 + "
                                   "digit.",
                pattern="reverse-build", node=2,
                expr=ExprTemplate(r"rv = rv \* 10 \+ |rv = 10 \* rv \+ ",
                                  frozenset({"rv"})),
                supporting=(),
            ),
            EdgeExistenceConstraint(
                name="verdict-printed-under-comparison",
                feedback_correct="The yes/no verdict is printed under the "
                                 "palindrome comparison.",
                feedback_incorrect="Print the yes/no verdict depending on "
                                   "the palindrome comparison.",
                pattern_i="equality-check", node_i=0,
                pattern_j="print-call", node_j=0,
                edge_type=EdgeType.CTRL,
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="esc-LAB-3-P4-V1",
        title="Palindrome check",
        statement="Check if a given number k is a palindrome and print "
                  "yes or no to console.  Header: void isPalindrome(int "
                  "k).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("isPalindrome", "linear"),),
            size_metric="int-digits",
            ladder=(
                ("isPalindrome", (1234321,)),
                ("isPalindrome", (123454321,)),
                ("isPalindrome", (12345654321,)),
            ),
        ),
        space_factory=_space,
    )
