"""One module per Table I assignment.

Each module exposes ``build() -> Assignment`` wiring patterns (with
occurrence counts), constraints, reference solutions, functional tests,
and the synthetic error-model submission space.
"""
