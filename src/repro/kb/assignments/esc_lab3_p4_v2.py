"""esc-LAB-3-P4-V2 (IIT Kanpur): count Fibonacci numbers in [n, m].

Table I row: S = 9,437,184 (= 3^2 · 2^20), L ≈ 17.42, P = 9, C = 14,
D = 248.

The paper's discrepancies: the course defines the sequence as 1, 1, 2,
3, ..., so computations must start at 1, but many submissions start the
walk at 0 — functionally identical for n ≥ 1, yet flagged with "modify
the starting point".  The ``p-init`` choice point reproduces that rule
and the ``fib-starts-at-one`` constraint delivers that exact feedback.
"""

from __future__ import annotations

from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import (
    ContainmentConstraint,
    EdgeExistenceConstraint,
    EqualityConstraint,
)
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
void countFibonacci(int n, int m) {
    {{guard}}{{m-guard}}{{n-guard}}{{extra}}{{extra2}}{{extra3}}{{count-type}} count = {{count-init}};
    {{p-type}} p = {{p-init}};
    {{q-type}} q = {{q-init}};
    while ({{bound}}) {
        if ({{range-check}}) {
            {{count-upd}};
        }
        {{sum-stmt}}
        {{shuffle}}
    }
    {{print}};{{print-extra}}
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # two ternary points (3^2) ---------------------------------------
        ChoicePoint("count-init", (correct("0"), wrong("1"), wrong("2"))),
        ChoicePoint("range-check", (
            correct("p >= n"), wrong("p > n"), wrong("p == n"),
        )),
        # 2^20 worth of binary-equivalent points --------------------------
        ChoicePoint("p-init", (
            correct("1"),
            # the paper's 248-discrepancy rule: starting the walk at 0 is
            # functionally identical for n >= 1 but violates the course's
            # "sequence starts at 1" convention
            correct("0", label="starts-at-zero"),
        )),
        ChoicePoint("q-init", (correct("1"), wrong("0"))),
        ChoicePoint("bound", (correct("p <= m"), wrong("p < m"))),
        ChoicePoint("count-upd", (
            correct("count++"), correct("count += 1"),
            correct("count = count + 1"), wrong("count--"),
        )),
        ChoicePoint("sum-stmt", (
            correct("int t = p + q;"),
            correct("int t = q + p;"),
            wrong("int t = p + q + 1;"),
            wrong("int t = p - q;"),
        )),
        ChoicePoint("shuffle", (
            correct("p = q;\n        q = t;"),
            wrong("q = t;\n        p = q;"),
        )),
        ChoicePoint("print", (
            correct("System.out.println(count)"),
            wrong("System.out.println(p)"),
            wrong("System.out.print(count)"),
            wrong("System.out.println(n)"),
        )),
        ChoicePoint("guard", (
            correct(""), correct("if (m < n) {\n        "
                                 "System.out.println(0);\n        return;"
                                 "\n    }\n    "),
        )),
        ChoicePoint("m-guard", (
            correct(""), correct("if (m < 1) {\n        "
                                 "System.out.println(0);\n        return;"
                                 "\n    }\n    "),
        )),
        ChoicePoint("n-guard", (
            correct(""), correct("if (n < 1) n = 1;\n    "),
        )),
        ChoicePoint("extra", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("extra2", (correct(""), correct("int aux = 0;\n    "))),
        ChoicePoint("extra3", (correct(""), correct("int pad = 0;\n    "))),
        ChoicePoint("print-extra", (
            correct(""), wrong("\n    System.out.println(count);"),
        )),
        ChoicePoint("p-type", (correct("int"), correct("long"))),
        ChoicePoint("q-type", (correct("int"), correct("long"))),
        ChoicePoint("count-type", (correct("int"), correct("long"))),
    ]
    return SubmissionSpace("esc-LAB-3-P4-V2", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    # walk 1, 1, 2, 3, 5, 8, 13, 21, ... (values counted with
    # multiplicity, so 1 appears twice)
    cases = [((1, 15), 7), ((2, 15), 5), ((1, 1), 2), ((4, 4), 0),
             ((5, 21), 4), ((6, 7), 0), ((1, 100), 11)]
    return [
        FunctionalTest(
            method="countFibonacci", arguments=args,
            expected_stdout=f"{count}\n",
        )
        for args, count in cases
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="countFibonacci",
        patterns=[
            (get_pattern("fibonacci-update"), 1),
            (get_pattern("accumulator-bound-loop"), 1),
            (get_pattern("counter-under-cond"), 1),
            (get_pattern("assign-print"), 1),
            (get_pattern("print-call"), None),
            # bad patterns: the factorial variant of this lab, equality
            # alone, and the digit-manipulation labs do not belong here
            (get_pattern("factorial-loop"), 0),
            (get_pattern("equality-check"), 0),
            (get_pattern("digit-extract"), 0),
            (get_pattern("reverse-build"), 0),
        ],
        constraints=[
            ContainmentConstraint(
                name="fib-starts-at-one",
                feedback_correct="The walk starts at 1, the first "
                                 "Fibonacci number of the course's "
                                 "sequence.",
                feedback_incorrect="The sequence is 1, 1, 2, 3, ...; "
                                   "modify the starting point so the walk "
                                   "begins at 1.",
                pattern="fibonacci-update", node=0,
                expr=ExprTemplate(r"p1 = 1", frozenset({"p1"})),
                supporting=(),
            ),
            ContainmentConstraint(
                name="second-seed-is-one",
                feedback_correct="The second seed is 1.",
                feedback_incorrect="The second seed must be 1 (the "
                                   "sequence is 1, 1, 2, 3, ...).",
                pattern="fibonacci-update", node=1,
                expr=ExprTemplate(r"p2 = 1", frozenset({"p2"})),
                supporting=(),
            ),
            EqualityConstraint(
                name="walk-inside-bounded-loop",
                feedback_correct="The Fibonacci walk happens inside the "
                                 "bounded loop.",
                feedback_incorrect="Walk the sequence inside the loop "
                                   "bounded by m.",
                pattern_i="fibonacci-update", node_i=2,
                pattern_j="accumulator-bound-loop", node_j=1,
            ),
            EdgeExistenceConstraint(
                name="sum-guarded-by-bound",
                feedback_correct="The Fibonacci sum is guarded by the "
                                 "upper bound.",
                feedback_incorrect="Stop walking the sequence once it "
                                   "exceeds m.",
                pattern_i="accumulator-bound-loop", node_i=1,
                pattern_j="fibonacci-update", node_j=3,
                edge_type=EdgeType.CTRL,
            ),
            ContainmentConstraint(
                name="upper-bound-inclusive",
                feedback_correct="The interval includes m itself.",
                feedback_incorrect="The interval [n, m] includes m; use "
                                   "<= for the upper bound.",
                pattern="accumulator-bound-loop", node=1,
                expr=ExprTemplate(r"acc <= k0", frozenset({"acc", "k0"})),
                supporting=(),
            ),
            EdgeExistenceConstraint(
                name="count-is-printed",
                feedback_correct="The count is printed to console.",
                feedback_incorrect="Print the count (not the running "
                                   "Fibonacci number) to console.",
                pattern_i="counter-under-cond", node_i=2,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
            ContainmentConstraint(
                name="prints-with-newline",
                feedback_correct="You print the result with println.",
                feedback_incorrect="Print the result with "
                                   "System.out.println so it ends the "
                                   "line.",
                pattern="assign-print", node=1,
                expr=ExprTemplate(r"System\.out\.println\(", frozenset()),
                supporting=(),
            ),
            ContainmentConstraint(
                name="lower-range-check-uses-gte",
                feedback_correct="The lower end of the interval is "
                                 "checked with >=.",
                feedback_incorrect="Check the lower end of the interval "
                                   "with >= n (equality alone misses "
                                   "larger numbers).",
                pattern="counter-under-cond", node=1,
                expr=ExprTemplate(r">=", frozenset()),
                supporting=(),
            ),
            ContainmentConstraint(
                name="count-starts-at-zero",
                feedback_correct="The count starts at 0.",
                feedback_incorrect="Start the count at 0.",
                pattern="counter-under-cond", node=0,
                expr=ExprTemplate(r"cnt = 0", frozenset({"cnt"})),
                supporting=(),
            ),
            ContainmentConstraint(
                name="count-advances-by-one",
                feedback_correct="The count advances by exactly one per "
                                 "match.",
                feedback_incorrect="Advance the count by exactly one per "
                                   "Fibonacci number in range.",
                pattern="counter-under-cond", node=2,
                expr=ExprTemplate(r"cnt\+\+|cnt \+= 1|cnt = cnt \+ 1",
                                  frozenset({"cnt"})),
                supporting=(),
            ),
            EqualityConstraint(
                name="printed-value-is-the-count",
                feedback_correct="The printed variable is the count "
                                 "itself.",
                feedback_incorrect="Print the count itself, not another "
                                   "variable.",
                pattern_i="assign-print", node_i=0,
                pattern_j="counter-under-cond", node_j=2,
            ),
            EdgeExistenceConstraint(
                name="seed-feeds-bound-check",
                feedback_correct="The bound check tests the walking "
                                 "value from its seed on.",
                feedback_incorrect="The loop bound must test the walking "
                                   "Fibonacci value itself.",
                pattern_i="fibonacci-update", node_i=0,
                pattern_j="accumulator-bound-loop", node_j=1,
                edge_type=EdgeType.DATA,
            ),
            ContainmentConstraint(
                name="bound-tests-walking-seed",
                feedback_correct="The bound compares the walking value "
                                 "against m.",
                feedback_incorrect="Compare the walking Fibonacci value "
                                   "against m in the loop bound.",
                pattern="accumulator-bound-loop", node=1,
                expr=ExprTemplate(r"p1 <= k0|p2 <= k0",
                                  frozenset({"p1", "p2", "k0"})),
                supporting=("fibonacci-update",),
            ),
            ContainmentConstraint(
                name="new-term-is-exactly-the-sum",
                feedback_correct="Each new term is exactly the sum of "
                                 "the previous two.",
                feedback_incorrect="Each new term must be exactly "
                                   "{p1} + {p2}, nothing more.",
                pattern="fibonacci-update", node=3,
                expr=ExprTemplate(r"= p1 \+ p2$|= p2 \+ p1$",
                                  frozenset({"p1", "p2"})),
                supporting=(),
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="esc-LAB-3-P4-V2",
        title="Count Fibonacci numbers in [n, m]",
        statement="Given numbers n and m, print to console the count of "
                  "Fibonacci numbers in [n, m].  Header: "
                  "void countFibonacci(int n, int m).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        space_factory=_space,
    )
