"""esc-LAB-3-P2-V1 (IIT Kanpur): print n such that fib(n) ≤ k < fib(n+1).

Table I row: S = 7,077,888 (= 3^3 · 2^18), L ≈ 16.75, P = 8, C = 13.

The Fibonacci twin of P1-V1.  The paper reports 592 discrepancies from
submissions computing ``fib(n-1) <= k < fib(n+1)``, which stay
functionally correct for the same reason the factorial variant does; the
error model includes that rule (choice point ``lower``).
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import (
    ContainmentConstraint,
    EdgeExistenceConstraint,
    EqualityConstraint,
)
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
int fib(int m) {
    {{fib-guard}}{{p-type}} p = {{p-init}};
    {{q-type}} q = {{q-init}};
    {{i-type}} i = {{i-start}};
    while ({{fib-bound}}) {
        {{sum-stmt}}
        {{shuffle}}
        {{fib-advance}};
    }
    return {{fib-return}};
}

void lab3p2(int k) {
    {{lab-guard}}{{extra-decl}}int n = {{n-init}};
    while (!({{lower}} && {{upper}})) {
        {{n-advance}};
    }
    {{p2-print}};{{print-extra}}
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # three ternary points (3^3) -------------------------------------
        ChoicePoint("p-init", (correct("0"), wrong("1"), wrong("2"))),
        ChoicePoint("i-start", (correct("1"), wrong("0"), wrong("2"))),
        ChoicePoint("lower", (
            correct("fib(n) <= k"),
            # functionally correct but semantically off: the paper's
            # 592-discrepancy rule for this assignment
            wrong("fib(n - 1) <= k"),
            wrong("fib(n + 1) <= k"),
        )),
        # 2^18 worth of binary-equivalent points --------------------------
        ChoicePoint("q-init", (correct("1"), wrong("0"))),
        ChoicePoint("fib-bound", (correct("i <= m"), wrong("i < m"))),
        ChoicePoint("sum-stmt", (
            correct("int t = p + q;"),
            correct("int t = q + p;"),
            wrong("int t = p + q + 1;"),
            wrong("int t = p - q;"),
        )),
        ChoicePoint("shuffle", (
            correct("p = q;\n        q = t;"),
            wrong("q = t;\n        p = q;"),
        )),
        ChoicePoint("fib-advance", (correct("i++"), correct("i += 1"))),
        ChoicePoint("fib-return", (correct("p"), wrong("q"))),
        ChoicePoint("fib-guard", (
            correct(""), correct("if (m <= 0) return 0;\n    "),
        )),
        ChoicePoint("n-init", (correct("1"), wrong("5"))),
        ChoicePoint("upper", (
            correct("k < fib(n + 1)"), wrong("k <= fib(n + 1)"),
        )),
        ChoicePoint("n-advance", (correct("n++"), correct("n += 1"))),
        ChoicePoint("p2-print", (
            correct("System.out.println(n)"),
            wrong("System.out.println(k)"),
        )),
        ChoicePoint("lab-guard", (
            correct(""), correct("if (k <= 0) return;\n    "),
        )),
        ChoicePoint("extra-decl", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("print-extra", (
            correct(""), wrong("\n    System.out.println(n);"),
        )),
        ChoicePoint("p-type", (correct("int"), correct("long"))),
        ChoicePoint("q-type", (correct("int"), correct("long"))),
        ChoicePoint("i-type", (correct("int"), correct("long"))),
    ]
    return SubmissionSpace("esc-LAB-3-P2-V1", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    cases = [(1, 2), (2, 3), (3, 4), (4, 4), (5, 5), (7, 5), (10, 6),
             (100, 11)]
    tests = [
        FunctionalTest(
            method="lab3p2", arguments=(k,), expected_stdout=f"{n}\n",
        )
        for k, n in cases
    ]
    for m, value in [(1, 1), (2, 1), (3, 2), (6, 8), (10, 55)]:
        tests.append(
            FunctionalTest(
                method="fib", arguments=(m,),
                expected_return=value, compare_return=True,
            )
        )
    return tests


def build() -> Assignment:
    fib_method = ExpectedMethod(
        name="fib",
        patterns=[
            (get_pattern("fibonacci-update"), 1),
            (get_pattern("range-loop"), 1),
            # bad pattern: the helper computes, the driver prints
            (get_pattern("assign-print"), 0),
        ],
        constraints=[
            EqualityConstraint(
                name="fib-sum-inside-counting-loop",
                feedback_correct="The Fibonacci sum happens inside the "
                                 "counting loop.",
                feedback_incorrect="Compute each Fibonacci number inside "
                                   "the counting loop over 1..m.",
                pattern_i="fibonacci-update", node_i=2,
                pattern_j="range-loop", node_j=1,
            ),
            ContainmentConstraint(
                name="fib-counts-from-one",
                feedback_correct="The counter {i0} starts at 1 as the "
                                 "sequence does.",
                feedback_incorrect="The sequence is 1, 1, 2, 3, ...; start "
                                   "counting produced numbers at "
                                   "{i0} = 1.",
                pattern="range-loop", node=0,
                expr=ExprTemplate(r"i0 = 1", frozenset({"i0"})),
                supporting=(),
            ),
            ContainmentConstraint(
                name="fib-bound-inclusive",
                feedback_correct="The counting loop includes m itself.",
                feedback_incorrect="The counting loop must include m "
                                   "itself ({i0} <= m).",
                pattern="range-loop", node=1,
                expr=ExprTemplate(r"i0 <= ", frozenset({"i0"})),
                supporting=(),
            ),
            EdgeExistenceConstraint(
                name="fib-sum-guarded-by-loop",
                feedback_correct="The sum is guarded by the loop "
                                 "condition.",
                feedback_incorrect="The Fibonacci sum must execute only "
                                   "while the loop condition holds.",
                pattern_i="range-loop", node_i=1,
                pattern_j="fibonacci-update", node_j=3,
                edge_type=EdgeType.CTRL,
            ),
        ],
    )
    lab_method = ExpectedMethod(
        name="lab3p2",
        patterns=[
            (get_pattern("accumulator-bound-loop"), 1),
            (get_pattern("counter-under-cond"), 1),
            (get_pattern("assign-print"), 1),
            (get_pattern("print-call"), None),
            # bad pattern: don't re-implement the sequence inline
            (get_pattern("fibonacci-update"), 0),
        ],
        constraints=[
            ContainmentConstraint(
                name="lower-bound-uses-fib-n",
                feedback_correct="The lower limit compares fib({cnt}) "
                                 "against {k0}.",
                feedback_incorrect="The lower limit must be fib({cnt}) <= "
                                   "{k0}.",
                pattern="accumulator-bound-loop", node=1,
                expr=ExprTemplate(r"fib\(cnt\) <= k0",
                                  frozenset({"cnt", "k0"})),
                supporting=("counter-under-cond",),
            ),
            ContainmentConstraint(
                name="upper-bound-uses-fib-n-plus-1",
                feedback_correct="The upper limit compares {k0} against "
                                 "fib({cnt} + 1).",
                feedback_incorrect="The upper limit must be {k0} < "
                                   "fib({cnt} + 1).",
                pattern="accumulator-bound-loop", node=1,
                expr=ExprTemplate(r"k0 < fib\(cnt \+ 1\)",
                                  frozenset({"cnt", "k0"})),
                supporting=("counter-under-cond",),
            ),
            EdgeExistenceConstraint(
                name="result-counter-is-printed",
                feedback_correct="You print the computed n to console.",
                feedback_incorrect="You must print the computed n (the "
                                   "loop counter) to console.",
                pattern_i="counter-under-cond", node_i=2,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
            ContainmentConstraint(
                name="search-starts-low",
                feedback_correct="The search counter {cnt} starts at the "
                                 "beginning of the sequence.",
                feedback_incorrect="Start the search at {cnt} = 1 (or 0); "
                                   "starting later can skip the answer.",
                pattern="counter-under-cond", node=0,
                expr=ExprTemplate(r"cnt = 1|cnt = 0", frozenset({"cnt"})),
                supporting=(),
            ),
            ContainmentConstraint(
                name="search-advances-by-one",
                feedback_correct="The search advances {cnt} one step at a "
                                 "time.",
                feedback_incorrect="Advance {cnt} by exactly one per "
                                   "iteration or you may skip the answer.",
                pattern="counter-under-cond", node=2,
                expr=ExprTemplate(r"cnt\+\+|cnt \+= 1|cnt = cnt \+ 1",
                                  frozenset({"cnt"})),
                supporting=(),
            ),
            EqualityConstraint(
                name="advance-guarded-by-interval-test",
                feedback_correct="The counter advances exactly while the "
                                 "interval test fails.",
                feedback_incorrect="Advance the counter only while the "
                                   "interval test fails.",
                pattern_i="counter-under-cond", node_i=1,
                pattern_j="accumulator-bound-loop", node_j=1,
            ),
            ContainmentConstraint(
                name="prints-with-newline",
                feedback_correct="You print the result with println.",
                feedback_incorrect="Print the result with "
                                   "System.out.println so it ends the "
                                   "line.",
                pattern="assign-print", node=1,
                expr=ExprTemplate(r"System\.out\.println\(", frozenset()),
                supporting=(),
            ),
            ContainmentConstraint(
                name="loop-negates-interval-test",
                feedback_correct="The loop keeps searching while the "
                                 "interval test does not hold yet.",
                feedback_incorrect="Keep looping while the interval test "
                                   "does NOT hold (negate the "
                                   "conjunction).",
                pattern="accumulator-bound-loop", node=1,
                expr=ExprTemplate(r"!\(", frozenset()),
                supporting=(),
            ),
            EqualityConstraint(
                name="printed-value-is-final-counter",
                feedback_correct="The printed variable is the one the "
                                 "search advances.",
                feedback_incorrect="Print the search counter itself, not "
                                   "another variable.",
                pattern_i="assign-print", node_i=0,
                pattern_j="counter-under-cond", node_j=2,
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="esc-LAB-3-P2-V1",
        title="Largest n with fib(n) <= k < fib(n+1)",
        statement="Print to console the number n such that "
                  "fib(n) <= k < fib(n+1), taking the number k as input.  "
                  "Headers: int fib(int m) and void lab3p2(int k).",
        expected_methods=[fib_method, lab_method],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("fib", "linear"),),
            size_metric="int-value",
            ladder=(
                ("fib", (14,)), ("fib", (18,)), ("fib", (22,)),
            ),
        ),
        space_factory=_space,
    )
