"""mitx-polynomials (MIT 6.00x): evaluate a polynomial at a point.

Table I row: S = 768 (= 3 · 2^8), L ≈ 6.67, P = 4, C = 4, D = 0.
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import ContainmentConstraint, EdgeExistenceConstraint
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
void evaluate(int[] c, int x) {
    {{guard}}{{extra}}{{r-type}} r = {{r-init}};
    int i = {{i-start}};
    while ({{bound}}) {
        {{term}}
        {{adv}};
    }
    {{print}};
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # one ternary point ------------------------------------------------
        ChoicePoint("term", (
            correct("r += c[i] * (int) Math.pow(x, i);"),
            wrong("r += c[i] * (int) Math.pow(i, x);"),
            wrong("r += c[i] * x * i;"),
        )),
        # eight binary points (2^8) -----------------------------------------
        ChoicePoint("r-init", (correct("0"), wrong("1"))),
        # starting at 2 is caught by the traversal pattern's start check;
        # the paper reports D = 0 for this assignment, so the error model
        # avoids the pattern-invisible `i = 1` rule
        ChoicePoint("i-start", (correct("0"), wrong("2"))),
        ChoicePoint("bound", (
            correct("i < c.length"), wrong("i <= c.length"),
        )),
        ChoicePoint("adv", (correct("i++"), correct("i += 1"))),
        ChoicePoint("print", (
            correct("System.out.println(r)"),
            # printing the evaluation point instead of the result: caught
            # by the result-is-printed constraint (the paper reports
            # D = 0 for this assignment)
            wrong("System.out.println(x)"),
        )),
        ChoicePoint("guard", (
            correct(""), correct("if (c == null) return;\n    "),
        )),
        ChoicePoint("extra", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("r-type", (correct("int"), correct("long"))),
    ]
    return SubmissionSpace("mitx-polynomials", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    cases = [
        (([1, 2, 3], 2), 1 + 4 + 12),
        (([5], 9), 5),
        (([0, 1], 7), 7),
        (([2, 0, 1], 3), 2 + 9),
        (([1, 1, 1, 1], 1), 4),
    ]
    return [
        FunctionalTest(
            method="evaluate", arguments=args, expected_stdout=f"{v}\n",
        )
        for args, v in cases
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="evaluate",
        patterns=[
            (get_pattern("seq-array-traversal"), 1),
            (get_pattern("poly-eval-term"), 1),
            (get_pattern("assign-print"), 1),
            (get_pattern("print-call"), None),
        ],
        constraints=[
            ContainmentConstraint(
                name="term-uses-traversed-coefficient",
                feedback_correct="Each term uses the coefficient "
                                 "{arr}[{k}].",
                feedback_incorrect="Each term must use the coefficient at "
                                   "the traversed position: {arr}[{k}].",
                pattern="poly-eval-term", node=2,
                expr=ExprTemplate(r"arr\[k\]", frozenset({"arr", "k"})),
                supporting=("seq-array-traversal",),
            ),
            ContainmentConstraint(
                name="power-uses-the-index",
                feedback_correct="The power {x0}^{k} uses the traversed "
                                 "position as the exponent.",
                feedback_incorrect="Raise {x0} to the traversed position: "
                                   "Math.pow({x0}, {k}).",
                pattern="poly-eval-term", node=2,
                expr=ExprTemplate(r"Math\.pow\(x0, k\)|pr \* x0",
                                  frozenset({"x0", "k", "pr"})),
                supporting=("seq-array-traversal",),
            ),
            EdgeExistenceConstraint(
                name="terms-accumulated-inside-traversal",
                feedback_correct="Terms are accumulated inside the "
                                 "traversal.",
                feedback_incorrect="Accumulate every term inside the "
                                   "traversal loop.",
                pattern_i="seq-array-traversal", node_i=2,
                pattern_j="poly-eval-term", node_j=2,
                edge_type=EdgeType.CTRL,
            ),
            EdgeExistenceConstraint(
                name="result-is-printed",
                feedback_correct="The accumulated value is printed to "
                                 "console.",
                feedback_incorrect="Print the accumulated polynomial "
                                   "value to console.",
                pattern_i="poly-eval-term", node_i=2,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="mitx-polynomials",
        title="Evaluate a polynomial at a point",
        statement="Compute the value of a polynomial (array of "
                  "coefficients) at a given value and print it to "
                  "console.  Header: void evaluate(int[] c, int x).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("evaluate", "linear"),),
            size_metric="sequence-length",
            ladder=(
                ("evaluate", ([1, 2, 3, 4, 5, 6, 7, 8], 2)),
                ("evaluate", ([1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1], 2)),
                ("evaluate", ([2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1,
                               2, 1], 2)),
            ),
        ),
        space_factory=_space,
    )
