"""rit-all-g-medals (RIT CS1): count gold medals awarded in a year.

Table I row: S = 559,872 (= 3^7 · 2^8), L ≈ 24.67, P = 9, C = 7,
D = 1,872.

The submission reads ``summer_olympics.txt`` (five fields per record)
with a Scanner.  The error model enumerates all combinations of the five
``i % 5 == ...`` field selectors plus the index start — exactly the
generator the paper describes — which produces the Figure-7 family of
*functionally correct but semantically incorrect* submissions that
account for the assignment's 1,872 discrepancies.
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.assignments import _olympics
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import ContainmentConstraint, EdgeExistenceConstraint
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
void countGoldMedals(int year) {
    {{guard}}{{extra}}int i = {{i-init}};
    int medals = {{medals-init}};
    int p = 0;
    int y = 0;
    String e = "";
    Scanner s = new Scanner(new File("summer_olympics.txt"));
    while (s.hasNext()) {
        if ({{pos1}})
            e = s.next();
        if ({{pos2}})
            e = s.next();
        if ({{pos3}})
            p = s.nextInt();
        if ({{pos4}})
            y = s.nextInt();
        if ({{pos5}}) {
            {{sep-read}}
            if ({{medal-check}})
                {{medals-upd}};
        }
        {{i-adv}};
    }
    {{close}}
    {{print}};
}
"""


def _position(name: str, remainder: int) -> ChoicePoint:
    """A field-selector choice point: the right remainder plus two wrong
    ones (the paper's "all combinations of i % 5 == {0..4}" generator)."""
    options = [correct(f"i % 5 == {remainder}")]
    for offset in (1, 2):
        wrong_remainder = (remainder + offset) % 5
        options.append(wrong(f"i % 5 == {wrong_remainder}"))
    return ChoicePoint(name, tuple(options))


def _space() -> SubmissionSpace:
    choice_points = [
        # seven ternary points (3^7) --------------------------------------
        _position("pos1", 1),
        _position("pos2", 2),
        _position("pos3", 3),
        _position("pos4", 4),
        _position("pos5", 0),
        ChoicePoint("i-init", (correct("1"), wrong("0"), wrong("2"))),
        ChoicePoint("medal-check", (
            correct("y == year && p == 1"),
            wrong("y == year && p == 2"),
            wrong("p == 1"),
        )),
        # eight binary points (2^8) ----------------------------------------
        ChoicePoint("medals-init", (correct("0"), wrong("1"))),
        ChoicePoint("medals-upd", (
            correct("medals += 1"), correct("medals++"),
        )),
        ChoicePoint("i-adv", (correct("i++"), correct("i += 1"))),
        ChoicePoint("print", (
            correct("System.out.println(medals)"),
            wrong("System.out.println(i)"),
        )),
        ChoicePoint("close", (
            correct("s.close();"),
            # forgetting close() is functionally invisible but flagged by
            # the scanner-close pattern: a deliberate discrepancy source
            wrong(""),
        )),
        ChoicePoint("sep-read", (
            correct("e = s.next();"), correct("s.next();"),
        )),
        ChoicePoint("extra", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("guard", (
            correct(""), correct("if (year < 1896) return;\n    "),
        )),
    ]
    return SubmissionSpace("rit-all-g-medals", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    files = ((_olympics.FILE_NAME, _olympics.file_content()),)
    years = [2012, 2016, 2008, 1996, 1992, 2000]
    return [
        FunctionalTest(
            method="countGoldMedals",
            arguments=(year,),
            expected_stdout=f"{_olympics.gold_medals_in(year)}\n",
            files=files,
        )
        for year in years
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="countGoldMedals",
        patterns=[
            (get_pattern("scanner-loop"), 1),
            (get_pattern("record-position-read"), 1),
            (get_pattern("record-index-advance"), 1),
            (get_pattern("cond-cumulative-add"), 1),
            (get_pattern("equality-check"), 1),
            (get_pattern("assign-print"), 1),
            (get_pattern("print-call"), None),
            (get_pattern("scanner-close"), 1),
            # bad pattern: the loop must be sentinel-controlled by
            # hasNext(), not bounded by a guessed record count
            (get_pattern("accumulator-bound-loop"), 0),
        ],
        constraints=[
            ContainmentConstraint(
                name="closed-scanner-is-the-opened-one",
                feedback_correct="You close the scanner you opened on the "
                                 "file.",
                feedback_incorrect="Close the same scanner you opened on "
                                   "the file.",
                pattern="scanner-close", node=0,
                expr=ExprTemplate(r"sc\.close", frozenset({"sc"})),
                supporting=("scanner-loop",),
            ),
            ContainmentConstraint(
                name="field-selector-uses-advanced-index",
                feedback_correct="The field selector uses the index you "
                                 "advance per token.",
                feedback_incorrect="Select fields with the index that "
                                   "advances once per token.",
                pattern="record-position-read", node=0,
                expr=ExprTemplate(r"rj % 5 ==", frozenset({"rj"})),
                supporting=("record-index-advance",),
            ),
            EdgeExistenceConstraint(
                name="index-advances-once-per-token-loop",
                feedback_correct="The field index advances inside the "
                                 "hasNext() loop.",
                feedback_incorrect="Advance the field index once per "
                                   "iteration of the hasNext() loop.",
                pattern_i="scanner-loop", node_i=1,
                pattern_j="record-index-advance", node_j=2,
                edge_type=EdgeType.CTRL,
            ),
            ContainmentConstraint(
                name="gold-check-tests-medal-type-one",
                feedback_correct="You count a medal only when its type is "
                                 "1 (gold).",
                feedback_incorrect="Count a medal only when its type "
                                   "equals 1 (gold).",
                pattern="cond-cumulative-add", node=2,
                expr=ExprTemplate(r"== 1", frozenset()),
                supporting=(),
            ),
            ContainmentConstraint(
                name="medals-count-by-one",
                feedback_correct="The medal count advances by exactly one "
                                 "per matching record.",
                feedback_incorrect="Advance the medal count by exactly "
                                   "one per matching record.",
                pattern="cond-cumulative-add", node=3,
                expr=ExprTemplate(r"c \+= 1|c\+\+", frozenset({"c"})),
                supporting=(),
            ),
            EdgeExistenceConstraint(
                name="medal-count-is-printed",
                feedback_correct="The medal count is printed to console.",
                feedback_incorrect="Print the medal count to console.",
                pattern_i="cond-cumulative-add", node_i=3,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
            ContainmentConstraint(
                name="year-is-checked",
                feedback_correct="You compare the record's year against "
                                 "the requested one.",
                feedback_incorrect="Compare the record's year against the "
                                   "requested year in the counting "
                                   "condition.",
                pattern="equality-check", node=0,
                expr=ExprTemplate(r"e1 == e2 && |&& e1 == e2",
                                  frozenset({"e1", "e2"})),
                supporting=(),
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="rit-all-g-medals",
        title="Count gold medals awarded in a year",
        statement="Count all the gold medals awarded in a given year in "
                  "the Summer Olympic Games (read from "
                  "summer_olympics.txt).  Header: void "
                  "countGoldMedals(int year).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("countGoldMedals", "constant"),),
            size_metric="int-value",
            ladder=(
                ("countGoldMedals", (1896,)),
                ("countGoldMedals", (1960,)),
                ("countGoldMedals", (2008,)),
            ),
        ),
        space_factory=_space,
    )
