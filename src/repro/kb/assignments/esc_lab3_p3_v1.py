"""esc-LAB-3-P3-V1 (IIT Kanpur): difference of a number and its reverse.

Table I row: S = 10,368 (= 3^4 · 2^7), L ≈ 10.5, P = 7, C = 6, D = 1.

The paper's single discrepancy here came from a submission computing the
digit count via log10 — a structural variant outside the error model —
so our space concentrates on the reverse-building rules; the ``diff``
choice point's ``r - k`` option is pattern-positive but functionally
wrong, giving this assignment its own (documented) discrepancy source.
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import ContainmentConstraint, EdgeExistenceConstraint
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
void reverseDiff(int k) {
    {{guard}}{{extra}}int r = {{r-init}};
    {{n-copy}}
    while ({{loop-cond}}) {
        int d = {{digit}};
        {{rev-build}}
        {{shrink}};
    }
    int diff = {{diff}};
    {{print}};{{print-extra}}
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # four ternary points (3^4) --------------------------------------
        ChoicePoint("r-init", (correct("0"), wrong("1"), wrong("k"))),
        ChoicePoint("rev-build", (
            correct("r = r * 10 + d;"),
            wrong("r = r + d;"),
            wrong("r = r * 100 + d;"),
        )),
        ChoicePoint("digit", (
            correct("n % 10"), wrong("n % 100"), wrong("n / 10"),
        )),
        ChoicePoint("diff", (
            correct("k - r"),
            # reversed operands: the difference pattern accepts either
            # direction, so this is pattern-positive but test-failing
            wrong("r - k"),
            wrong("k + r"),
        )),
        # seven binary points (2^7) ---------------------------------------
        ChoicePoint("loop-cond", (correct("n != 0"), correct("n > 0"))),
        ChoicePoint("shrink", (correct("n /= 10"), correct("n = n / 10"))),
        ChoicePoint("print", (
            correct("System.out.println(diff)"),
            wrong("System.out.println(r)"),
        )),
        ChoicePoint("n-copy", (
            correct("int n = k;"), wrong("int n = k / 10;"),
        )),
        ChoicePoint("extra", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("guard", (
            correct(""), correct("if (k < 0) return;\n    "),
        )),
        ChoicePoint("print-extra", (
            correct(""), wrong("\n    System.out.println(diff);"),
        )),
    ]
    return SubmissionSpace("esc-LAB-3-P3-V1", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    cases = [(12, 12 - 21), (100, 100 - 1), (7, 0), (120, 120 - 21),
             (91, 91 - 19), (1234, 1234 - 4321)]
    return [
        FunctionalTest(
            method="reverseDiff", arguments=(k,), expected_stdout=f"{d}\n",
        )
        for k, d in cases
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="reverseDiff",
        patterns=[
            (get_pattern("digit-extract"), 1),
            (get_pattern("shrink-by-ten"), 1),
            (get_pattern("reverse-build"), 1),
            (get_pattern("difference"), 1),
            (get_pattern("assign-print"), 1),
            (get_pattern("print-call"), None),
            # bad pattern: this variant computes a difference, not an
            # equality test (that is P4-V1, the palindrome variant)
            (get_pattern("equality-check"), 0),
        ],
        constraints=[
            EdgeExistenceConstraint(
                name="difference-uses-built-reverse",
                feedback_correct="The difference uses the reverse you "
                                 "built.",
                feedback_incorrect="The difference must use the reverse "
                                   "you built digit by digit.",
                pattern_i="reverse-build", node_i=2,
                pattern_j="difference", node_j=2,
                edge_type=EdgeType.DATA,
            ),
            EdgeExistenceConstraint(
                name="difference-is-printed",
                feedback_correct="The difference is printed to console.",
                feedback_incorrect="Print the difference (not the "
                                   "reverse) to console.",
                pattern_i="difference", node_i=2,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
            EdgeExistenceConstraint(
                name="reverse-built-inside-digit-loop",
                feedback_correct="The reverse grows inside the digit "
                                 "loop.",
                feedback_incorrect="Grow the reverse inside the digit "
                                   "loop.",
                pattern_i="shrink-by-ten", node_i=1,
                pattern_j="reverse-build", node_j=2,
                edge_type=EdgeType.CTRL,
            ),
            EdgeExistenceConstraint(
                name="reverse-appends-extracted-digit",
                feedback_correct="Each extracted digit is appended to the "
                                 "reverse.",
                feedback_incorrect="Append the digit you extracted with "
                                   "% 10 to the reverse.",
                pattern_i="digit-extract", node_i=1,
                pattern_j="reverse-build", node_j=2,
                edge_type=EdgeType.DATA,
            ),
            ContainmentConstraint(
                name="reverse-shifts-by-ten",
                feedback_correct="The reverse shifts by exactly one "
                                 "decimal digit per step.",
                feedback_incorrect="Shift the reverse by exactly one "
                                   "decimal digit: {rv} = {rv} * 10 + "
                                   "digit.",
                pattern="reverse-build", node=2,
                expr=ExprTemplate(r"rv = rv \* 10 \+ |rv = 10 \* rv \+ ",
                                  frozenset({"rv"})),
                supporting=(),
            ),
            ContainmentConstraint(
                name="consume-one-digit-per-step",
                feedback_correct="You consume exactly one digit per "
                                 "iteration.",
                feedback_incorrect="Consume exactly one digit per "
                                   "iteration ({n1} /= 10).",
                pattern="shrink-by-ten", node=2,
                expr=ExprTemplate(r"n1 /= 10|n1 = n1 / 10",
                                  frozenset({"n1"})),
                supporting=(),
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="esc-LAB-3-P3-V1",
        title="Difference of a number and its reverse",
        statement="Find the difference of a positive number and its "
                  "reverse and print it to console.  Header: "
                  "void reverseDiff(int k).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("reverseDiff", "linear"),),
            size_metric="int-digits",
            ladder=(
                ("reverseDiff", (123456,)),
                ("reverseDiff", (12345678,)),
                ("reverseDiff", (1234567890,)),
            ),
        ),
        space_factory=_space,
    )
