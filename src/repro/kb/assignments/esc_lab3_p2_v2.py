"""esc-LAB-3-P2-V2 (IIT Kanpur): special numbers (sum of cubes of digits).

    A number is special when the sum of cubes of its digits is equal to
    the number itself.

Table I row: S = 144 (= 3^2 · 2^4), L ≈ 7.67, P = 4, C = 5, D = 0.
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import ContainmentConstraint, EdgeExistenceConstraint
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
void isSpecial(int k) {
    int s = {{s-init}};
    int n = k;
    while ({{loop-cond}}) {
        int d = {{digit}};
        {{cube}}
        {{shrink}};
    }
    if ({{check}})
        System.out.println("special");
    else
        System.out.println("not special");
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        ChoicePoint("s-init", (correct("0"), wrong("1"), wrong("k"))),
        ChoicePoint("cube", (
            correct("s += d * d * d;"),
            wrong("s += d * d;"),
            wrong("s += d;"),
        )),
        ChoicePoint("loop-cond", (correct("n != 0"), correct("n > 0"))),
        ChoicePoint("shrink", (correct("n /= 10"), correct("n = n / 10"))),
        ChoicePoint("digit", (correct("n % 10"), wrong("n % 9"))),
        # the wrong option inverts the test, which the equality-check
        # pattern recognizes approximately (the paper reports D = 0 here)
        ChoicePoint("check", (correct("s == k"), wrong("s != k"))),
    ]
    return SubmissionSpace("esc-LAB-3-P2-V2", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    cases = [(153, True), (370, True), (371, True), (407, True), (1, True),
             (10, False), (100, False), (152, False), (372, False)]
    return [
        FunctionalTest(
            method="isSpecial",
            arguments=(k,),
            expected_stdout="special\n" if special else "not special\n",
        )
        for k, special in cases
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="isSpecial",
        patterns=[
            (get_pattern("digit-extract"), 1),
            (get_pattern("shrink-by-ten"), 1),
            (get_pattern("cube-sum"), 1),
            (get_pattern("equality-check"), 1),
        ],
        constraints=[
            ContainmentConstraint(
                name="full-cube-is-summed",
                feedback_correct="You accumulate the full cube "
                                 "{dg} * {dg} * {dg}.",
                feedback_incorrect="The sum must use the cube of each "
                                   "digit: {dg} * {dg} * {dg}.",
                pattern="cube-sum", node=2,
                expr=ExprTemplate(
                    r"cs \+= dg \* dg \* dg|cs = cs \+ dg \* dg \* dg",
                    frozenset({"cs", "dg"}),
                ),
                supporting=(),
            ),
            EdgeExistenceConstraint(
                name="cube-uses-extracted-digit",
                feedback_correct="The cube uses the digit you extracted "
                                 "with % 10.",
                feedback_incorrect="Cube the digit you extracted with "
                                   "% 10.",
                pattern_i="digit-extract", node_i=1,
                pattern_j="cube-sum", node_j=2,
                edge_type=EdgeType.DATA,
            ),
            ContainmentConstraint(
                name="comparison-uses-cube-sum",
                feedback_correct="You compare the cube sum {cs} against "
                                 "the input.",
                feedback_incorrect="Compare the cube sum against the "
                                   "original input number (not the "
                                   "consumed copy, which is 0 after the "
                                   "loop).",
                pattern="equality-check", node=0,
                expr=ExprTemplate(r"cs == |== cs", frozenset({"cs"})),
                supporting=("cube-sum",),
            ),
            EdgeExistenceConstraint(
                name="cube-sum-inside-digit-loop",
                feedback_correct="The cube sum is accumulated inside the "
                                 "digit loop.",
                feedback_incorrect="Accumulate the cube sum inside the "
                                   "digit loop.",
                pattern_i="shrink-by-ten", node_i=1,
                pattern_j="cube-sum", node_j=2,
                edge_type=EdgeType.CTRL,
            ),
            EdgeExistenceConstraint(
                name="digit-extracted-inside-digit-loop",
                feedback_correct="Digits are extracted inside the digit "
                                 "loop.",
                feedback_incorrect="Extract each digit inside the digit "
                                   "loop.",
                pattern_i="shrink-by-ten", node_i=1,
                pattern_j="digit-extract", node_j=1,
                edge_type=EdgeType.CTRL,
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="esc-LAB-3-P2-V2",
        title="Special numbers (sum of cubes of digits)",
        statement="A number is special when the sum of cubes of its "
                  "digits equals the number itself.  Header: "
                  "void isSpecial(int k).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("isSpecial", "linear"),),
            size_metric="int-digits",
            ladder=(
                ("isSpecial", (11111,)), ("isSpecial", (1111111,)),
                ("isSpecial", (111111111,)),
                ("isSpecial", (11111111111,)),
            ),
        ),
        space_factory=_space,
    )
