"""Simulated ``summer_olympics.txt`` shared by the two RIT assignments.

The paper's RIT assignments read a text file of athlete records: five
whitespace-separated fields per record — first name, last name, medal
type (1 gold / 2 silver / 3 bronze), year, and a separator token.  The
real course file is not distributed, so we generate a deterministic
synthetic dataset with the same schema (and enough collisions — shared
first names, repeat medalists — to make the assignments' edge cases
observable).
"""

from __future__ import annotations

FILE_NAME = "summer_olympics.txt"

#: (first, last, medal_type, year) — deterministic synthetic records.
RECORDS: list[tuple[str, str, int, int]] = [
    ("Usain", "Bolt", 1, 2008),
    ("Usain", "Bolt", 1, 2012),
    ("Usain", "Bolt", 1, 2016),
    ("Michael", "Phelps", 1, 2008),
    ("Michael", "Phelps", 1, 2012),
    ("Michael", "Phelps", 2, 2016),
    ("Michael", "Johnson", 1, 1996),
    ("Allyson", "Felix", 2, 2008),
    ("Allyson", "Felix", 1, 2012),
    ("Allyson", "Felix", 1, 2016),
    ("Simone", "Biles", 1, 2016),
    ("Simone", "Biles", 3, 2016),
    ("Carl", "Lewis", 1, 1996),
    ("Carl", "Lewis", 1, 1992),
    ("Mo", "Farah", 1, 2012),
    ("Mo", "Farah", 1, 2016),
    ("Katie", "Ledecky", 1, 2012),
    ("Katie", "Ledecky", 1, 2016),
    ("Katie", "Ledecky", 2, 2016),
    ("Yohan", "Blake", 2, 2012),
    ("Justin", "Gatlin", 3, 2012),
    ("Justin", "Gatlin", 2, 2016),
    ("Shelly-Ann", "Fraser-Pryce", 1, 2012),
    ("Shelly-Ann", "Fraser-Pryce", 3, 2016),
]


def file_content() -> str:
    """The file text served to the interpreter's virtual filesystem."""
    lines = [
        f"{first} {last} {medal} {year} #"
        for first, last, medal, year in RECORDS
    ]
    return "\n".join(lines) + "\n"


def gold_medals_in(year: int) -> int:
    """Ground truth for rit-all-g-medals."""
    return sum(
        1 for _, _, medal, y in RECORDS if medal == 1 and y == year
    )


def medals_of(first: str, last: str) -> int:
    """Ground truth for rit-medals-by-ath."""
    return sum(
        1 for f, l, _, _ in RECORDS if f == first and l == last
    )


#: Paper Figure 7: functionally correct but semantically incorrect
#: submission for rit-all-g-medals (duplicated conditions advance the
#: file index twice, coincidentally landing on the right fields).
FIGURE_7 = """
void countGoldMedals(int year) {
    int i = 1;
    int medals = 0;
    int p = 0;
    int y = 0;
    String e = "";
    Scanner s = new Scanner(new File("summer_olympics.txt"));
    while (s.hasNext()) {
        if (i % 5 == 4)
            e = s.next();
        if (i % 5 == 1)
            e = s.next();
        if (i % 5 == 1)
            e = s.next();
        if (i % 5 == 3)
            p = s.nextInt();
        if (i % 5 == 3)
            y = s.nextInt();
        if (i % 5 == 4 && y == year && p == 1)
            medals += 1;
        i++;
    }
    s.close();
    System.out.println(medals);
}
"""
