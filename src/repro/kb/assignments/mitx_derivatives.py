"""mitx-derivatives (MIT 6.00x): derivative of a polynomial.

    Compute the derivative of an input polynomial represented by an
    array (coefficient of x^i at position i); print each derivative
    coefficient to console.

Table I row: S = 576 (= 3^2 · 2^6), L ≈ 5.75, P = 3, C = 4, D = 0.
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import ContainmentConstraint, EdgeExistenceConstraint
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
void derivative(int[] c) {
    {{guard}}{{extra}}int[] d = new int[{{size}}];
    int i = {{i-start}};
    while ({{bound}}) {
        {{write}}
        {{print}};
        {{adv}};
    }
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # two ternary points (3^2) ---------------------------------------
        ChoicePoint("i-start", (correct("1"), wrong("0"), wrong("2"))),
        ChoicePoint("write", (
            correct("d[i - 1] = c[i] * i;"),
            wrong("d[i - 1] = c[i];"),
            wrong("d[i - 1] = c[i] * (i - 1);"),
        )),
        # six binary points (2^6) -----------------------------------------
        ChoicePoint("bound", (
            correct("i < c.length"), wrong("i <= c.length"),
        )),
        ChoicePoint("adv", (correct("i++"), correct("i += 1"))),
        ChoicePoint("size", (
            correct("c.length - 1"),
            # a larger scratch array changes nothing observable
            correct("c.length"),
        )),
        ChoicePoint("print", (
            correct("System.out.println(d[i - 1])"),
            wrong("System.out.println(c[i])"),
        )),
        ChoicePoint("extra", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("guard", (
            correct(""), correct("if (c == null) return;\n    "),
        )),
    ]
    return SubmissionSpace("mitx-derivatives", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    cases = [
        ([3, 2, 1], [2, 2]),
        ([5], []),
        ([0, 0, 4], [0, 8]),
        ([1, 2, 3, 4], [2, 6, 12]),
        ([7, -3], [-3]),
    ]
    return [
        FunctionalTest(
            method="derivative", arguments=(coeffs,),
            expected_stdout="".join(f"{v}\n" for v in derivative),
        )
        for coeffs, derivative in cases
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="derivative",
        patterns=[
            (get_pattern("seq-array-traversal"), 1),
            (get_pattern("array-write-scaled"), 1),
            (get_pattern("print-call"), None),
        ],
        constraints=[
            ContainmentConstraint(
                name="power-rule-scales-by-index",
                feedback_correct="Each coefficient of {cf} is multiplied "
                                 "by its exponent {k}.",
                feedback_incorrect="The power rule multiplies each "
                                   "coefficient by its exponent: "
                                   "{dv}[{k} - 1] = {cf}[{k}] * {k}.",
                pattern="array-write-scaled", node=1,
                expr=ExprTemplate(r"cf\[k\] \* k|k \* cf\[k\]",
                                  frozenset({"cf", "k"})),
                supporting=("seq-array-traversal",),
            ),
            ContainmentConstraint(
                name="derivative-skips-constant-term",
                feedback_correct="The traversal starts at position 1: "
                                 "the constant term has no derivative.",
                feedback_incorrect="Start the traversal at position 1; "
                                   "the constant term has no derivative.",
                pattern="seq-array-traversal", node=1,
                expr=ExprTemplate(r"k = 1", frozenset({"k"})),
                supporting=(),
            ),
            EdgeExistenceConstraint(
                name="write-inside-traversal",
                feedback_correct="The derivative coefficients are written "
                                 "inside the traversal.",
                feedback_incorrect="Write each derivative coefficient "
                                   "inside the traversal loop.",
                pattern_i="seq-array-traversal", node_i=2,
                pattern_j="array-write-scaled", node_j=1,
                edge_type=EdgeType.CTRL,
            ),
            EdgeExistenceConstraint(
                name="computed-coefficient-is-printed",
                feedback_correct="Each computed coefficient is printed to "
                                 "console.",
                feedback_incorrect="Print each computed derivative "
                                   "coefficient to console.",
                pattern_i="array-write-scaled", node_i=1,
                pattern_j="print-call", node_j=0,
                edge_type=EdgeType.DATA,
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="mitx-derivatives",
        title="Derivative of a polynomial",
        statement="Compute the derivative of an input polynomial "
                  "represented by an array and print each coefficient to "
                  "console.  Header: void derivative(int[] c).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("derivative", "linear"),),
            size_metric="sequence-length",
            ladder=(
                ("derivative", ([1, 2, 3, 4, 5, 6],)),
                ("derivative", ([1, 2, 3, 4, 5, 6, 7, 8, 9],)),
                ("derivative", ([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                 12],)),
            ),
        ),
        space_factory=_space,
    )
