"""esc-LAB-3-P3-V2 (IIT Kanpur): count factorial numbers in [n, m].

Table I row: S = 589,824 (= 3^2 · 2^16), L ≈ 15.42, P = 8, C = 10, D = 4.

The paper's four discrepancies came from submissions that count the
value 1 twice (as 0! and 1!); the ``i-start`` choice point reproduces
exactly that rule (starting the running index at 0 revisits 1).
"""

from __future__ import annotations

from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import (
    ContainmentConstraint,
    EdgeExistenceConstraint,
    EqualityConstraint,
)
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
void countFactorials(int n, int m) {
    {{guard}}{{m-check-extra}}{{extra}}{{extra2}}{{count-type}} count = {{count-init}};
    {{f-type}} f = {{f-init}};
    int i = {{i-start}};
    while ({{bound}}) {
        if ({{fact-check}}) {
            {{count-update}};
        }
        {{i-adv}};
        {{f-update}};
    }
    {{print}};{{print-extra}}
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # two ternary points (3^2) ---------------------------------------
        ChoicePoint("count-init", (correct("0"), wrong("1"), wrong("2"))),
        ChoicePoint("fact-check", (
            correct("f >= n"), wrong("f > n"), wrong("f == n"),
        )),
        # 2^16 worth of binary-equivalent points --------------------------
        ChoicePoint("i-start", (
            correct("1"),
            # the paper's double-counting rule: starting at 0 revisits 1
            # (0! and 1!), overcounting by one while every pattern holds
            wrong("0"),
        )),
        ChoicePoint("bound", (correct("f <= m"), wrong("f < m"))),
        ChoicePoint("f-init", (correct("1"), wrong("0"))),
        ChoicePoint("count-update", (
            correct("count++"), correct("count += 1"),
            correct("count = count + 1"), wrong("count--"),
        )),
        ChoicePoint("f-update", (
            correct("f = f * i"), correct("f *= i"),
        )),
        ChoicePoint("i-adv", (correct("i++"), correct("i += 1"))),
        ChoicePoint("print", (
            correct("System.out.println(count)"),
            wrong("System.out.println(f)"),
            wrong("System.out.print(count)"),
            wrong("System.out.println(n)"),
        )),
        ChoicePoint("guard", (
            correct(""), correct("if (n < 1) n = 1;\n    "),
        )),
        ChoicePoint("m-check-extra", (
            correct(""),
            correct("if (m < 1) {\n        System.out.println(0);\n"
                    "        return;\n    }\n    "),
        )),
        ChoicePoint("extra", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("extra2", (correct(""), correct("int aux = 0;\n    "))),
        ChoicePoint("print-extra", (
            correct(""), wrong("\n    System.out.println(count);"),
        )),
        ChoicePoint("f-type", (correct("int"), correct("long"))),
        ChoicePoint("count-type", (correct("int"), correct("long"))),
    ]
    return SubmissionSpace("esc-LAB-3-P3-V2", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    # factorials: 1, 2, 6, 24, 120, 720, ...
    cases = [((1, 15), 3), ((1, 1), 1), ((2, 6), 2), ((3, 23), 1),
             ((1, 720), 6), ((7, 23), 0), ((24, 24), 1)]
    return [
        FunctionalTest(
            method="countFactorials", arguments=args,
            expected_stdout=f"{count}\n",
        )
        for args, count in cases
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="countFactorials",
        patterns=[
            (get_pattern("factorial-loop"), 1),
            (get_pattern("accumulator-bound-loop"), 1),
            (get_pattern("counter-under-cond"), 2),
            (get_pattern("assign-print"), 1),
            (get_pattern("print-call"), None),
            # bad patterns: equality alone misses the range check, and the
            # sibling variants of this lab (Fibonacci counting and digit
            # manipulation) do not belong here
            (get_pattern("equality-check"), 0),
            (get_pattern("fibonacci-update"), 0),
            (get_pattern("digit-extract"), 0),
        ],
        constraints=[
            ContainmentConstraint(
                name="factorial-multiplied-by-running-index",
                feedback_correct="Each factorial is the previous one "
                                 "times the running index.",
                feedback_incorrect="Grow the factorial by multiplying the "
                                   "previous one by the running index.",
                pattern="factorial-loop", node=2,
                expr=ExprTemplate(r"f \*= cnt|f = f \* cnt",
                                  frozenset({"f", "cnt"})),
                supporting=("counter-under-cond",),
            ),
            EqualityConstraint(
                name="factorials-grow-inside-bounded-loop",
                feedback_correct="Factorials are generated inside the "
                                 "bounded loop.",
                feedback_incorrect="Generate factorials inside the loop "
                                   "bounded by m.",
                pattern_i="factorial-loop", node_i=1,
                pattern_j="accumulator-bound-loop", node_j=1,
            ),
            EdgeExistenceConstraint(
                name="factorial-update-guarded-by-bound",
                feedback_correct="The factorial update is guarded by the "
                                 "upper bound.",
                feedback_incorrect="Stop growing factorials once they "
                                   "exceed m.",
                pattern_i="accumulator-bound-loop", node_i=1,
                pattern_j="factorial-loop", node_j=2,
                edge_type=EdgeType.CTRL,
            ),
            ContainmentConstraint(
                name="upper-bound-inclusive",
                feedback_correct="The interval includes m itself.",
                feedback_incorrect="The interval [n, m] includes m; use "
                                   "<= for the upper bound.",
                pattern="accumulator-bound-loop", node=1,
                expr=ExprTemplate(r"acc <= k0", frozenset({"acc", "k0"})),
                supporting=(),
            ),
            EdgeExistenceConstraint(
                name="count-is-printed",
                feedback_correct="The count is printed to console.",
                feedback_incorrect="Print the count (not the running "
                                   "factorial) to console.",
                pattern_i="counter-under-cond", node_i=2,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
            ContainmentConstraint(
                name="prints-with-newline",
                feedback_correct="You print the result with println.",
                feedback_incorrect="Print the result with "
                                   "System.out.println so it ends the "
                                   "line.",
                pattern="assign-print", node=1,
                expr=ExprTemplate(r"System\.out\.println\(", frozenset()),
                supporting=(),
            ),
            ContainmentConstraint(
                name="count-starts-at-zero",
                feedback_correct="The count starts at 0.",
                feedback_incorrect="Start the count at 0.",
                pattern="counter-under-cond", node=0,
                expr=ExprTemplate(r"cnt = 0", frozenset({"cnt"})),
                supporting=(),
            ),
            ContainmentConstraint(
                name="lower-range-check-uses-gte",
                feedback_correct="The lower end of the interval is "
                                 "checked with >=.",
                feedback_incorrect="Check the lower end of the interval "
                                   "with >= n (equality alone misses "
                                   "larger factorials).",
                pattern="counter-under-cond", node=1,
                expr=ExprTemplate(r">=", frozenset()),
                supporting=(),
            ),
            ContainmentConstraint(
                name="factorial-starts-at-one",
                feedback_correct="The running factorial starts at 1.",
                feedback_incorrect="Start the running factorial at 1 "
                                   "(0 would stay 0 forever).",
                pattern="factorial-loop", node=0,
                expr=ExprTemplate(r"f = 1", frozenset({"f"})),
                supporting=(),
            ),
            EdgeExistenceConstraint(
                name="bound-tests-initial-factorial",
                feedback_correct="The bound check sees the running "
                                 "factorial from its first value on.",
                feedback_incorrect="The loop bound must test the running "
                                   "factorial itself.",
                pattern_i="factorial-loop", node_i=0,
                pattern_j="accumulator-bound-loop", node_j=1,
                edge_type=EdgeType.DATA,
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="esc-LAB-3-P3-V2",
        title="Count factorial numbers in [n, m]",
        statement="Given numbers n and m, print to console the count of "
                  "factorial numbers in [n, m].  Header: "
                  "void countFactorials(int n, int m).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        space_factory=_space,
    )
