"""rit-medals-by-ath (RIT CS1): count all medals of a given athlete.

Table I row: S = 746,496 (= 3^6 · 2^10), L ≈ 33.5, P = 9, C = 7,
D = 744.

Same record file and generator as rit-all-g-medals; the discrepancies
come from the same "duplicated field-selector conditions" family.
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.assignments import _olympics
from repro.kb.assignments.rit_all_g_medals import _position
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import ContainmentConstraint, EdgeExistenceConstraint
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
void countMedalsByAthlete(String first, String last) {
    {{guard}}{{extra}}{{extra2}}int i = {{i-init}};
    int medals = {{medals-init}};
    int p = 0;
    int y = 0;
    String fn = "";
    String ln = "";
    String e = "";
    Scanner s = new Scanner(new File("summer_olympics.txt"));
    while (s.hasNext()) {
        if ({{pos1}})
            fn = s.next();
        if ({{pos2}})
            ln = s.next();
        if ({{pos3}})
            p = s.nextInt();
        if ({{pos4}})
            y = s.nextInt();
        if ({{pos5}}) {
            {{sep-read}}
            if ({{name-check}})
                {{medals-upd}};
        }
        {{i-adv}};
    }
    {{close}}
    {{print}};
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # six ternary points (3^6) ----------------------------------------
        _position("pos1", 1),
        _position("pos2", 2),
        _position("pos3", 3),
        _position("pos4", 4),
        _position("pos5", 0),
        ChoicePoint("i-init", (correct("1"), wrong("0"), wrong("2"))),
        # ten binary points (2^10) ------------------------------------------
        ChoicePoint("name-check", (
            correct("fn.equals(first) && ln.equals(last)"),
            # matching on the first name only confuses athletes who share
            # it (Michael Phelps vs Michael Johnson in the dataset)
            wrong("fn.equals(first)"),
        )),
        ChoicePoint("medals-init", (correct("0"), wrong("1"))),
        ChoicePoint("medals-upd", (
            correct("medals += 1"), correct("medals++"),
        )),
        ChoicePoint("i-adv", (correct("i++"), correct("i += 1"))),
        ChoicePoint("print", (
            correct("System.out.println(medals)"),
            wrong("System.out.println(i)"),
        )),
        ChoicePoint("close", (correct("s.close();"), wrong(""))),
        ChoicePoint("sep-read", (
            correct("e = s.next();"), correct("s.next();"),
        )),
        ChoicePoint("extra", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("extra2", (correct(""), correct("int aux = 0;\n    "))),
        ChoicePoint("guard", (
            correct(""), correct("if (first == null) return;\n    "),
        )),
    ]
    return SubmissionSpace("rit-medals-by-ath", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    files = ((_olympics.FILE_NAME, _olympics.file_content()),)
    athletes = [
        ("Usain", "Bolt"), ("Michael", "Phelps"), ("Michael", "Johnson"),
        ("Allyson", "Felix"), ("Katie", "Ledecky"), ("Carl", "Lewis"),
        ("Jesse", "Owens"),
    ]
    return [
        FunctionalTest(
            method="countMedalsByAthlete",
            arguments=(first, last),
            expected_stdout=f"{_olympics.medals_of(first, last)}\n",
            files=files,
        )
        for first, last in athletes
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="countMedalsByAthlete",
        patterns=[
            (get_pattern("scanner-loop"), 1),
            (get_pattern("record-position-read"), 1),
            (get_pattern("record-index-advance"), 1),
            (get_pattern("cond-cumulative-add"), 1),
            (get_pattern("equality-check"), 1),
            (get_pattern("assign-print"), 1),
            (get_pattern("print-call"), None),
            (get_pattern("scanner-close"), 1),
            (get_pattern("accumulator-bound-loop"), 0),
        ],
        constraints=[
            ContainmentConstraint(
                name="closed-scanner-is-the-opened-one",
                feedback_correct="You close the scanner you opened on the "
                                 "file.",
                feedback_incorrect="Close the same scanner you opened on "
                                   "the file.",
                pattern="scanner-close", node=0,
                expr=ExprTemplate(r"sc\.close", frozenset({"sc"})),
                supporting=("scanner-loop",),
            ),
            ContainmentConstraint(
                name="field-selector-uses-advanced-index",
                feedback_correct="The field selector uses the index you "
                                 "advance per token.",
                feedback_incorrect="Select fields with the index that "
                                   "advances once per token.",
                pattern="record-position-read", node=0,
                expr=ExprTemplate(r"rj % 5 ==", frozenset({"rj"})),
                supporting=("record-index-advance",),
            ),
            EdgeExistenceConstraint(
                name="index-advances-once-per-token-loop",
                feedback_correct="The field index advances inside the "
                                 "hasNext() loop.",
                feedback_incorrect="Advance the field index once per "
                                   "iteration of the hasNext() loop.",
                pattern_i="scanner-loop", node_i=1,
                pattern_j="record-index-advance", node_j=2,
                edge_type=EdgeType.CTRL,
            ),
            ContainmentConstraint(
                name="guard-compares-names",
                feedback_correct="The counting condition compares names "
                                 "with equals().",
                feedback_incorrect="Compare the athlete's names with "
                                   "equals() in the counting condition.",
                pattern="cond-cumulative-add", node=2,
                expr=ExprTemplate(r"\.equals\(", frozenset()),
                supporting=(),
            ),
            ContainmentConstraint(
                name="medals-count-by-one",
                feedback_correct="The medal count advances by exactly one "
                                 "per matching record.",
                feedback_incorrect="Advance the medal count by exactly "
                                   "one per matching record.",
                pattern="cond-cumulative-add", node=3,
                expr=ExprTemplate(r"c \+= 1|c\+\+", frozenset({"c"})),
                supporting=(),
            ),
            EdgeExistenceConstraint(
                name="medal-count-is-printed",
                feedback_correct="The medal count is printed to console.",
                feedback_incorrect="Print the medal count to console.",
                pattern_i="cond-cumulative-add", node_i=3,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
            ContainmentConstraint(
                name="both-names-are-checked",
                feedback_correct="You compare both the first and the last "
                                 "name.",
                feedback_incorrect="Compare both the first AND the last "
                                   "name; different athletes share first "
                                   "names.",
                pattern="equality-check", node=0,
                expr=ExprTemplate(
                    r"e1\.equals\(e2\) && |&& e1\.equals\(e2\)",
                    frozenset({"e1", "e2"}),
                ),
                supporting=(),
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="rit-medals-by-ath",
        title="Count all medals of a given athlete",
        statement="Count all the medals awarded to a given athlete in the "
                  "Summer Olympic Games (read from summer_olympics.txt).  "
                  "Header: void countMedalsByAthlete(String first, String "
                  "last).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("countMedalsByAthlete", "constant"),),
            size_metric="sequence-length",
            ladder=(
                ("countMedalsByAthlete", ("Al", "Oe")),
                ("countMedalsByAthlete", ("Christopher", "Montgomery")),
                ("countMedalsByAthlete", ("Maximiliano",
                                          "Oppenheimer-Smythe")),
            ),
        ),
        space_factory=_space,
    )
