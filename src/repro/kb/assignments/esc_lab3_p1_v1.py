"""esc-LAB-3-P1-V1 (IIT Kanpur): print n such that n! ≤ k < (n+1)!.

Table I row: S = 442,368 (= 3^3 · 2^14), L ≈ 15.17, P = 7, C = 5.

This is the paper's showcase for multiple expected methods: the reference
declares a ``fact`` helper plus the ``lab3p1`` driver, which is exactly
the setting where Sketch needs constant inputs and CLARA's traces diverge.
The paper reports 8 discrepancies here: submissions computing
``(n-1)! <= k`` instead of ``n! <= k`` stay functionally correct (the
looser lower bound never changes the exit point) while the technique
flags the lower limit — our error model includes that exact rule.
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import (
    ContainmentConstraint,
    EdgeExistenceConstraint,
    EqualityConstraint,
)
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

_TEMPLATE = """\
int fact(int m) {
    {{fact-guard}}{{f-type}} f = {{f-init}};
    {{i-type}} i = {{i-start}};
    while ({{fact-bound}}) {
        {{f-update}};
        {{fact-advance}};
    }
    return {{fact-return}};
}

void lab3p1(int k) {
    {{lab-guard}}{{extra-decl}}int n = {{n-init}};
    while (!({{lower-bound}} && {{upper-bound}})) {
        {{n-advance}};
    }
    {{p1-print}};{{print-extra}}
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # three ternary points (3^3) -------------------------------------
        ChoicePoint("f-init", (correct("1"), wrong("0"), wrong("2"))),
        ChoicePoint("n-init", (correct("0"), wrong("2"), wrong("3"))),
        ChoicePoint("lower-bound", (
            correct("fact(n) <= k"),
            # functionally correct, semantically off: the paper's
            # 8-discrepancy rule for this assignment
            wrong("fact(n - 1) <= k"),
            wrong("fact(n + 1) <= k"),
        )),
        # fourteen binary points (2^14) -----------------------------------
        ChoicePoint("i-start", (correct("1"), wrong("0"))),
        ChoicePoint("fact-bound", (correct("i <= m"), wrong("i < m"))),
        ChoicePoint("f-update", (correct("f *= i"), correct("f = f * i"))),
        ChoicePoint("fact-advance", (correct("i++"), correct("i += 1"))),
        ChoicePoint("fact-return", (correct("f"), wrong("i"))),
        ChoicePoint("upper-bound", (
            correct("k < fact(n + 1)"), wrong("k <= fact(n + 1)"),
        )),
        ChoicePoint("n-advance", (correct("n++"), correct("n += 1"))),
        ChoicePoint("p1-print", (
            correct("System.out.println(n)"),
            wrong("System.out.println(k)"),
        )),
        ChoicePoint("fact-guard", (
            correct(""), correct("if (m <= 0) return 1;\n    "),
        )),
        ChoicePoint("lab-guard", (
            correct(""), correct("if (k <= 0) return;\n    "),
        )),
        ChoicePoint("f-type", (correct("int"), correct("long"))),
        ChoicePoint("i-type", (correct("int"), correct("long"))),
        ChoicePoint("extra-decl", (correct(""), correct("int tmp = 0;\n    "))),
        ChoicePoint("print-extra", (
            correct(""), wrong("\n    System.out.println(n);"),
        )),
    ]
    return SubmissionSpace("esc-LAB-3-P1-V1", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    cases = [(1, 1), (2, 2), (5, 2), (6, 3), (23, 3), (24, 4), (100, 4),
             (719, 5), (720, 6)]
    tests = [
        FunctionalTest(
            method="lab3p1",
            arguments=(k,),
            expected_stdout=f"{n}\n",
        )
        for k, n in cases
    ]
    tests.append(
        FunctionalTest(
            method="fact", arguments=(5,),
            expected_return=120, compare_return=True,
        )
    )
    tests.append(
        FunctionalTest(
            method="fact", arguments=(1,),
            expected_return=1, compare_return=True,
        )
    )
    return tests


def build() -> Assignment:
    fact_method = ExpectedMethod(
        name="fact",
        patterns=[
            (get_pattern("factorial-loop"), 1),
            (get_pattern("range-loop"), 1),
        ],
        constraints=[
            ContainmentConstraint(
                name="factorial-multiplies-loop-variable",
                feedback_correct="{f} is multiplied by the loop variable "
                                 "{i0} on every iteration.",
                feedback_incorrect="The factorial accumulator must be "
                                   "multiplied by the loop variable itself "
                                   "({f} *= {i0}).",
                pattern="factorial-loop", node=2,
                expr=ExprTemplate(r"f \*= i0|f = f \* i0",
                                  frozenset({"f", "i0"})),
                supporting=("range-loop",),
            ),
            EqualityConstraint(
                name="factorial-inside-counting-loop",
                feedback_correct="The product is accumulated inside the "
                                 "counting loop.",
                feedback_incorrect="Accumulate the product inside the "
                                   "counting loop over 1..m.",
                pattern_i="factorial-loop", node_i=1,
                pattern_j="range-loop", node_j=1,
            ),
        ],
    )
    lab_method = ExpectedMethod(
        name="lab3p1",
        patterns=[
            (get_pattern("accumulator-bound-loop"), 1),
            (get_pattern("counter-under-cond"), 1),
            (get_pattern("assign-print"), 1),
            (get_pattern("print-call"), None),
            # bad pattern: the factorial must live in fact(), not be
            # re-implemented inline in the driver
            (get_pattern("factorial-loop"), 0),
        ],
        constraints=[
            ContainmentConstraint(
                name="lower-bound-uses-n-factorial",
                feedback_correct="The lower limit compares {cnt}! against "
                                 "{k0}.",
                feedback_incorrect="The lower limit must be {cnt}! <= "
                                   "{k0}, i.e., fact({cnt}) <= {k0}.",
                pattern="accumulator-bound-loop", node=1,
                expr=ExprTemplate(r"fact\(cnt\) <= k0",
                                  frozenset({"cnt", "k0"})),
                supporting=("counter-under-cond",),
            ),
            ContainmentConstraint(
                name="upper-bound-uses-n-plus-1-factorial",
                feedback_correct="The upper limit compares {k0} against "
                                 "({cnt} + 1)!.",
                feedback_incorrect="The upper limit must be {k0} < "
                                   "({cnt} + 1)!, i.e., {k0} < "
                                   "fact({cnt} + 1).",
                pattern="accumulator-bound-loop", node=1,
                expr=ExprTemplate(r"k0 < fact\(cnt \+ 1\)",
                                  frozenset({"cnt", "k0"})),
                supporting=("counter-under-cond",),
            ),
            EdgeExistenceConstraint(
                name="result-counter-is-printed",
                feedback_correct="You print the computed n to console.",
                feedback_incorrect="You must print the computed n (the "
                                   "loop counter) to console.",
                pattern_i="counter-under-cond", node_i=2,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="esc-LAB-3-P1-V1",
        title="Largest n with n! <= k < (n+1)!",
        statement="Print to console the number n such that n! <= k < "
                  "(n+1)!, taking the number k as input.  Headers: "
                  "int fact(int m) and void lab3p1(int k).",
        expected_methods=[fact_method, lab_method],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("fact", "linear"),),
            size_metric="int-value",
            ladder=(
                ("fact", (6,)), ("fact", (9,)), ("fact", (12,)),
                ("fact", (15,)),
            ),
        ),
        space_factory=_space,
    )
