"""Assignment 1 (paper Section III): odd-sum / even-product over an array.

    Given an input array, devise a Java method that adds odd positions and
    multiplies even positions in the array.  Print to console your
    results.  Header: ``void assignment1(int[] a)``.

Table I row: S = 640,000, L ≈ 12.23, P = 6, C = 4.
The error model factorizes as 5^4 · 2^10 = 640,000 (four five-way choice
points and 2^10 worth of binary-equivalent ones).
"""

from __future__ import annotations

from repro.analysis.perf.model import PerfSpec
from repro.core.assignment import Assignment, FunctionalTest
from repro.kb.patterns_library import get_pattern
from repro.matching.submission import ExpectedMethod
from repro.patterns.model import EdgeExistenceConstraint, EqualityConstraint
from repro.pdg.graph import EdgeType
from repro.synth.rules import ChoicePoint, correct, wrong
from repro.synth.spaces import SubmissionSpace

#: The paper's Figure 2 sample submissions, used in tests and examples.
FIGURE_2A = """
void assignment1(int[] a) {
    int even = 0;
    int odd = 0;
    for (int i = 0; i <= a.length; i++) {
        if (i % 2 == 1)
            odd += a[i];
        if (i % 2 == 1)
            even *= a[i];
    }
    System.out.println(odd);
    System.out.println(even);
}
"""

FIGURE_2B = """
void assignment1(int[] a) {
    int o = 0, e = 1;
    int i = 0;
    while (i < a.length) {
        if (i % 2 == 1)
            o += a[i];
        if (i % 2 == 0)
            e *= a[i];
        i++;
    }
    System.out.print(o + ", " + e);
}
"""

FIGURE_2C = """
void assignment1(int[] a) {
    int x = 0, y = 1;
    for (int i = 0; i < a.length; i++)
        if (i % 2 == 1)
            x *= a[i];
    for (int i = 0; i < a.length; i++)
        if (i % 2 == 0)
            y += a[i];
    System.out.print("O: " + x + ", E: " + y);
}
"""

#: Paper Figure 8a: a two-loop reference solution.  Figure 8b is a
#: functionally similar correct submission whose variables take values in
#: a different order (the even loop runs first), which CLARA's
#: whole-trace comparison fails to match (the figure itself is an image
#: in the paper; 8b is reconstructed from the caption's description).
FIGURE_8A = """
void assignment1(int[] a) {
    int o = 0;
    int i = 0;
    while (i < a.length) {
        if (i % 2 == 1)
            o += a[i];
        i++;
    }
    i = 0;
    int e = 1;
    while (i < a.length) {
        if (i % 2 == 0)
            e *= a[i];
        i++;
    }
    System.out.print(e);
    System.out.print(o);
}
"""

FIGURE_8B = """
void assignment1(int[] a) {
    int e = 1;
    int i = 0;
    while (i < a.length) {
        if (i % 2 == 0)
            e *= a[i];
        i++;
    }
    i = 0;
    int o = 0;
    while (i < a.length) {
        if (i % 2 == 1)
            o += a[i];
        i++;
    }
    System.out.print(e);
    System.out.print(o);
}
"""

_TEMPLATE = """\
void assignment1(int[] a) {
    {{null-guard}}int odd = {{odd-init}};
    int even = {{even-init}};
    int i = {{i-init}};
    while ({{bound}}) {
        if ({{odd-cond}})
            {{odd-update}};
        {{even-strategy}}
        {{advance}};
    }
    {{prints}}
}
"""


def _space() -> SubmissionSpace:
    choice_points = [
        # four five-way points (5^4) ------------------------------------
        ChoicePoint("odd-init", (
            correct("0"), wrong("1"), wrong("2"), wrong("-1"), wrong("10"),
        )),
        ChoicePoint("even-init", (
            correct("1"), wrong("0"), wrong("2"), wrong("-1"), wrong("10"),
        )),
        ChoicePoint("bound", (
            correct("i < a.length"),
            wrong("i <= a.length"),
            wrong("i < a.length - 1"),
            wrong("i <= a.length - 1"),
            wrong("i < a.length + 1"),
        )),
        ChoicePoint("odd-cond", (
            correct("i % 2 == 1"),
            correct("i % 2 != 0"),
            wrong("i % 2 == 0"),
            wrong("i % 2 == 2"),
            wrong("i % 2 >= 1"),
        )),
        # 2^10 worth of binary-equivalent points -------------------------
        ChoicePoint("i-init", (correct("0"), wrong("1"))),
        ChoicePoint("null-guard", (
            correct(""),
            correct("if (a == null) return;\n    "),
        )),
        ChoicePoint("advance", (
            correct("i++"), correct("i += 1"), correct("i = i + 1"),
            wrong("i += 2"),
        )),
        ChoicePoint("odd-update", (
            correct("odd += a[i]"), correct("odd = odd + a[i]"),
            wrong("odd -= a[i]"), wrong("odd = a[i]"),
        )),
        ChoicePoint("even-strategy", (
            correct("if (i % 2 == 0)\n            even *= a[i];"),
            correct("if (i % 2 != 1)\n            even *= a[i];"),
            correct("if (i % 2 == 0)\n            even = even * a[i];"),
            wrong("if (i % 2 == 1)\n            even *= a[i];"),
        )),
        ChoicePoint("prints", (
            correct("System.out.println(odd);\n    System.out.println(even);"),
            # the next two keep the patterns satisfied but fail the strict
            # functional tests: the print-order/style discrepancies the
            # paper reports for Assignment 1
            wrong("System.out.println(even);\n    System.out.println(odd);"),
            wrong("System.out.print(odd + \" \" + even);"),
            wrong("System.out.println(odd);\n    System.out.println(odd);"),
        )),
    ]
    return SubmissionSpace("assignment1", _TEMPLATE, choice_points)


def _tests() -> list[FunctionalTest]:
    cases = [
        ([3, 4, 5, 6], 4 + 6, 3 * 5),
        ([], 0, 1),
        ([7], 0, 7),
        ([2, 9], 9, 2),
        ([1, 2, 3, 4, 5], 2 + 4, 1 * 3 * 5),
        ([0, 0, 0], 0, 0),
    ]
    return [
        FunctionalTest(
            method="assignment1",
            arguments=(array,),
            expected_stdout=f"{odd}\n{even}\n",
        )
        for array, odd, even in cases
    ]


def build() -> Assignment:
    expected = ExpectedMethod(
        name="assignment1",
        patterns=[
            (get_pattern("seq-odd-access"), 1),
            (get_pattern("seq-even-access"), 1),
            (get_pattern("cond-cumulative-add"), 1),
            (get_pattern("cond-cumulative-mul"), 1),
            (get_pattern("assign-print"), 2),
            (get_pattern("print-call"), None),
        ],
        constraints=[
            EqualityConstraint(
                name="odd-positions-are-summed",
                feedback_correct="The value you sum in {c} comes exactly "
                                 "from the odd positions of {s}.",
                feedback_incorrect="The variable you sum must accumulate "
                                   "the odd positions of the array.",
                pattern_i="seq-odd-access", node_i=5,
                pattern_j="cond-cumulative-add", node_j=3,
            ),
            EqualityConstraint(
                name="even-positions-are-multiplied",
                feedback_correct="The value you multiply in {d} comes "
                                 "exactly from the even positions of {t}.",
                feedback_incorrect="The variable you multiply must "
                                   "accumulate the even positions of the "
                                   "array.",
                pattern_i="seq-even-access", node_i=5,
                pattern_j="cond-cumulative-mul", node_j=3,
            ),
            EdgeExistenceConstraint(
                name="odd-sum-is-printed",
                feedback_correct="The odd-position sum {c} is printed to "
                                 "console.",
                feedback_incorrect="You must print the odd-position sum "
                                   "to console.",
                pattern_i="cond-cumulative-add", node_i=3,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
            EdgeExistenceConstraint(
                name="even-product-is-printed",
                feedback_correct="The even-position product {d} is printed "
                                 "to console.",
                feedback_incorrect="You must print the even-position "
                                   "product to console.",
                pattern_i="cond-cumulative-mul", node_i=3,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
        ],
    )
    space = _space()
    return Assignment(
        name="assignment1",
        title="Odd-position sum and even-position product",
        statement="Given an input array, add odd positions and multiply "
                  "even positions in the array; print the results to "
                  "console.  Header: void assignment1(int[] a).",
        expected_methods=[expected],
        reference_solutions=[space.reference.source],
        tests=_tests(),
        perf=PerfSpec(
            expected=(("assignment1", "linear"),),
            size_metric="sequence-length",
            ladder=(
                ("assignment1", ([3, 1, 4, 1, 5, 9, 2, 6],)),
                ("assignment1", ([2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5],)),
                ("assignment1", ([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                  13, 14, 15, 16],)),
            ),
        ),
        space_factory=_space,
    )
