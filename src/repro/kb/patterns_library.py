"""The 24 unique patterns of the knowledge base.

Every pattern mirrors the style of the paper's Figures 4-6: typed nodes
with exact (``r``) and approximate (``r̂``) incomplete Java expressions,
node-level feedback templates (instantiated with the student's variable
names via γ), ``Ctrl``/``Data`` edges, and pattern-level present/missing
messages.  Variable names are globally distinct across patterns so that
containment constraints can union γ mappings safely (Definition 10).

Patterns are deliberately generic — ``cond-cumulative-add`` recognizes
``odd += a[i]`` in Assignment 1 just as well as ``medals += 1`` in the
RIT olympics assignments — which is what gives the knowledge base its
reusability (24 unique patterns serve 81 pattern uses across the twelve
assignments, exactly Table I's ``P`` column).
"""

from __future__ import annotations

from repro.errors import KnowledgeBaseError
from repro.patterns.model import Pattern, PatternNode
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType, GraphEdge, NodeType

_CTRL = EdgeType.CTRL
_DATA = EdgeType.DATA


def _template(source: str, *variables: str) -> ExprTemplate:
    return ExprTemplate(source, frozenset(variables))


def _node(
    node_id: int,
    node_type: NodeType,
    expr: str,
    variables: tuple[str, ...] = (),
    approx: str | None = None,
    approx_variables: tuple[str, ...] | None = None,
    ok: str = "",
    bad: str = "",
) -> PatternNode:
    approx_template = None
    if approx is not None:
        if approx_variables is None:
            # keep only the declared variables that the approximate
            # expression actually mentions (r̂'s variables ⊆ r's, Def. 4)
            import re as _re
            approx_variables = tuple(
                v for v in variables
                if _re.search(rf"(?<![A-Za-z0-9_$]){_re.escape(v)}(?![A-Za-z0-9_$])", approx)
            )
        approx_template = _template(approx, *approx_variables)
    return PatternNode(
        node_id=node_id,
        type=node_type,
        expr=_template(expr, *variables),
        approx=approx_template,
        feedback_correct=ok,
        feedback_incorrect=bad,
    )


def _build_library() -> dict[str, Pattern]:
    untyped, assign, cond, call = (
        NodeType.UNTYPED, NodeType.ASSIGN, NodeType.COND, NodeType.CALL
    )
    library: list[Pattern] = []

    # 1 ------------------------------------------------------------------
    library.append(Pattern(
        name="seq-odd-access",
        description="accessing odd positions sequentially in an array",
        nodes=[
            _node(0, untyped, r"s", ("s",),
                  ok="{s} is the array being traversed"),
            _node(1, untyped, r"x = 0", ("x",), approx=r"x =",
                  ok="{x} is initialized to 0",
                  bad="{x} should be initialized to 0"),
            _node(2, assign, r"x\+\+|x \+= 1|x = x \+ 1", ("x",),
                  approx=r"x =|x--|x -= 1|x \+= \d+",
                  ok="{x} is incremented by 1",
                  bad="{x} should be incremented by 1"),
            _node(3, cond, r"x < s\.length", ("x", "s"),
                  approx=r"x <= s\.length|x < s\.length - 1|x <= s\.length - 1|x < s\.length \+ 1",
                  ok="{x} does not go beyond {s}.length - 1",
                  bad="{x} is out of bounds going beyond {s}.length - 1"),
            _node(4, cond, r"x % 2 == 1|x % 2 != 0", ("x",),
                  ok="you are using {x} % 2 == 1 to control that {x} is odd"),
            _node(5, untyped, r"s\[x\]", ("s", "x"), approx=r"s\[",
                  ok="{x} is used exactly to access {s}",
                  bad="you should access {s} by using {x} exactly"),
        ],
        edges=[
            GraphEdge(0, 3, _DATA), GraphEdge(0, 5, _DATA),
            GraphEdge(1, 2, _DATA), GraphEdge(1, 3, _DATA),
            GraphEdge(3, 2, _CTRL), GraphEdge(3, 4, _CTRL),
            GraphEdge(4, 5, _CTRL),
        ],
        feedback_present="You are correctly accessing odd positions "
                         "sequentially in the array {s}.",
        feedback_missing="You are not accessing odd positions sequentially "
                         "in an array; please consider using a loop and a "
                         "condition; recall that odd is computed by "
                         "i % 2 == 1, where i is an index variable.",
    ))

    # 2 ------------------------------------------------------------------
    library.append(Pattern(
        name="seq-even-access",
        description="accessing even positions sequentially in an array",
        nodes=[
            _node(0, untyped, r"t", ("t",),
                  ok="{t} is the array being traversed"),
            _node(1, untyped, r"w = 0", ("w",), approx=r"w =",
                  ok="{w} is initialized to 0",
                  bad="{w} should be initialized to 0"),
            _node(2, assign, r"w\+\+|w \+= 1|w = w \+ 1", ("w",),
                  approx=r"w =|w--|w -= 1|w \+= \d+",
                  ok="{w} is incremented by 1",
                  bad="{w} should be incremented by 1"),
            _node(3, cond, r"w < t\.length", ("w", "t"),
                  approx=r"w <= t\.length|w < t\.length - 1|w <= t\.length - 1|w < t\.length \+ 1",
                  ok="{w} does not go beyond {t}.length - 1",
                  bad="{w} is out of bounds going beyond {t}.length - 1"),
            _node(4, cond, r"w % 2 == 0|w % 2 != 1", ("w",),
                  ok="you are using {w} % 2 == 0 to control that {w} is even"),
            _node(5, untyped, r"t\[w\]", ("t", "w"), approx=r"t\[",
                  ok="{w} is used exactly to access {t}",
                  bad="you should access {t} by using {w} exactly"),
        ],
        edges=[
            GraphEdge(0, 3, _DATA), GraphEdge(0, 5, _DATA),
            GraphEdge(1, 2, _DATA), GraphEdge(1, 3, _DATA),
            GraphEdge(3, 2, _CTRL), GraphEdge(3, 4, _CTRL),
            GraphEdge(4, 5, _CTRL),
        ],
        feedback_present="You are correctly accessing even positions "
                         "sequentially in the array {t}.",
        feedback_missing="You are not accessing even positions sequentially "
                         "in an array; recall that even positions satisfy "
                         "i % 2 == 0, where i is an index variable.",
    ))

    # 3 ------------------------------------------------------------------
    library.append(Pattern(
        name="cond-cumulative-add",
        description="conditionally accumulating a sum",
        nodes=[
            _node(0, untyped, r"c = 0", ("c",), approx=r"c =",
                  ok="the sum {c} starts at 0",
                  bad="the sum {c} should start at 0"),
            _node(1, cond, r""),
            _node(2, cond, r""),
            _node(3, assign, r"c \+=|c = c \+", ("c",),
                  approx=r"c =(?! c \*)",
                  ok="{c} is cumulatively added under the condition",
                  bad="{c} should be cumulatively added (use {c} += ...)"),
        ],
        edges=[
            GraphEdge(0, 3, _DATA), GraphEdge(1, 2, _CTRL),
            GraphEdge(2, 3, _CTRL),
        ],
        feedback_present="You are correctly accumulating a sum in {c} "
                         "under a condition.",
        feedback_missing="We expected a variable that accumulates a sum "
                         "(x += ...) inside a loop under a condition, "
                         "initialized to 0.",
    ))

    # 4 ------------------------------------------------------------------
    library.append(Pattern(
        name="cond-cumulative-mul",
        description="conditionally accumulating a product",
        nodes=[
            _node(0, untyped, r"d = 1", ("d",), approx=r"d =",
                  ok="the product {d} starts at 1",
                  bad="the product {d} should start at 1 (not 0: "
                      "multiplying by 0 stays 0)"),
            _node(1, cond, r""),
            _node(2, cond, r""),
            _node(3, assign, r"d \*=|d = d \*", ("d",),
                  approx=r"d =(?! d \+)",
                  ok="{d} is cumulatively multiplied under the condition",
                  bad="{d} should be cumulatively multiplied "
                      "(use {d} *= ...)"),
        ],
        edges=[
            GraphEdge(0, 3, _DATA), GraphEdge(1, 2, _CTRL),
            GraphEdge(2, 3, _CTRL),
        ],
        feedback_present="You are correctly accumulating a product in {d} "
                         "under a condition.",
        feedback_missing="We expected a variable that accumulates a product "
                         "(x *= ...) inside a loop under a condition, "
                         "initialized to 1.",
    ))

    # 5 ------------------------------------------------------------------
    library.append(Pattern(
        name="assign-print",
        description="assigning a variable and printing it to console",
        nodes=[
            _node(0, untyped, r"z", ("z",),
                  ok="{z} receives the value you print"),
            _node(1, call, r"System\.out\.print.*z", ("z",),
                  ok="{z} is printed to console"),
        ],
        edges=[GraphEdge(0, 1, _DATA)],
        feedback_present="You correctly print the computed value of {z} "
                         "to console.",
        feedback_missing="We expected you to print a computed variable to "
                         "console with System.out.print/println.",
        # several definitions may reach one print (if/else merges); an
        # occurrence is one (print statement, printed variable) pair
        count_nodes=(1,),
    ))

    # 6 ------------------------------------------------------------------
    library.append(Pattern(
        name="print-call",
        description="printing to console",
        nodes=[
            _node(0, call, r"System\.out\.print",
                  ok="output is printed to console"),
        ],
        edges=[],
        feedback_present="You print your results to console.",
        feedback_missing="The assignment asks you to print your results to "
                         "console with System.out.print/println.",
    ))

    # 7 ------------------------------------------------------------------
    library.append(Pattern(
        name="seq-array-traversal",
        description="traversing an array sequentially",
        nodes=[
            _node(0, untyped, r"arr", ("arr",),
                  ok="{arr} is the array being traversed"),
            _node(1, untyped, r"k = 0|k = 1", ("k",), approx=r"k =",
                  ok="the index {k} starts at the right position",
                  bad="check the starting value of the index {k}"),
            _node(2, cond, r"k < arr\.length", ("k", "arr"),
                  approx=r"k <= arr\.length|k < arr\.length - 1|k <= arr\.length - 1",
                  ok="{k} stays within the bounds of {arr}",
                  bad="{k} must stay in the range 0 to {arr}.length - 1"),
            _node(3, assign, r"k\+\+|k \+= 1|k = k \+ 1", ("k",),
                  approx=r"k =|k--|k -= 1|k \+= \d+",
                  ok="{k} advances one position per iteration",
                  bad="{k} should advance exactly one position per "
                      "iteration"),
        ],
        edges=[
            GraphEdge(0, 2, _DATA), GraphEdge(1, 2, _DATA),
            GraphEdge(1, 3, _DATA), GraphEdge(2, 3, _CTRL),
        ],
        feedback_present="You traverse the array {arr} sequentially with "
                         "the index {k}.",
        feedback_missing="We expected a loop traversing the input array "
                         "one position at a time.",
    ))

    # 8 ------------------------------------------------------------------
    library.append(Pattern(
        name="range-loop",
        description="looping over a closed integer range",
        nodes=[
            _node(0, untyped, r"i0 = 1|i0 = 0", ("i0",), approx=r"i0 =",
                  ok="the loop variable {i0} starts correctly",
                  bad="check the starting value of {i0}"),
            _node(1, cond, r"i0 <= hi|i0 < hi", ("i0", "hi"),
                  approx=r"i0 >= hi|i0 > hi|i0 == hi|i0 != hi",
                  ok="the loop runs while {i0} is within the range bound "
                     "{hi}",
                  bad="the loop condition over {i0} and {hi} is inverted "
                      "or wrong"),
            _node(2, assign, r"i0\+\+|i0 \+= 1|i0 = i0 \+ 1", ("i0",),
                  approx=r"i0 =|i0--|i0 -= 1|i0 \+= \d+",
                  ok="{i0} is incremented by 1",
                  bad="{i0} should be incremented by 1"),
        ],
        edges=[
            GraphEdge(0, 1, _DATA), GraphEdge(0, 2, _DATA),
            GraphEdge(1, 2, _CTRL),
        ],
        feedback_present="You loop over the range with {i0} up to {hi}.",
        feedback_missing="We expected a counting loop over the range "
                         "(for/while with an upper bound).",
    ))

    # 9 ------------------------------------------------------------------
    library.append(Pattern(
        name="factorial-loop",
        description="computing a factorial iteratively",
        nodes=[
            _node(0, untyped, r"f = 1", ("f",), approx=r"f =",
                  ok="the factorial accumulator {f} starts at 1",
                  bad="the factorial accumulator {f} must start at 1 "
                      "(0 would make every product 0)"),
            _node(1, cond, r""),
            _node(2, assign, r"f \*=|f = f \*", ("f",), approx=r"f =",
                  ok="{f} is multiplied by the running value",
                  bad="{f} should be multiplied ({f} *= ...), not "
                      "reassigned"),
        ],
        edges=[GraphEdge(0, 2, _DATA), GraphEdge(1, 2, _CTRL)],
        feedback_present="You compute the factorial by accumulating the "
                         "product in {f}.",
        feedback_missing="We expected an iterative factorial: a product "
                         "accumulator initialized to 1 and multiplied "
                         "inside a loop.",
    ))

    # 10 -----------------------------------------------------------------
    library.append(Pattern(
        name="fibonacci-update",
        description="computing the Fibonacci sequence iteratively",
        nodes=[
            _node(0, untyped, r"p1 = 1|p1 = 0", ("p1",), approx=r"p1 =",
                  ok="the first Fibonacci seed {p1} is initialized",
                  bad="the Fibonacci sequence starts at 1, 1; check the "
                      "initialization of {p1}"),
            _node(1, untyped, r"p2 = 1", ("p2",), approx=r"p2 =",
                  ok="the second Fibonacci seed {p2} is initialized to 1",
                  bad="the Fibonacci sequence starts at 1, 1; check the "
                      "initialization of {p2}"),
            _node(2, cond, r""),
            _node(3, untyped, r"p1 \+ p2|p2 \+ p1", ("p1", "p2"),
                  approx=r"p1 \+|p2 \+|\+ p1|\+ p2",
                  ok="each Fibonacci number is the sum of {p1} and {p2}",
                  bad="each Fibonacci number must be the sum of the two "
                      "previous ones ({p1} + {p2})"),
        ],
        edges=[
            GraphEdge(0, 3, _DATA), GraphEdge(1, 3, _DATA),
            GraphEdge(2, 3, _CTRL),
        ],
        feedback_present="You compute Fibonacci numbers by adding {p1} "
                         "and {p2} inside a loop.",
        feedback_missing="We expected the iterative Fibonacci update: two "
                         "seeds and their sum inside a loop.",
    ))

    # 11 -----------------------------------------------------------------
    library.append(Pattern(
        name="accumulator-bound-loop",
        description="looping while an accumulated quantity stays within "
                    "an input bound",
        nodes=[
            _node(0, untyped, r"k0", ("k0",),
                  ok="{k0} is the input bound"),
            _node(1, cond,
                  r"acc <= k0|acc\) <= k0",
                  ("acc", "k0"),
                  approx=r"acc - 1\) <= k0|acc \+ 1\) <= k0|acc < k0"
                         r"|acc\) < k0",
                  ok="the loop keeps going while {acc} stays within {k0}",
                  bad="the loop bound over {acc} and {k0} is off; the "
                      "assignment asks for the largest value whose "
                      "accumulated quantity does not exceed {k0}"),
        ],
        edges=[GraphEdge(0, 1, _DATA)],
        feedback_present="You correctly bound the search loop by comparing "
                         "against {k0}.",
        feedback_missing="We expected a loop guarded by comparing the "
                         "accumulated quantity against the input bound.",
    ))

    # 12 -----------------------------------------------------------------
    library.append(Pattern(
        name="counter-under-cond",
        description="incrementing a counter under a condition",
        nodes=[
            _node(0, untyped, r"cnt = 0|cnt = 1", ("cnt",), approx=r"cnt =",
                  ok="the counter {cnt} starts correctly",
                  bad="check the starting value of the counter {cnt}"),
            _node(1, cond, r""),
            _node(2, assign, r"cnt\+\+|cnt \+= 1|cnt = cnt \+ 1", ("cnt",),
                  approx=r"cnt--|cnt -= 1|cnt \+= \d+|cnt = cnt - ",
                  ok="{cnt} is incremented by exactly 1",
                  bad="{cnt} should be incremented by exactly 1"),
        ],
        edges=[GraphEdge(0, 2, _DATA), GraphEdge(1, 2, _CTRL)],
        feedback_present="You count with {cnt} under the right condition.",
        feedback_missing="We expected a counter incremented inside the "
                         "loop.",
    ))

    # 13 -----------------------------------------------------------------
    library.append(Pattern(
        name="digit-extract",
        description="extracting the last decimal digit with % 10",
        nodes=[
            _node(0, untyped, r"n0", ("n0",),
                  ok="{n0} is the number whose digits you process"),
            _node(1, untyped, r"n0 % 10(?!\d)", ("n0",),
                  approx=r"n0 % \d+|n0 %",
                  ok="the last digit of {n0} is extracted with {n0} % 10",
                  bad="use {n0} % 10 to extract the last decimal digit"),
        ],
        edges=[GraphEdge(0, 1, _DATA)],
        feedback_present="You extract digits of {n0} with the modulo "
                         "operator.",
        feedback_missing="We expected the last digit to be extracted with "
                         "% 10.",
    ))

    # 14 -----------------------------------------------------------------
    library.append(Pattern(
        name="shrink-by-ten",
        description="dropping the last digit with integer division by 10",
        nodes=[
            _node(0, untyped, r"n1", ("n1",),
                  ok="{n1} is the number being consumed"),
            _node(1, cond, r"n1 != 0|n1 > 0", ("n1",),
                  approx=r"n1 >= 0|n1 < 0|n1 == 0|n1",
                  ok="the loop runs while {n1} still has digits",
                  bad="loop while {n1} != 0 (or {n1} > 0), otherwise you "
                      "process too many or too few digits"),
            _node(2, assign, r"n1 /= 10(?!\d)|n1 = n1 / 10(?!\d)", ("n1",),
                  approx=r"n1 /|n1 =",
                  ok="{n1} drops its last digit with /= 10",
                  bad="use integer division by 10 to drop the last digit "
                      "of {n1}"),
        ],
        edges=[
            GraphEdge(0, 1, _DATA), GraphEdge(0, 2, _DATA),
            GraphEdge(1, 2, _CTRL),
        ],
        feedback_present="You consume the digits of {n1} with a division "
                         "loop.",
        feedback_missing="We expected a loop dividing the number by 10 "
                         "until it reaches 0.",
    ))

    # 15 -----------------------------------------------------------------
    library.append(Pattern(
        name="reverse-build",
        description="building the decimal reverse of a number",
        nodes=[
            _node(0, untyped, r"rv = 0", ("rv",), approx=r"rv =",
                  ok="the reverse {rv} starts at 0",
                  bad="the reverse {rv} should start at 0"),
            _node(1, cond, r""),
            _node(2, assign, r"rv = rv \* 10 \+|rv = 10 \* rv \+", ("rv",),
                  approx=r"rv = rv \*|rv = rv \+|rv \+=",
                  ok="{rv} shifts left one digit and appends the new digit",
                  bad="build the reverse with {rv} = {rv} * 10 + digit"),
        ],
        edges=[GraphEdge(0, 2, _DATA), GraphEdge(1, 2, _CTRL)],
        feedback_present="You build the reverse in {rv} digit by digit.",
        feedback_missing="We expected the reverse to be built with "
                         "r = r * 10 + digit inside the digit loop.",
    ))

    # 16 -----------------------------------------------------------------
    library.append(Pattern(
        name="cube-sum",
        description="summing the cubes of digits",
        nodes=[
            _node(0, untyped, r"cs = 0", ("cs",), approx=r"cs =",
                  ok="the cube sum {cs} starts at 0",
                  bad="the cube sum {cs} should start at 0"),
            _node(1, cond, r""),
            _node(2, assign,
                  r"cs \+= dg \* dg \* dg|cs = cs \+ dg \* dg \* dg"
                  r"|cs \+= \(int\) Math\.pow\(dg, 3\)",
                  ("cs", "dg"),
                  approx=r"cs \+= dg \* dg|cs \+= dg|cs =",
                  ok="{cs} accumulates the cube of each digit {dg}",
                  bad="{cs} must accumulate the cube ({dg} * {dg} * {dg}) "
                      "of each digit"),
        ],
        edges=[GraphEdge(0, 2, _DATA), GraphEdge(1, 2, _CTRL)],
        feedback_present="You sum the cubes of the digits into {cs}.",
        feedback_missing="We expected the sum of the cubes of the digits "
                         "to be accumulated inside the digit loop.",
    ))

    # 17 -----------------------------------------------------------------
    library.append(Pattern(
        name="equality-check",
        description="comparing two values for equality",
        nodes=[
            _node(0, cond, r"e1 == e2|e1\.equals\(e2\)", ("e1", "e2"),
                  approx=r"e1 != e2|e1 == |e1\.equals",
                  ok="you compare {e1} against {e2}",
                  bad="the comparison between {e1} and {e2} is not an "
                      "equality test"),
        ],
        edges=[],
        feedback_present="You test the equality of {e1} and {e2}.",
        feedback_missing="We expected an equality comparison between two "
                         "values.",
    ))

    # 18 -----------------------------------------------------------------
    library.append(Pattern(
        name="difference",
        description="computing the difference of two values",
        nodes=[
            _node(0, untyped, r"v1", ("v1",),
                  ok="{v1} is the first operand"),
            _node(1, untyped, r"v2", ("v2",),
                  ok="{v2} is the second operand"),
            _node(2, untyped,
                  r"v1 - v2|v2 - v1|Math\.abs\(v1 - v2\)|Math\.abs\(v2 - v1\)",
                  ("v1", "v2"),
                  approx=r"v1 -|v2 -|- v1|- v2|v1 \+ v2",
                  ok="you compute the difference of {v1} and {v2}",
                  bad="you should subtract {v2} from {v1} (or the other "
                      "way around)"),
        ],
        edges=[GraphEdge(0, 2, _DATA), GraphEdge(1, 2, _DATA)],
        feedback_present="You compute the difference between {v1} and "
                         "{v2}.",
        feedback_missing="We expected the difference of the two computed "
                         "values.",
    ))

    # 19 -----------------------------------------------------------------
    library.append(Pattern(
        name="array-write-scaled",
        description="writing a scaled array element (derivative rule)",
        nodes=[
            _node(0, cond, r""),
            _node(1, assign,
                  r"dv\[.+\] = .*cf\[.+\] \*|dv\[.+\] = .*\* cf\[",
                  ("cf", "dv"),
                  approx=r"dv\[.+\] = .*cf\[|dv\[.+\] =",
                  ok="{dv} receives each coefficient of {cf} scaled by its "
                     "exponent",
                  bad="each derivative coefficient must be the input "
                      "coefficient multiplied by its exponent "
                      "({dv}[i - 1] = {cf}[i] * i)"),
        ],
        edges=[GraphEdge(0, 1, _CTRL)],
        feedback_present="You apply the power rule into {dv}.",
        feedback_missing="We expected the power rule: every coefficient "
                         "multiplied by its exponent, shifted one position "
                         "down.",
    ))

    # 20 -----------------------------------------------------------------
    library.append(Pattern(
        name="poly-eval-term",
        description="accumulating polynomial terms at a point",
        nodes=[
            _node(0, untyped, r"pr = 0", ("pr",), approx=r"pr =",
                  ok="the result {pr} starts at 0",
                  bad="the result {pr} should start at 0"),
            _node(1, cond, r""),
            _node(2, assign,
                  r"pr \+= .*Math\.pow\(x0,|pr = pr \+ .*Math\.pow\(x0,"
                  r"|pr = pr \* x0 \+",
                  ("pr", "x0"),
                  approx=r"pr \+=|pr =",
                  ok="{pr} accumulates each term evaluated at {x0}",
                  bad="{pr} must accumulate coefficient * {x0}^i for every "
                      "term (or use Horner's rule)"),
        ],
        edges=[
            GraphEdge(0, 2, _DATA), GraphEdge(1, 2, _CTRL),
        ],
        feedback_present="You evaluate the polynomial at {x0} by summing "
                         "terms into {pr}.",
        feedback_missing="We expected the polynomial value to be "
                         "accumulated term by term at the given point.",
    ))

    # 21 -----------------------------------------------------------------
    library.append(Pattern(
        name="scanner-loop",
        description="scanning a file while tokens remain",
        nodes=[
            _node(0, assign, r"sc = new Scanner\(", ("sc",),
                  approx=r"sc = new",
                  ok="the scanner {sc} opens the input file",
                  bad="{sc} should be created as new Scanner(new "
                      "File(...))"),
            _node(1, cond, r"sc\.hasNext", ("sc",),
                  approx=r"sc\.hasNextInt|sc\.hasNextLine",
                  ok="the loop runs while {sc} has tokens left",
                  bad="loop with {sc}.hasNext() so every record is read"),
        ],
        edges=[GraphEdge(0, 1, _DATA)],
        feedback_present="You scan the file with {sc} until no tokens "
                         "remain.",
        feedback_missing="We expected a Scanner over the input file driven "
                         "by a hasNext() loop.",
    ))

    # 22 -----------------------------------------------------------------
    record_nodes = []
    record_edges = []
    _POSITIONS = (
        (1, r"\.next\(\)", "the athlete's first name"),
        (2, r"\.next\(\)", "the athlete's last name"),
        (3, r"\.nextInt\(\)", "the medal type"),
        (4, r"\.nextInt\(\)", "the event year"),
        (0, r"\.next\(\)", "the record separator"),
    )
    for slot, (remainder, read_expr, what) in enumerate(_POSITIONS):
        cond_id, read_id = 2 * slot, 2 * slot + 1
        record_nodes.append(_node(
            cond_id, NodeType.COND,
            rf"ri % 5 == {remainder}", ("ri",),
            approx=r"ri % \d+ ==|ri %",
            ok=f"field {remainder if remainder else 5} of each record "
               f"({what}) is selected with {{ri}} % 5 == {remainder}",
            bad=f"{what} lives at position {remainder if remainder else 5} "
                f"of each record; select it with {{ri}} % 5 == {remainder}",
        ))
        record_nodes.append(_node(
            read_id, NodeType.UNTYPED, read_expr,
            ok=f"{what} is read from the file",
            bad=f"{what} must be read with "
                f"{'nextInt()' if 'Int' in read_expr else 'next()'}",
        ))
        record_edges.append(GraphEdge(cond_id, read_id, _CTRL))
    library.append(Pattern(
        name="record-position-read",
        description="reading the five fields of each file record by "
                    "position",
        nodes=record_nodes,
        edges=record_edges,
        feedback_present="You read all five fields of each record at "
                         "their correct positions.",
        feedback_missing="Each record has five fields (first name, last "
                         "name, medal type, year, separator); read each "
                         "one under its own index % 5 condition.",
    ))

    # 23 -----------------------------------------------------------------
    library.append(Pattern(
        name="record-index-advance",
        description="advancing the record-field index once per token",
        nodes=[
            _node(0, untyped, r"rj = 1|rj = 0", ("rj",), approx=r"rj =",
                  ok="the field index {rj} starts correctly",
                  bad="check the starting value of the field index {rj}"),
            _node(1, cond, r"rj2\.hasNext", ("rj2",), approx=None,
                  ok="the index advances inside the token loop",
                  bad="advance the field index inside the hasNext() "
                      "loop"),
            _node(2, assign, r"rj\+\+|rj \+= 1|rj = rj \+ 1", ("rj",),
                  approx=r"rj--|rj -= 1|rj \+= \d+|rj = rj \+ \d+",
                  ok="{rj} advances exactly once per token",
                  bad="{rj} must advance exactly once per token; advancing "
                      "it more than once skips fields"),
        ],
        edges=[GraphEdge(0, 2, _DATA), GraphEdge(1, 2, _CTRL)],
        feedback_present="You advance the field index {rj} once per "
                         "token.",
        feedback_missing="We expected a field index advanced once per "
                         "scanned token.",
    ))

    # 24 -----------------------------------------------------------------
    library.append(Pattern(
        name="scanner-close",
        description="closing the scanner after use",
        nodes=[
            _node(0, call, r"sc3\.close\(\)", ("sc3",), approx=r"sc3\.close",
                  ok="the scanner {sc3} is closed",
                  bad="close the scanner {sc3} with {sc3}.close()"),
        ],
        edges=[],
        feedback_present="You close the scanner {sc3} when you are done.",
        feedback_missing="Remember to close the scanner with close() once "
                         "the file has been processed.",
    ))

    return {pattern.name: pattern for pattern in library}


_LIBRARY = _build_library()


def all_patterns() -> dict[str, Pattern]:
    """All 24 unique patterns, keyed by name."""
    return dict(_LIBRARY)


def get_pattern(name: str) -> Pattern:
    """Look up one pattern by name."""
    if name not in _LIBRARY:
        raise KnowledgeBaseError(f"unknown pattern {name!r}")
    return _LIBRARY[name]
