"""The knowledge base: 24 unique patterns and twelve assignments.

This is the reproduction of the paper's "publicly-available knowledge
base of patterns and constraints" covering the twelve real-world
assignments of Table I.  :mod:`repro.kb.patterns_library` holds the
reusable patterns; each module under :mod:`repro.kb.assignments` wires a
subset of them (with occurrence counts and constraints) to one
assignment, together with its reference solution(s), functional tests,
and synthetic error model.
"""

from repro.kb.patterns_library import all_patterns, get_pattern
from repro.kb.registry import (
    all_assignment_names,
    get_assignment,
    table1_expectations,
)

__all__ = [
    "all_patterns",
    "get_pattern",
    "all_assignment_names",
    "get_assignment",
    "table1_expectations",
]
