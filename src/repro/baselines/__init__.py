"""Baseline graders the paper compares against (Section VI-C).

Neither AutoGrader (built on the Sketch synthesizer) nor CLARA is
available as runnable software in this environment, so this package
implements faithful *behavioural simulators* of both:

* :mod:`repro.baselines.autograder` — repairs a submission into
  functional equivalence with a reference by searching over error-model
  rule combinations, exactly Sketch's role in AutoGrader.  Its cost is
  exponential in the number of repairs and it compares return values /
  exact output, reproducing the paper's qualitative claims (degrades
  beyond ~4 repairs, cannot handle print-order variation, needs input
  bounds).
* :mod:`repro.baselines.clara` — clusters correct submissions by
  variable traces, matches a new submission to the nearest reference
  trace, and proposes line-level repairs.  Trace cost grows with input
  magnitude (the paper's k = 100,000 timeout) and matching needs one
  reference per variable-ordering variation (Figure 8).
"""

from repro.baselines.autograder import AutoGraderSim, RepairResult
from repro.baselines.clara import ClaraSim, ClaraResult, trace_of

__all__ = [
    "AutoGraderSim",
    "RepairResult",
    "ClaraSim",
    "ClaraResult",
    "trace_of",
]
