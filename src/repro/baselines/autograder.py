"""AutoGrader/Sketch baseline simulator (Singh et al., PLDI 2013).

AutoGrader turns a student submission into a *program sketch* by applying
an error-model's rewrite rules, then asks Sketch to pick the choices that
make the sketch functionally equivalent to a single reference solution;
the chosen rewrites become the feedback ("change i = 1 to i = 0").

Our simulator operates on the same explicit error model the synthetic
corpus is generated from (:class:`~repro.synth.spaces.SubmissionSpace`):
given a submission's choice vector, it searches over combinations of
choice-point changes — fewest repairs first, exactly Sketch's objective —
until a candidate passes the equivalence check (the assignment's
functional tests over a bounded input domain).

The simulator reproduces AutoGrader's cost profile and limitations:

* the candidate count explodes combinatorially with the number of
  repairs (the paper: "performance degrades considerably after four or
  more repairs"), surfaced through the ``work`` counter and
  ``work_budget``;
* equivalence is exact-output equivalence, so print-order variations
  count as wrong and need repairs our technique would not request;
* the equivalence check runs the program on concrete bounded inputs
  (``Sketch requires having fixed array lengths ... the user needs to
  set bounds``), so its cost also scales with input magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, product

from repro.core.assignment import Assignment
from repro.synth.spaces import SubmissionSpace
from repro.testing.functional import run_tests_on_source


@dataclass(frozen=True)
class Repair:
    """One suggested rewrite: set ``choice_point`` from one option text to
    another (AutoGrader's low-level "replace this expression" feedback)."""

    choice_point: str
    from_text: str
    to_text: str

    def render(self) -> str:
        return (
            f"Change '{self.from_text}' to '{self.to_text}' "
            f"(at {self.choice_point})"
        )


@dataclass
class RepairResult:
    """Outcome of one repair search."""

    repaired: bool
    repairs: list[Repair] = field(default_factory=list)
    work: int = 0
    exhausted_budget: bool = False

    @property
    def repair_count(self) -> int:
        return len(self.repairs)

    def render(self) -> str:
        if not self.repaired:
            reason = "budget exhausted" if self.exhausted_budget else \
                "no repair within the bound"
            return f"AutoGrader could not repair the submission ({reason})."
        if not self.repairs:
            return "The submission is already functionally correct."
        return "\n".join(r.render() for r in self.repairs)


class AutoGraderSim:
    """Bounded repair search over an assignment's error model.

    Parameters
    ----------
    assignment:
        Supplies the functional tests used as the equivalence oracle.
    space:
        The error model; defaults to the assignment's submission space.
    max_repairs:
        Upper bound on simultaneous rewrites explored (Sketch's practical
        ceiling is ~4).
    work_budget:
        Maximum number of candidate programs executed before giving up —
        the simulator's stand-in for Sketch's solver timeout.
    step_budget:
        Interpreter step budget per candidate execution (bounds the
        input domain the equivalence check walks).
    """

    def __init__(
        self,
        assignment: Assignment,
        space: SubmissionSpace | None = None,
        max_repairs: int = 4,
        work_budget: int = 20_000,
        step_budget: int = 200_000,
    ):
        self.assignment = assignment
        self.space = space if space is not None else assignment.space()
        self.max_repairs = max_repairs
        self.work_budget = work_budget
        self.step_budget = step_budget

    # ------------------------------------------------------------------

    def _passes(self, choices: list[int]) -> bool:
        source = self.space.submission(self.space.encode(choices)).source
        report = run_tests_on_source(
            source, self.assignment.tests, step_budget=self.step_budget
        )
        return report.passed

    def repair(self, choices: tuple[int, ...] | list[int]) -> RepairResult:
        """Search for the fewest choice-point rewrites that make the
        submission pass the equivalence oracle."""
        choices = list(choices)
        points = self.space.choice_points
        work = 0

        # repair count 0: the submission may already be equivalent
        work += 1
        if self._passes(choices):
            return RepairResult(repaired=True, repairs=[], work=work)

        for repair_count in range(1, self.max_repairs + 1):
            for slots in combinations(range(len(points)), repair_count):
                alternative_lists = []
                for slot in slots:
                    alternatives = [
                        option_index
                        for option_index in range(points[slot].arity)
                        if option_index != choices[slot]
                    ]
                    alternative_lists.append(alternatives)
                for replacement in product(*alternative_lists):
                    work += 1
                    if work > self.work_budget:
                        return RepairResult(
                            repaired=False, work=work, exhausted_budget=True
                        )
                    candidate = list(choices)
                    for slot, option_index in zip(slots, replacement):
                        candidate[slot] = option_index
                    if self._passes(candidate):
                        repairs = [
                            Repair(
                                choice_point=points[slot].name,
                                from_text=points[slot].options[
                                    choices[slot]
                                ].text,
                                to_text=points[slot].options[
                                    option_index
                                ].text,
                            )
                            for slot, option_index in zip(slots, replacement)
                        ]
                        return RepairResult(
                            repaired=True, repairs=repairs, work=work
                        )
        return RepairResult(repaired=False, work=work)

    def repair_source_in_space(self, index: int) -> RepairResult:
        """Repair the submission at ``index`` of the space."""
        return self.repair(list(self.space.decode(index)))
