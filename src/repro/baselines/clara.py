"""CLARA baseline simulator (Gulwani, Radicek, Zuleger 2016).

CLARA clusters *correct* submissions by their variable traces on a set of
inputs, keeps one representative per cluster as a reference, matches an
incorrect submission to the nearest reference by trace distance, and
emits line-level repairs from the differences.

The simulator reproduces CLARA's behaviour and its documented limits:

* traces are compared *as a whole*, so two functionally-similar programs
  whose variables take values in different orders land in different
  clusters — grading Figure 8b against only Figure 8a's cluster fails
  (``needs a reference solution per variation``);
* stdout is just another trace variable (``out``), so print order
  matters;
* tracing executes the program, so cost grows with the input magnitude;
  with ``k = 100,000`` the trace walk exceeds the budget and the match
  times out, while plain functional testing still answers in
  milliseconds (paper Section VI-C, Scalability);
* a non-terminating submission exhausts the step budget (CLARA cannot
  deal with infinite loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import Assignment, FunctionalTest
from repro.errors import JavaRuntimeError, ReproError
from repro.interp.interpreter import Interpreter
from repro.interp.tracing import Tracer
from repro.java import parse_submission
from repro.testing.functional import _materialize_argument

#: Default cap on interpreter steps per traced execution; exceeding it is
#: reported as a CLARA timeout.
DEFAULT_TRACE_BUDGET = 400_000


def _run_traced(
    source: str, test: FunctionalTest, step_budget: int
) -> Tracer:
    unit = parse_submission(source)
    tracer = Tracer()
    interpreter = Interpreter(
        unit,
        files=test.files_dict(),
        stdin=test.stdin,
        step_budget=step_budget,
        tracer=tracer,
        cache_key=source,
    )
    arguments = [_materialize_argument(a) for a in test.arguments]
    interpreter.run(test.method, arguments)
    return tracer


def trace_of(
    source: str,
    test: FunctionalTest,
    step_budget: int = DEFAULT_TRACE_BUDGET,
) -> dict[str, tuple]:
    """The per-variable value trace of one execution (CLARA's raw data).

    Raises :class:`~repro.errors.JavaRuntimeError` (or
    :class:`~repro.errors.BudgetExceededError`) when the program crashes
    or exceeds the budget.
    """
    tracer = _run_traced(source, test, step_budget)
    return {
        name: tuple(values) for name, values in tracer.as_mapping().items()
    }


def event_trace_of(
    source: str,
    test: FunctionalTest,
    step_budget: int = DEFAULT_TRACE_BUDGET,
) -> tuple:
    """The name-erased *global* event trace: every traced value in the
    order it was produced.  Clustering keys on this, so two programs
    that compute the same values in a different interleaving (the
    paper's Figure 8 pair) get different signatures."""
    tracer = _run_traced(source, test, step_budget)
    return tuple(repr(event.value) for event in tracer.events)


def _signature(event_traces: list[tuple]) -> tuple:
    """A cluster key: the global event trace per input.

    Two programs share a signature iff they produce the same values in
    the same order on every input — CLARA's whole-trace comparison,
    independent of variable *names* but dependent on evaluation order.
    """
    return tuple(event_traces)


def _trace_distance(left: dict[str, tuple], right: dict[str, tuple]) -> float:
    """Greedy variable matching by longest-common-prefix similarity.

    Returns the total number of mismatched positions across the matched
    variables (lower is closer); unmatched variables count in full.
    """
    right_pool = dict(right)
    total = 0.0
    for name, left_trace in left.items():
        best_key, best_score = None, -1.0
        for key, right_trace in right_pool.items():
            score = _similarity(left_trace, right_trace)
            if score > best_score:
                best_key, best_score = key, score
        if best_key is None:
            total += len(left_trace)
            continue
        right_trace = right_pool.pop(best_key)
        length = max(len(left_trace), len(right_trace))
        prefix = _common_prefix(left_trace, right_trace)
        total += length - prefix
    for leftover in right_pool.values():
        total += len(leftover)
    return total


def _event_distance(left: tuple, right: tuple) -> int:
    """Whole-trace distance: positions not covered by the common prefix.

    CLARA compares traces as a whole, so the first divergence point
    dominates — two programs computing the same values in a different
    order are maximally far apart even though they agree value-wise.
    """
    prefix = _common_prefix(left, right)
    return len(left) + len(right) - 2 * prefix


def _common_prefix(left: tuple, right: tuple) -> int:
    count = 0
    for a, b in zip(left, right):
        if a != b:
            break
        count += 1
    return count


def _similarity(left: tuple, right: tuple) -> float:
    length = max(len(left), len(right), 1)
    return _common_prefix(left, right) / length


@dataclass
class ClaraResult:
    """Outcome of matching one submission against the learned clusters."""

    matched: bool
    timed_out: bool = False
    crashed: bool = False
    cluster_index: int | None = None
    distance: float = float("inf")
    repairs: list[str] = field(default_factory=list)

    def render(self) -> str:
        if self.timed_out:
            return "CLARA timed out while collecting traces."
        if self.crashed:
            return "CLARA could not trace the submission (runtime error)."
        if self.matched and not self.repairs:
            return "The submission matches a correct cluster."
        lines = [
            f"Nearest cluster: {self.cluster_index} "
            f"(trace distance {self.distance:g})"
        ]
        lines.extend(self.repairs)
        return "\n".join(lines)


class ClaraSim:
    """Trace-clustering grader over an assignment's test inputs."""

    def __init__(
        self,
        assignment: Assignment,
        inputs: list[FunctionalTest] | None = None,
        step_budget: int = DEFAULT_TRACE_BUDGET,
    ):
        self.assignment = assignment
        self.inputs = inputs if inputs is not None else assignment.tests
        self.step_budget = step_budget
        self._clusters: list[dict] = []

    # ------------------------------------------------------------------
    # learning

    def fit(self, correct_sources: list[str]) -> int:
        """Cluster correct submissions by trace equivalence.

        Returns the number of clusters (the paper's point: one reference
        per variation is required, so this number grows with syntactic
        diversity even among functionally identical programs).
        """
        if not correct_sources:
            raise ReproError("CLARA needs at least one correct submission")
        signatures: dict[tuple, int] = {}
        self._clusters = []
        for source in correct_sources:
            traces = [
                trace_of(source, test, self.step_budget)
                for test in self.inputs
            ]
            events = [
                event_trace_of(source, test, self.step_budget)
                for test in self.inputs
            ]
            signature = _signature(events)
            if signature in signatures:
                self._clusters[signatures[signature]]["members"] += 1
                continue
            signatures[signature] = len(self._clusters)
            self._clusters.append(
                {"source": source, "traces": traces, "events": events,
                 "members": 1}
            )
        return len(self._clusters)

    @property
    def cluster_count(self) -> int:
        return len(self._clusters)

    # ------------------------------------------------------------------
    # matching

    def match(self, source: str) -> ClaraResult:
        """Match a submission against the learned clusters."""
        if not self._clusters:
            raise ReproError("call fit() before match()")
        try:
            events = [
                event_trace_of(source, test, self.step_budget)
                for test in self.inputs
            ]
        except JavaRuntimeError as error:
            timed_out = "budget" in str(error)
            return ClaraResult(
                matched=False, timed_out=timed_out, crashed=not timed_out
            )
        best_index, best_distance = None, float("inf")
        for index, cluster in enumerate(self._clusters):
            distance = float(sum(
                _event_distance(mine, theirs)
                for mine, theirs in zip(events, cluster["events"])
            ))
            if distance < best_distance:
                best_index, best_distance = index, distance
        assert best_index is not None
        repairs = []
        if best_distance > 0:
            repairs = self._repairs(
                source, self._clusters[best_index]["source"]
            )
        return ClaraResult(
            matched=best_distance == 0,
            cluster_index=best_index,
            distance=best_distance,
            repairs=repairs,
        )

    def _repairs(self, source: str, reference: str) -> list[str]:
        """Line-level repair suggestions (CLARA's feedback style).

        Deliberately low-level: "change line i to <reference line>",
        which is exactly the feedback style the paper criticizes.
        """
        submitted = [l.strip() for l in source.strip().splitlines()]
        wanted = [l.strip() for l in reference.strip().splitlines()]
        repairs = []
        for line_number, (mine, theirs) in enumerate(
            zip(submitted, wanted), start=1
        ):
            if mine != theirs:
                repairs.append(
                    f"Change line {line_number}: '{mine}' -> '{theirs}'"
                )
        for line_number in range(
            min(len(submitted), len(wanted)) + 1,
            max(len(submitted), len(wanted)) + 1,
        ):
            if line_number <= len(wanted):
                repairs.append(
                    f"Add line {line_number}: '{wanted[line_number - 1]}'"
                )
            else:
                repairs.append(f"Delete line {line_number}")
        return repairs
